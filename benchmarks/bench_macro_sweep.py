"""Fused-grid throughput across macro shapes at a fixed layer-row budget.

Macro specs change the *shape* of the workload without changing the fused
kernel: a population of deep narrow networks and one of shallow wide
networks flatten into the same kind of ``LayerTable``, so the (config, layer)
grid sweep should price a layer row roughly the same no matter which macro
schedule produced it.  This benchmark pins that property: each macro shape
gets a population sized to the same total layer-row budget, and the tracked
headlines are the per-shape row rates *relative to the single-cell baseline
shape* — machine-independent ratios that regress only if the staged
expansion makes rows structurally slower to sweep.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.arch import get_config
from repro.nasbench import LayerTable, MacroSpec, StageSpec, random_cell
from repro.simulator import BatchSimulator

from _reporting import report, report_json

#: Target layer rows per macro shape (every shape sweeps the same row budget).
MACRO_ROWS = int(os.environ.get("REPRO_BENCH_MACRO_ROWS", "20000"))
#: Seed of the sampled per-stage cells.
MACRO_SEED = int(os.environ.get("REPRO_BENCH_MACRO_SEED", "2022"))
#: Timing rounds per shape (best-of).
MACRO_ROUNDS = int(os.environ.get("REPRO_BENCH_MACRO_ROUNDS", "3"))

#: The compared macro shapes: (name, per-stage (depth, width_multiplier)).
#: ``single`` is the legacy-equivalent one-stage baseline every ratio is
#: taken against; the others stretch the depth and width axes.
SHAPES: tuple[tuple[str, tuple[tuple[int, float], ...]], ...] = (
    ("single", ((1, 1.0),)),
    ("deep", ((4, 1.0), (4, 1.0), (4, 1.0))),
    ("wide", ((1, 2.0), (1, 2.0))),
    ("staged", ((2, 1.0), (2, 2.0), (2, 2.0))),
)

CONFIG_NAMES = ("V1", "V2")


def _population_table(shape: tuple[tuple[int, float], ...], rng) -> tuple[LayerTable, int]:
    """Macro networks of one shape, appended until the row budget is met."""
    networks = []
    rows = 0
    while rows < MACRO_ROWS:
        macro = MacroSpec(
            tuple(
                StageSpec(random_cell(rng), depth=depth, width_multiplier=multiplier)
                for depth, multiplier in shape
            )
        )
        network = macro.build_network()
        networks.append(network)
        rows += len(network.layers)
    return LayerTable.from_networks(networks), len(networks)


def _row_rate(simulator: BatchSimulator, table: LayerTable, configs) -> tuple[float, float]:
    """Best-of rows/sec of the fused grid sweep over *configs*."""
    best = float("inf")
    for _ in range(MACRO_ROUNDS):
        start = time.perf_counter()
        simulator.evaluate_table_grid(table, configs)
        best = min(best, time.perf_counter() - start)
    return table.num_layers / best, best


def test_macro_sweep_throughput(benchmark):
    rng = np.random.default_rng(MACRO_SEED)
    configs = [get_config(name) for name in CONFIG_NAMES]
    simulator = BatchSimulator()

    tables = {name: _population_table(shape, rng) for name, shape in SHAPES}
    rates = {}
    elapsed = {}
    for name, (table, _) in tables.items():
        rates[name], elapsed[name] = _row_rate(simulator, table, configs)

    # Tracked pytest-benchmark metric: the staged (multi-stage, mixed-width)
    # shape, the one the macro search actually sweeps.
    staged_table = tables["staged"][0]
    benchmark.pedantic(
        lambda: simulator.evaluate_table_grid(staged_table, configs),
        rounds=1,
        iterations=1,
    )

    for name, (table, models) in tables.items():
        benchmark.extra_info[f"{name}_rows_per_sec"] = round(rates[name], 1)
        benchmark.extra_info[f"{name}_models"] = models
        benchmark.extra_info[f"{name}_rows"] = table.num_layers

    lines = [
        "Macro sweep throughput — fused (config, layer) grid rows/sec per shape",
        f"(~{MACRO_ROWS} layer rows per shape, {len(CONFIG_NAMES)} configurations, "
        f"seed {MACRO_SEED}, best of {MACRO_ROUNDS})",
        f"{'shape':<10}{'models':>8}{'rows':>8}{'rows/sec':>12}"
        f"{'elapsed (s)':>13}{'vs single':>11}",
    ]
    for name, (table, models) in tables.items():
        lines.append(
            f"{name:<10}{models:>8}{table.num_layers:>8}{rates[name]:>12.0f}"
            f"{elapsed[name]:>13.4f}{rates[name] / rates['single']:>11.2f}"
        )
    report("macro_sweep", lines)
    report_json(
        "macro_sweep",
        # Ratios only: a shape's row rate relative to the single-cell
        # baseline cancels the machine out and regresses only if staged
        # expansions become structurally slower to sweep.
        headline={
            f"{name}_row_rate_vs_single": rates[name] / rates["single"]
            for name, _ in SHAPES
            if name != "single"
        },
        population={
            "row_budget": MACRO_ROWS,
            "configs": len(CONFIG_NAMES),
            "shapes": len(SHAPES),
        },
        metrics={
            **{f"{name}_rows_per_sec": rates[name] for name, _ in SHAPES},
            **{f"{name}_models": tables[name][1] for name, _ in SHAPES},
            **{f"{name}_rows": tables[name][0].num_layers for name, _ in SHAPES},
        },
    )

    # The fused kernel prices rows, not models: no macro shape may sweep its
    # rows at less than a third of the single-cell rate.
    for name, _ in SHAPES:
        assert rates[name] >= rates["single"] / 3.0, (
            f"shape {name!r} sweeps rows {rates['single'] / rates[name]:.1f}x "
            "slower than the single-cell baseline"
        )
