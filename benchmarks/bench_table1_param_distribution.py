"""Table 1: distribution of NASBench models across trainable-parameter intervals.

Paper reference values (full 423,624-model population): ten equal-width
intervals spanning [227,274 — 49,979,274], heavily skewed towards the small
end (210,673 models in the first interval).
"""

from __future__ import annotations

from repro.nasbench import parameter_distribution

from _reporting import report


def test_table1_parameter_distribution(benchmark, bench_dataset):
    def run():
        return parameter_distribution(bench_dataset.parameter_counts(), num_intervals=10)

    intervals = benchmark.pedantic(run, rounds=1, iterations=1)

    total = sum(interval.count for interval in intervals)
    lines = [
        "Table 1 — distribution of models across trainable-parameter intervals",
        f"(sampled population: {total} models; paper population: 423,624 models)",
        f"{'interval':>32} {'# of models':>12} {'fraction':>10}",
    ]
    for interval in intervals:
        lines.append(
            f"[{interval.lower:>12,} — {interval.upper:>12,}) "
            f"{interval.count:>12} {interval.count / total:>9.1%}"
        )
    report("table1_param_distribution", lines)

    assert total == len(bench_dataset)
    # The paper's population is heavily skewed towards small models.
    assert intervals[0].count > intervals[-1].count
