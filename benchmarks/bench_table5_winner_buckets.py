"""Table 5: per-configuration winner buckets.

Paper reference: 392,725 models are served fastest by V1, 24,325 by V2 and
6,570 by V3; the V2 bucket holds the high-latency models and the V3 bucket
yields 10.4x / 1.24x average speedups over V1 / V2 on its models.
"""

from __future__ import annotations

from repro.analysis import bucket_speedups, winner_buckets

from _reporting import report


def test_table5_winner_buckets(benchmark, bench_measurements):
    buckets = benchmark.pedantic(lambda: winner_buckets(bench_measurements), rounds=1, iterations=1)

    lines = [
        "Table 5 — average latency/energy of the models won by each configuration",
        f"{'bucket':<16}{'# models':>10}"
        + "".join(f"{name + ' lat(ms)':>14}" for name in bench_measurements.config_names)
        + "".join(f"{name + ' E(mJ)':>13}" for name in ("V1", "V2")),
    ]
    for name, bucket in buckets.items():
        row = f"Latency({name})<= {bucket.num_models:>10}"
        for other in bench_measurements.config_names:
            row += f"{bucket.avg_latency_ms[other]:>14.3f}"
        for other in ("V1", "V2"):
            energy = bucket.avg_energy_mj[other]
            row += f"{(f'{energy:.2f}' if energy is not None else 'N/A'):>13}"
        lines.append(row)
    for name, bucket in buckets.items():
        if bucket.num_models:
            speedups = bucket_speedups(bucket)
            lines.append(
                f"speedup of {name} on its bucket: "
                + ", ".join(f"{k}: {v:.2f}x" for k, v in speedups.items())
            )
    report("table5_winner_buckets", lines)

    total = sum(bucket.num_models for bucket in buckets.values())
    assert total == len(bench_measurements.dataset)
    # Paper: V1 wins the overwhelming majority of models; V2's bucket holds
    # models that are much slower than the V1 bucket's.
    assert buckets["V1"].num_models > 0.7 * total
    if buckets["V2"].num_models:
        assert buckets["V2"].avg_latency_ms["V2"] > buckets["V1"].avg_latency_ms["V1"]
