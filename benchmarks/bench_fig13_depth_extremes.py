"""Figure 13: latency extremes among cells with five 3x3 convolutions.

Paper reference: with the operation multiset held fixed (five conv3x3), the
shallow/wide cell runs in 0.36 ms while the depth-6 chain takes 4.94 ms on V2
— an order-of-magnitude spread explained by the channel arithmetic (deep
chains keep full channel counts and therefore far more parameters).
"""

from __future__ import annotations

from repro.analysis import latency_extremes_for_conv_count

from _reporting import report


def test_fig13_conv_heavy_latency_extremes(benchmark, bench_measurements):
    extremes = benchmark.pedantic(
        lambda: latency_extremes_for_conv_count(bench_measurements, "V2", num_conv3x3=5),
        rounds=1,
        iterations=1,
    )
    fastest, slowest = extremes

    lines = [
        "Figure 13 — latency extremes among cells with five 3x3 convolutions (V2)",
        f"{'':<10}{'latency (ms)':>14}{'depth':>8}{'params':>14}{'accuracy':>10}",
        f"{'fastest':<10}{fastest.latency_ms:>14.4f}{fastest.depth:>8}"
        f"{fastest.record.trainable_parameters:>14,}"
        f"{fastest.record.mean_validation_accuracy:>10.4f}",
        f"{'slowest':<10}{slowest.latency_ms:>14.4f}{slowest.depth:>8}"
        f"{slowest.record.trainable_parameters:>14,}"
        f"{slowest.record.mean_validation_accuracy:>10.4f}",
        "(paper: 0.36 ms at depth 3 vs 4.94 ms at depth 6)",
    ]
    report("fig13_depth_extremes", lines)

    # The slow extreme is a much deeper, much heavier cell than the fast one.
    assert slowest.latency_ms > 3 * fastest.latency_ms
    assert slowest.depth > fastest.depth
    assert slowest.record.trainable_parameters > fastest.record.trainable_parameters
