"""Fused compile-and-time kernel vs the staged per-stage grid pipeline.

The staged grid path (`BatchSimulator(strategy="staged")`) runs
mapping → cache planning → timing → energy as four config-axis vectorized
stages, materializing ``(num_configs, num_layers)`` intermediates between
them.  The fused kernel (:func:`repro.simulator.fused.compile_and_time_table`)
keeps the mapping/cache results at their unique-sub-configuration resolution
and streams the config axis in cache-sized chunks through preallocated
scratch buffers, producing latency and energy in one pass — bit-for-bit equal
to the staged oracle (asserted here on the staged subset).

Both paths run the full grid by default: at the headline scale (10k models x
~120 configs, ~85M layer evaluations) the staged intermediates are ~785 MB
*each* and its cost per configuration grows superlinearly with grid width —
which is exactly the effect being measured, so extrapolating from a small
subset would flatter it.  On memory-constrained machines
``REPRO_BENCH_FUSION_STAGED_CONFIGS`` caps the staged grid to a subset (its
rate is then an upper bound: narrower grids are cheaper per config).  The
fused pass with forward-mode sensitivities enabled is reported as a context
row.

Smoke mode (``REPRO_BENCH_FUSION_SMOKE=1``) shrinks the population for CI and
writes its JSON under the ``backend_fusion_smoke`` experiment so the
committed full-scale baseline is never compared against smoke numbers.
"""

from __future__ import annotations

import itertools
import os
import time

import numpy as np

from repro.hwspace import AcceleratorSpace
from repro.nasbench import NASBenchDataset
from repro.nasbench.layer_table import LayerTable
from repro.simulator import BatchSimulator, compile_and_time_table

from _reporting import report, report_json

#: CI smoke mode: small population, separate experiment name.
SMOKE = os.environ.get("REPRO_BENCH_FUSION_SMOKE", "") == "1"

#: Models of the swept population (headline scale: 10k).
FUSION_MODELS = int(os.environ.get("REPRO_BENCH_FUSION_MODELS", "160" if SMOKE else "10000"))
#: Hardware grid size for the fused kernel (headline scale: >= 100).
FUSION_CONFIGS = int(os.environ.get("REPRO_BENCH_FUSION_CONFIGS", "12" if SMOKE else "120"))
#: Configurations the staged oracle is timed on; 0 means the full grid
#: (the honest comparison — staged cost per config grows with grid width).
FUSION_STAGED_CONFIGS = int(
    os.environ.get("REPRO_BENCH_FUSION_STAGED_CONFIGS", "4" if SMOKE else "0")
)
#: Timed repetitions (best-of).
FUSION_ROUNDS = int(os.environ.get("REPRO_BENCH_FUSION_ROUNDS", "2"))

EXPERIMENT = "backend_fusion_smoke" if SMOKE else "backend_fusion"

#: Grid around V1: clock x PE geometry x cores x lanes x I/O (120 points).
SPACE = AcceleratorSpace(
    {
        "clock_mhz": [600.0, 800.0, 1066.0, 1250.0, 1500.0],
        "pes_x": [2, 4, 8],
        "cores_per_pe": [2, 4],
        "compute_lanes": [32, 64],
        "io_bandwidth_gbps": [8.0, 16.0],
    }
)


def _best_of(rounds, run):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_backend_fusion(benchmark):
    dataset = NASBenchDataset.generate(num_models=FUSION_MODELS, seed=2022)
    networks = [record.build_network(dataset.network_config) for record in dataset]
    table = LayerTable.from_networks(networks)
    configs = list(itertools.islice(SPACE.enumerate(), FUSION_CONFIGS))
    staged_configs = configs[:FUSION_STAGED_CONFIGS] if FUSION_STAGED_CONFIGS else configs
    staged = BatchSimulator(strategy="staged")

    # Equivalence guard (and warm-up): fused must match the staged oracle
    # bit-for-bit on the subset both paths run.
    staged_latency, staged_energy = staged.evaluate_table_grid(table, staged_configs)
    oracle_check = compile_and_time_table(table, staged_configs)
    np.testing.assert_array_equal(oracle_check.latency_ms, staged_latency)
    np.testing.assert_array_equal(oracle_check.energy_mj, staged_energy)

    staged_elapsed, _ = _best_of(
        FUSION_ROUNDS, lambda: staged.evaluate_table_grid(table, staged_configs)
    )
    fused_elapsed, _ = _best_of(FUSION_ROUNDS, lambda: compile_and_time_table(table, configs))
    dual_elapsed, _ = _best_of(
        FUSION_ROUNDS, lambda: compile_and_time_table(table, configs, sensitivities=True)
    )
    benchmark.pedantic(lambda: compile_and_time_table(table, configs), rounds=1, iterations=1)

    staged_rate = len(dataset) * len(staged_configs) / staged_elapsed
    fused_rate = len(dataset) * len(configs) / fused_elapsed
    dual_rate = len(dataset) * len(configs) / dual_elapsed
    speedup = fused_rate / staged_rate
    dual_overhead = fused_rate / dual_rate

    benchmark.extra_info["models"] = len(dataset)
    benchmark.extra_info["configs"] = len(configs)
    benchmark.extra_info["fused_speedup_vs_staged"] = round(speedup, 1)
    benchmark.extra_info["fused_evals_per_sec"] = round(fused_rate, 1)

    lines = [
        "Backend fusion — (model, config) evaluations/sec, "
        f"{len(dataset)} models x {len(configs)} configs ({table.macs.size} layer rows)",
        f"{'engine':<42}{'evals/sec':>12}{'elapsed (s)':>13}{'speedup':>10}",
        f"{f'staged pipeline ({len(staged_configs)} configs)':<42}"
        f"{staged_rate:>12.1f}{staged_elapsed:>13.3f}{1.0:>10.1f}",
        f"{f'fused kernel ({len(configs)} configs)':<42}"
        f"{fused_rate:>12.1f}{fused_elapsed:>13.3f}{speedup:>10.1f}",
        f"{f'fused + sensitivities ({len(configs)} configs)':<42}"
        f"{dual_rate:>12.1f}{dual_elapsed:>13.3f}{fused_rate / staged_rate / dual_overhead:>10.1f}",
    ]
    report(EXPERIMENT, lines)
    report_json(
        EXPERIMENT,
        headline={"fused_speedup_vs_staged": speedup},
        population={
            "models": len(dataset),
            "configs": len(configs),
            "staged_configs": len(staged_configs),
            "layer_rows": int(table.macs.size),
        },
        metrics={
            "staged_evals_per_sec": staged_rate,
            "fused_evals_per_sec": fused_rate,
            "dual_evals_per_sec": dual_rate,
            "sensitivity_overhead_x": dual_overhead,
        },
    )

    # The >= 2x bound is the headline-scale acceptance criterion; at smoke
    # scale the staged intermediates still fit in cache and the honest gap is
    # smaller, so smoke only requires the fused kernel to never be slower
    # (the comparator gates the smoke speedup against its own baseline).
    floor = 1.0 if SMOKE else 2.0
    assert speedup >= floor, (
        f"fused kernel only {speedup:.2f}x the staged pipeline (floor {floor}x)"
    )
