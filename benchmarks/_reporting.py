"""Reporting helper shared by the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, the regenerated rows are written to
``benchmarks/results/<experiment>.txt`` so they can be inspected (and copied
into EXPERIMENTS.md) without re-running the harness, and printed to stdout for
``pytest -s`` runs.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def report(experiment: str, lines: list[str]) -> str:
    """Write *lines* to the experiment's result file and return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    print(f"\n=== {experiment} ===\n{text}")
    return text
