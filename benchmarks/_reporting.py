"""Reporting helpers shared by the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, the regenerated rows are written to
``benchmarks/results/<experiment>.txt`` so they can be inspected (and copied
into EXPERIMENTS.md) without re-running the harness, and printed to stdout for
``pytest -s`` runs.

Performance benchmarks additionally emit a machine-normalized
``benchmarks/results/BENCH_<experiment>.json`` via :func:`report_json`:
headline metrics (speedups and throughputs, all higher-is-better), the
population sizes they were measured on, and a **measured calibration
constant** — the elapsed seconds of a fixed numpy workload on this machine —
so throughputs can be compared across hosts as ``rate * calibration``
(seconds of reference work per benchmark unit).  Committed baselines live in
``benchmarks/baselines/``; :func:`compare_to_baseline` (and the
``compare_bench.py`` CLI around it) diff a fresh run against them with a
relative tolerance band, flagging any headline metric that regressed below
``baseline * (1 - tolerance)``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"
BASELINES_DIR = Path(__file__).parent / "baselines"

#: Schema version of the BENCH_*.json payloads.
BENCH_SCHEMA = 1

#: Fixed calibration workload size (rows of the reduceat/matmul mix).
_CALIBRATION_ROWS = 200_000

_calibration_cache: float | None = None


def report(experiment: str, lines: list[str]) -> str:
    """Write *lines* to the experiment's result file and return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    print(f"\n=== {experiment} ===\n{text}")
    return text


def machine_calibration(rounds: int = 3) -> float:
    """Best-of elapsed seconds of a fixed numpy workload on this machine.

    The workload mixes the primitives the sweep kernels live on — gathers,
    elementwise arithmetic and ``np.add.reduceat`` segment reductions — so the
    constant tracks the machine's effective numpy throughput rather than raw
    clock speed.  Cached after the first measurement (it is ~50 ms of work).
    """
    global _calibration_cache
    if _calibration_cache is not None:
        return _calibration_cache
    rng = np.random.default_rng(2022)
    values = rng.random((_CALIBRATION_ROWS, 4))
    indices = rng.integers(0, _CALIBRATION_ROWS, size=_CALIBRATION_ROWS)
    starts = np.arange(0, _CALIBRATION_ROWS, 50)
    best = float("inf")
    for _ in range(rounds):
        begin = time.perf_counter()
        gathered = values[indices]
        mixed = gathered * 1.5 + values
        np.add.reduceat(mixed, starts, axis=0).sum()
        best = min(best, time.perf_counter() - begin)
    _calibration_cache = best
    return best


def machine_fingerprint() -> dict:
    """Non-identifying description of the measuring machine."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def report_json(
    experiment: str,
    headline: dict[str, float],
    population: dict[str, int] | None = None,
    metrics: dict[str, float] | None = None,
) -> dict:
    """Write ``BENCH_<experiment>.json`` and return the payload.

    ``headline`` metrics are the regression-gated numbers — all must be
    higher-is-better (speedups, throughput rates).  ``population`` records the
    sizes the metrics were measured on (models, configs, ...), so a baseline
    diff can refuse to compare apples to oranges.  ``metrics`` holds
    non-gated context numbers.

    When tracing is enabled (``REPRO_TRACE``), the payload additionally
    carries an ``obs`` key with the run's per-span breakdown
    (count / total / self time per span name), so a benchmark report doubles
    as a per-stage profile.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": BENCH_SCHEMA,
        "experiment": experiment,
        "machine": machine_fingerprint(),
        "calibration_seconds": round(machine_calibration(), 6),
        "headline": {key: round(float(value), 4) for key, value in headline.items()},
        "population": {key: int(value) for key, value in (population or {}).items()},
        "metrics": {key: round(float(value), 4) for key, value in (metrics or {}).items()},
    }
    try:
        from repro import obs
    except ImportError:  # benchmarks can run without the package installed
        obs = None
    if obs is not None:
        breakdown = obs.span_breakdown()
        if breakdown:
            payload["obs"] = breakdown
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench-json] wrote {path}")
    return payload


def load_baseline(experiment: str, baselines_dir: Path | None = None) -> dict | None:
    """The committed baseline payload for *experiment*, or None."""
    path = (baselines_dir or BASELINES_DIR) / f"BENCH_{experiment}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare_to_baseline(
    payload: dict,
    baseline: dict,
    tolerance: float = 0.15,
) -> list[str]:
    """Regression messages for every headline metric outside the band.

    A headline metric regresses when ``current < baseline * (1 - tolerance)``
    (all headline metrics are higher-is-better).  Metrics present only on one
    side are reported too — a silently dropped headline is itself a
    regression.  Population mismatches make ratio comparisons meaningless, so
    they short-circuit with a single message.
    """
    base_population = baseline.get("population", {})
    population = payload.get("population", {})
    mismatched = {
        key: (base_population[key], population.get(key))
        for key in base_population
        if population.get(key) != base_population[key]
    }
    if mismatched:
        details = ", ".join(
            f"{key}: baseline {base} vs current {cur}" for key, (base, cur) in mismatched.items()
        )
        return [f"population mismatch ({details}); re-run at the baseline sizes to compare"]

    problems = []
    base_headline = baseline.get("headline", {})
    headline = payload.get("headline", {})
    for key in sorted(base_headline):
        if key not in headline:
            problems.append(f"headline metric {key!r} missing from current run")
            continue
        floor = base_headline[key] * (1.0 - tolerance)
        if headline[key] < floor:
            problems.append(
                f"{key} regressed: {headline[key]:.3f} < {floor:.3f} "
                f"(baseline {base_headline[key]:.3f}, tolerance {tolerance:.0%})"
            )
    for key in sorted(set(headline) - set(base_headline)):
        problems.append(f"headline metric {key!r} has no committed baseline")
    return problems
