"""Table 6: model characteristics of the first vs last winner bucket.

Paper reference: the V1 bucket averages 1.53 conv3x3 / 1.65 conv1x1 / 7.05M
parameters, whereas the V3 bucket averages 0.78 conv3x3 / 2.17 conv1x1 / 1.42M
parameters — i.e. the V3-won models are small and 1x1-convolution heavy.
"""

from __future__ import annotations

from repro.analysis import bucket_characteristics, winner_buckets

from _reporting import report


def test_table6_bucket_characteristics(benchmark, bench_measurements):
    def run():
        buckets = winner_buckets(bench_measurements)
        return {
            name: bucket_characteristics(bench_measurements, bucket)
            for name, bucket in buckets.items()
            if bucket.num_models > 0
        }

    characteristics = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Table 6 — characteristics of the winner buckets",
        f"{'characteristic':<30}"
        + "".join(f"Latency({name})<=".rjust(16) for name in characteristics),
    ]
    rows = [
        ("Avg. # of Conv 3x3", lambda c: f"{c.avg_conv3x3:.2f}"),
        ("Avg. # of Conv 1x1", lambda c: f"{c.avg_conv1x1:.2f}"),
        ("Avg. # of MaxPool 3x3", lambda c: f"{c.avg_maxpool3x3:.2f}"),
        ("Avg. Graph Depth", lambda c: f"{c.avg_graph_depth:.2f}"),
        ("Avg. # of Trainable Params", lambda c: f"{c.avg_trainable_parameters:,.0f}"),
        ("# of models", lambda c: str(c.num_models)),
    ]
    for label, getter in rows:
        lines.append(
            f"{label:<30}" + "".join(getter(c).rjust(16) for c in characteristics.values())
        )
    report("table6_bucket_characteristics", lines)

    v1 = characteristics["V1"]
    assert v1.avg_trainable_parameters > 0
    # Paper: the non-V1 buckets contain the extremes of the size distribution —
    # V2 wins the big conv3x3-heavy models, V3 the small conv1x1-heavy ones.
    if "V2" in characteristics:
        assert characteristics["V2"].avg_trainable_parameters > v1.avg_trainable_parameters
    if "V3" in characteristics:
        v3 = characteristics["V3"]
        assert v3.avg_trainable_parameters < v1.avg_trainable_parameters
        assert v3.avg_conv3x3 <= v1.avg_conv3x3
