"""Table 7: average number of trainable parameters vs graph depth.

Paper reference: depth 3 -> 7.44M, depth 4 -> 6.14M, depth 5 -> 6.40M,
depth 6 -> 8.43M — i.e. the mid depths are *lighter* on average, which is why
the latency-vs-depth trend of Figure 11 dips at depths four and five.
"""

from __future__ import annotations

from repro.analysis import parameters_by_depth

from _reporting import report


def test_table7_parameters_vs_depth(benchmark, bench_dataset):
    rows = benchmark.pedantic(lambda: parameters_by_depth(bench_dataset), rounds=1, iterations=1)

    lines = [
        "Table 7 — average number of trainable parameters vs graph depth",
        f"{'graph depth':>12}{'# models':>10}{'avg. # of parameters':>24}",
    ]
    for row in rows:
        lines.append(f"{row.depth:>12}{row.num_models:>10}{row.avg_trainable_parameters:>24,.0f}")
    report("table7_params_vs_depth", lines)

    assert sum(row.num_models for row in rows) == len(bench_dataset)
    by_depth = {row.depth: row.avg_trainable_parameters for row in rows}
    # Deep chains keep full channel counts, so depth-6 cells are the heaviest
    # on average (as in the paper's Table 7).
    if 6 in by_depth and 4 in by_depth:
        assert by_depth[6] > by_depth[4]
