"""Resumable sweep: warm-resume cost ≈ only the missing shards.

The paper's headline sweep is ~1.5M latency simulations; an interruption used
to throw the whole run away.  This benchmark measures the four regimes of
the sharded :class:`~repro.service.MeasurementStore`:

* **cold** — every (shard, configuration) pair simulated and persisted;
* **interrupted resume** — half the shards already on disk (an interrupted
  run), the re-run simulates exactly the missing half;
* **fully warm** — every pair on disk, the "sweep" is pure loading (the
  regime :class:`~repro.service.SweepService` serves queries from);
* **compacted** — the finished sweep merged into one memory-mapped file
  (:meth:`~repro.service.MeasurementStore.compact`), turning the warm load
  from O(files) npz inflations into O(open) plus mmap slices.

The tracked pytest-benchmark metric is the fully-warm load; the table
reports elapsed time, the simulated/loaded pair split from the store stats,
and effective models/sec for all regimes.  ``test_store_compaction`` below
repeats the loose-vs-compacted comparison at a ≥1000-pair scale where the
per-file cost dominates (set ``REPRO_BENCH_COMPACT_MODELS=0`` to skip it).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.arch import STUDIED_CONFIGS
from repro.nasbench import NASBenchDataset
from repro.service import MeasurementStore

from _reporting import report, report_json

#: Population size of the sweep (small by paper standards, enough shards to
#: make the resume arithmetic visible).
STORE_MODELS = int(os.environ.get("REPRO_BENCH_STORE_MODELS", "480"))
#: Models per shard.
STORE_SHARD = int(os.environ.get("REPRO_BENCH_STORE_SHARD", "64"))
#: Seed of the sampled population.
STORE_SEED = int(os.environ.get("REPRO_BENCH_STORE_SEED", "2022"))

#: Population of the full-scale compaction benchmark; 0 skips it.  The tiny
#: shard size is the point: models/shard × configs ≥ 1000 pairs puts the
#: store deep in the many-small-files regime compaction exists for.
COMPACT_MODELS = int(os.environ.get("REPRO_BENCH_COMPACT_MODELS", "700"))
COMPACT_SHARD = int(os.environ.get("REPRO_BENCH_COMPACT_SHARD", "2"))


def _timed_sweep(root, dataset, configs, shard_size=None):
    """One store sweep; returns (store, elapsed seconds)."""
    store = MeasurementStore(root, shard_size=shard_size or STORE_SHARD)
    start = time.perf_counter()
    store.sweep(dataset, configs=configs)
    return store, time.perf_counter() - start


def _best_load_seconds(root, dataset, configs, shard_size, rounds=3):
    """Best-of-N wall time of a from-scratch ``load()`` (fresh store each
    round, so per-store caches never flatter the later rounds)."""
    best = float("inf")
    for _ in range(rounds):
        store = MeasurementStore(root, shard_size=shard_size)
        start = time.perf_counter()
        store.load(dataset, configs=configs)
        best = min(best, time.perf_counter() - start)
    return best


def test_resumable_sweep(benchmark, tmp_path):
    dataset = NASBenchDataset.generate(num_models=STORE_MODELS, seed=STORE_SEED)
    configs = list(STUDIED_CONFIGS.values())
    total = len(dataset)

    # --- cold: everything simulated --------------------------------------- #
    cold_store, cold_elapsed = _timed_sweep(tmp_path / "cold", dataset, configs)
    n_shards = len(cold_store.shard_ranges(total))
    n_pairs = n_shards * len(configs)
    assert cold_store.stats.pairs_simulated == n_pairs

    # --- interrupted resume: half the shards are already on disk ---------- #
    # Shards are content-keyed, so sweeping the prefix population writes
    # exactly the files the full population reuses.
    warm_shards = n_shards // 2
    prefix = NASBenchDataset(dataset.records[: warm_shards * STORE_SHARD], dataset.network_config)
    resume_root = tmp_path / "resume"
    MeasurementStore(resume_root, shard_size=STORE_SHARD).sweep(prefix, configs=configs)
    resume_store, resume_elapsed = _timed_sweep(resume_root, dataset, configs)
    assert resume_store.stats.pairs_simulated == (n_shards - warm_shards) * len(configs)
    assert resume_store.stats.pairs_loaded == warm_shards * len(configs)
    assert resume_elapsed < cold_elapsed, (
        f"resuming {n_shards - warm_shards}/{n_shards} shards took "
        f"{resume_elapsed:.3f}s vs {cold_elapsed:.3f}s cold"
    )

    # --- fully warm: pure loading (the tracked benchmark metric) ----------- #
    warm_store = MeasurementStore(tmp_path / "cold", shard_size=STORE_SHARD)
    benchmark.pedantic(lambda: warm_store.sweep(dataset, configs=configs), rounds=3, iterations=1)
    load_store, warm_elapsed = _timed_sweep(tmp_path / "cold", dataset, configs)
    assert load_store.stats.pairs_simulated == 0
    assert warm_elapsed < cold_elapsed

    # --- compacted: one memory-mapped file instead of one npz per pair ----- #
    loose_load = _best_load_seconds(tmp_path / "cold", dataset, configs, STORE_SHARD)
    MeasurementStore(tmp_path / "cold", shard_size=STORE_SHARD).compact(dataset, configs=configs)
    compact_load = _best_load_seconds(tmp_path / "cold", dataset, configs, STORE_SHARD)
    compact_store = MeasurementStore(tmp_path / "cold", shard_size=STORE_SHARD)
    compact_store.load(dataset, configs=configs)
    assert compact_store.stats.pairs_compacted == n_pairs

    benchmark.extra_info["shards"] = n_shards
    benchmark.extra_info["cold_models_per_sec"] = round(total / cold_elapsed, 1)
    benchmark.extra_info["resume_models_per_sec"] = round(total / resume_elapsed, 1)
    benchmark.extra_info["warm_models_per_sec"] = round(total / warm_elapsed, 1)
    benchmark.extra_info["resume_fraction_of_cold"] = round(resume_elapsed / cold_elapsed, 3)
    benchmark.extra_info["compacted_load_speedup"] = round(loose_load / compact_load, 2)

    rows = [
        ("cold (all simulated)", cold_store.stats, cold_elapsed),
        (f"resume ({warm_shards}/{n_shards} shards warm)",
         resume_store.stats, resume_elapsed),
        ("fully warm (pure load)", load_store.stats, warm_elapsed),
        ("compacted (mmap load)", compact_store.stats, compact_load),
    ]
    lines = [
        "Resumable sweep — sharded measurement store over the V1/V2/V3 sweep",
        f"({total} models, {n_shards} shards of {STORE_SHARD}, "
        f"{n_pairs} (shard, config) pairs)",
        f"{'regime':<30}{'simulated':>10}{'loaded':>8}{'elapsed (s)':>13}"
        f"{'models/sec':>12}",
    ]
    for label, stats, elapsed in rows:
        lines.append(
            f"{label:<30}{stats.pairs_simulated:>10}{stats.pairs_loaded:>8}"
            f"{elapsed:>13.3f}{total / elapsed:>12.1f}"
        )
    report("resumable_sweep", lines)
    report_json(
        "resumable_sweep",
        headline={
            "warm_speedup_vs_cold": cold_elapsed / warm_elapsed,
            "resume_speedup_vs_cold": cold_elapsed / resume_elapsed,
            "compacted_load_speedup_vs_loose": loose_load / compact_load,
        },
        population={
            "models": total,
            "shard_size": STORE_SHARD,
            "configs": len(configs),
        },
        metrics={
            "cold_models_per_sec": total / cold_elapsed,
            "resume_models_per_sec": total / resume_elapsed,
            "warm_models_per_sec": total / warm_elapsed,
            "loose_load_seconds": loose_load,
            "compacted_load_seconds": compact_load,
        },
    )


@pytest.mark.skipif(COMPACT_MODELS <= 0, reason="REPRO_BENCH_COMPACT_MODELS=0")
def test_store_compaction(benchmark, tmp_path):
    """Compacted vs loose warm ``load()`` at ≥1000 (shard, config) pairs.

    Tiny shards make the loose store pathological on purpose — every pair is
    one npz open + inflate — which is exactly what a million-pair paper-scale
    sweep looks like to the filesystem.  The acceptance headline is the
    compacted/loose load ratio at this scale.
    """
    dataset = NASBenchDataset.generate(num_models=COMPACT_MODELS, seed=STORE_SEED)
    configs = list(STUDIED_CONFIGS.values())
    store, sweep_elapsed = _timed_sweep(tmp_path, dataset, configs, shard_size=COMPACT_SHARD)
    n_pairs = len(store.shard_ranges(len(dataset))) * len(configs)
    assert n_pairs >= 1000, f"only {n_pairs} pairs; shrink COMPACT_SHARD or grow COMPACT_MODELS"

    loose_load = _best_load_seconds(tmp_path, dataset, configs, COMPACT_SHARD)
    reference = MeasurementStore(tmp_path, shard_size=COMPACT_SHARD).load(dataset, configs=configs)
    compaction = MeasurementStore(tmp_path, shard_size=COMPACT_SHARD).compact(
        dataset, configs=configs
    )
    assert compaction.pairs == n_pairs
    compact_load = _best_load_seconds(tmp_path, dataset, configs, COMPACT_SHARD)

    # The tracked metric is the compacted load; correctness is byte-identity.
    compacted_store = MeasurementStore(tmp_path, shard_size=COMPACT_SHARD)
    loaded = benchmark.pedantic(
        lambda: compacted_store.load(dataset, configs=configs), rounds=3, iterations=1
    )
    for config in configs:
        np.testing.assert_array_equal(
            loaded.latencies(config.name), reference.latencies(config.name)
        )
        np.testing.assert_array_equal(
            loaded.energies(config.name), reference.energies(config.name)
        )

    speedup = loose_load / compact_load
    benchmark.extra_info["pairs"] = n_pairs
    benchmark.extra_info["compacted_load_speedup"] = round(speedup, 2)
    report(
        "store_compaction",
        [
            "Store compaction — loose npz-per-pair vs one memory-mapped file",
            f"({COMPACT_MODELS} models, shards of {COMPACT_SHARD}, "
            f"{n_pairs} (shard, config) pairs; cold sweep {sweep_elapsed:.2f}s)",
            f"{'layout':<28}{'files':>8}{'load (s)':>11}{'pairs/sec':>12}",
            f"{'loose (npz per pair)':<28}{n_pairs:>8}{loose_load:>11.3f}"
            f"{n_pairs / loose_load:>12.0f}",
            f"{'compacted (mmap)':<28}{1:>8}{compact_load:>11.3f}"
            f"{n_pairs / compact_load:>12.0f}",
            f"speedup: {speedup:.1f}x",
        ],
    )
    report_json(
        "store_compaction",
        headline={"compacted_load_speedup_vs_loose": speedup},
        population={
            "models": COMPACT_MODELS,
            "shard_size": COMPACT_SHARD,
            "configs": len(configs),
            "pairs": n_pairs,
        },
        metrics={
            "loose_load_seconds": loose_load,
            "compacted_load_seconds": compact_load,
            "loose_pairs_per_sec": n_pairs / loose_load,
            "compacted_pairs_per_sec": n_pairs / compact_load,
        },
    )
