"""Resumable sweep: warm-resume cost ≈ only the missing shards.

The paper's headline sweep is ~1.5M latency simulations; an interruption used
to throw the whole run away.  This benchmark measures the three regimes of
the sharded :class:`~repro.service.MeasurementStore`:

* **cold** — every (shard, configuration) pair simulated and persisted;
* **interrupted resume** — half the shards already on disk (an interrupted
  run), the re-run simulates exactly the missing half;
* **fully warm** — every pair on disk, the "sweep" is pure loading (the
  regime :class:`~repro.service.SweepService` serves queries from).

The tracked pytest-benchmark metric is the fully-warm load; the table
reports elapsed time, the simulated/loaded pair split from the store stats,
and effective models/sec for all three regimes.
"""

from __future__ import annotations

import os
import time

from repro.arch import STUDIED_CONFIGS
from repro.nasbench import NASBenchDataset
from repro.service import MeasurementStore

from _reporting import report, report_json

#: Population size of the sweep (small by paper standards, enough shards to
#: make the resume arithmetic visible).
STORE_MODELS = int(os.environ.get("REPRO_BENCH_STORE_MODELS", "480"))
#: Models per shard.
STORE_SHARD = int(os.environ.get("REPRO_BENCH_STORE_SHARD", "64"))
#: Seed of the sampled population.
STORE_SEED = int(os.environ.get("REPRO_BENCH_STORE_SEED", "2022"))


def _timed_sweep(root, dataset, configs):
    """One store sweep; returns (store, elapsed seconds)."""
    store = MeasurementStore(root, shard_size=STORE_SHARD)
    start = time.perf_counter()
    store.sweep(dataset, configs=configs)
    return store, time.perf_counter() - start


def test_resumable_sweep(benchmark, tmp_path):
    dataset = NASBenchDataset.generate(num_models=STORE_MODELS, seed=STORE_SEED)
    configs = list(STUDIED_CONFIGS.values())
    total = len(dataset)

    # --- cold: everything simulated --------------------------------------- #
    cold_store, cold_elapsed = _timed_sweep(tmp_path / "cold", dataset, configs)
    n_shards = len(cold_store.shard_ranges(total))
    n_pairs = n_shards * len(configs)
    assert cold_store.stats.pairs_simulated == n_pairs

    # --- interrupted resume: half the shards are already on disk ---------- #
    # Shards are content-keyed, so sweeping the prefix population writes
    # exactly the files the full population reuses.
    warm_shards = n_shards // 2
    prefix = NASBenchDataset(dataset.records[: warm_shards * STORE_SHARD], dataset.network_config)
    resume_root = tmp_path / "resume"
    MeasurementStore(resume_root, shard_size=STORE_SHARD).sweep(prefix, configs=configs)
    resume_store, resume_elapsed = _timed_sweep(resume_root, dataset, configs)
    assert resume_store.stats.pairs_simulated == (n_shards - warm_shards) * len(configs)
    assert resume_store.stats.pairs_loaded == warm_shards * len(configs)
    assert resume_elapsed < cold_elapsed, (
        f"resuming {n_shards - warm_shards}/{n_shards} shards took "
        f"{resume_elapsed:.3f}s vs {cold_elapsed:.3f}s cold"
    )

    # --- fully warm: pure loading (the tracked benchmark metric) ----------- #
    warm_store = MeasurementStore(tmp_path / "cold", shard_size=STORE_SHARD)
    benchmark.pedantic(lambda: warm_store.sweep(dataset, configs=configs), rounds=3, iterations=1)
    load_store, warm_elapsed = _timed_sweep(tmp_path / "cold", dataset, configs)
    assert load_store.stats.pairs_simulated == 0
    assert warm_elapsed < cold_elapsed

    benchmark.extra_info["shards"] = n_shards
    benchmark.extra_info["cold_models_per_sec"] = round(total / cold_elapsed, 1)
    benchmark.extra_info["resume_models_per_sec"] = round(total / resume_elapsed, 1)
    benchmark.extra_info["warm_models_per_sec"] = round(total / warm_elapsed, 1)
    benchmark.extra_info["resume_fraction_of_cold"] = round(resume_elapsed / cold_elapsed, 3)

    rows = [
        ("cold (all simulated)", cold_store.stats, cold_elapsed),
        (f"resume ({warm_shards}/{n_shards} shards warm)",
         resume_store.stats, resume_elapsed),
        ("fully warm (pure load)", load_store.stats, warm_elapsed),
    ]
    lines = [
        "Resumable sweep — sharded measurement store over the V1/V2/V3 sweep",
        f"({total} models, {n_shards} shards of {STORE_SHARD}, "
        f"{n_pairs} (shard, config) pairs)",
        f"{'regime':<30}{'simulated':>10}{'loaded':>8}{'elapsed (s)':>13}"
        f"{'models/sec':>12}",
    ]
    for label, stats, elapsed in rows:
        lines.append(
            f"{label:<30}{stats.pairs_simulated:>10}{stats.pairs_loaded:>8}"
            f"{elapsed:>13.3f}{total / elapsed:>12.1f}"
        )
    report("resumable_sweep", lines)
    report_json(
        "resumable_sweep",
        headline={
            "warm_speedup_vs_cold": cold_elapsed / warm_elapsed,
            "resume_speedup_vs_cold": cold_elapsed / resume_elapsed,
        },
        population={
            "models": total,
            "shard_size": STORE_SHARD,
            "configs": len(configs),
        },
        metrics={
            "cold_models_per_sec": total / cold_elapsed,
            "resume_models_per_sec": total / resume_elapsed,
            "warm_models_per_sec": total / warm_elapsed,
        },
    )
