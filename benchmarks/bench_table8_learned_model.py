"""Table 8: accuracy and correlation of the learned performance model.

Paper reference (per-configuration GNN trained on 254K models): average
estimation accuracy 0.968 / 0.979 / 0.964 and Spearman correlation > 0.999 for
V1 / V2 / V3.  The reproduction trains the same encode-process-decode graph
network per configuration on the sampled population's simulated latencies.

The training scale can be tuned with environment variables:
``REPRO_TABLE8_EPOCHS`` (default 45) and ``REPRO_TABLE8_BATCH`` (default 32).
At the default benchmark population (1,200 models) this reaches ~0.93-0.97
average accuracy and >0.98 Spearman; growing the population towards the
paper's scale pushes the metrics towards the published values (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import os

from repro.core import LearnedPerformanceModel, TrainingSettings

from _reporting import report

EPOCHS = int(os.environ.get("REPRO_TABLE8_EPOCHS", "45"))
BATCH_SIZE = int(os.environ.get("REPRO_TABLE8_BATCH", "32"))


def test_table8_learned_performance_model(benchmark, bench_dataset, bench_measurements):
    cells = [record.cell for record in bench_dataset.records]
    settings = TrainingSettings(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        learning_rate=2e-3,
        latent_size=32,
        hidden_size=32,
        num_message_passing_steps=5,
        seed=0,
    )

    def run():
        reports = {}
        for name in bench_measurements.config_names:
            model = LearnedPerformanceModel(name, settings)
            model.fit(cells, bench_measurements.latencies(name))
            reports[name] = model.evaluate("test")
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Table 8 — learned performance model accuracy and correlations",
        f"(training population: {len(cells)} models, epochs={EPOCHS}, batch={BATCH_SIZE})",
        f"{'metric':<24}" + "".join(f"{name:>14}" for name in reports),
    ]
    rows = [
        ("Training Set Size", lambda r: str(r.training_set_size)),
        ("Test Set Size", lambda r: str(r.test_set_size)),
        ("Avg. Accuracy", lambda r: f"{r.average_accuracy:.3f}"),
        ("Spearman Correlation", lambda r: f"{r.spearman:.5f}"),
        ("Pearson Correlation", lambda r: f"{r.pearson:.5f}"),
    ]
    for label, getter in rows:
        lines.append(f"{label:<24}" + "".join(getter(r).rjust(14) for r in reports.values()))
    report("table8_learned_model", lines)

    for name, result in reports.items():
        # The paper reports ~0.96-0.98 accuracy and >0.999 correlations at 254K
        # training samples; at benchmark scale we require the same qualitative
        # outcome: high accuracy and very strong rank correlation.
        assert result.average_accuracy > 0.80, name
        assert result.spearman > 0.93, name
        assert result.pearson > 0.90, name
