"""Hardware design-space sweep throughput: config-axis grid vs per-config loop.

A design-space study multiplies the sweep cost by the size of the hardware
grid: the same population is re-simulated on every configuration.  The
per-config loop re-runs the mapping/cache/timing/energy kernels once per
configuration; the config-axis vectorized path
(:meth:`BatchSimulator.evaluate_table_grid`) broadcasts the configuration
scalars as :class:`~repro.arch.ConfigTable` columns, runs every kernel once
over ``(num_configs, num_layers)`` arrays, and factorizes the mapping/cache
kernels over the distinct sub-configurations they read (a clock axis is
free).  This benchmark measures both on the same grid (and asserts
bit-identical results); the grid path must be at least 3x faster on a
>= 16-configuration grid.  Smaller (smoke-sized) grids only require 2x: the
fused grid kernel carries ~1 ms of fixed per-call setup (unique-level array
assembly + scratch buffers), which is a visible fraction of a
few-millisecond sweep but vanishes at every real scale.

The primary population is generation-scale (tens of models) — the shape the
grid path actually serves in the co-search inner loop, predictor pools and
incremental store extends.  A second, larger population is reported for
context: there both paths stream the same multi-megabyte arrays and the
speedup honestly tapers toward the memory-bandwidth bound.
"""

from __future__ import annotations

import itertools
import os
import time

import numpy as np

from repro.hwspace import AcceleratorSpace
from repro.nasbench import NASBenchDataset
from repro.nasbench.layer_table import LayerTable
from repro.simulator import BatchSimulator

from _reporting import report, report_json

#: Models in the primary (generation-scale) swept population.
HW_MODELS = int(os.environ.get("REPRO_BENCH_HW_MODELS", "48"))
#: Models in the context (population-scale) row; 0 skips it.
HW_LARGE_MODELS = int(os.environ.get("REPRO_BENCH_HW_LARGE_MODELS", "200"))
#: Hardware grid size cap (the full axes give 36 points; smoke mode trims).
HW_CONFIGS = int(os.environ.get("REPRO_BENCH_HW_CONFIGS", "36"))
#: Timed repetitions (best-of).
HW_ROUNDS = int(os.environ.get("REPRO_BENCH_HW_ROUNDS", "3"))

#: The benchmark grid: clock x PE geometry x cores x lanes around V1.
SPACE = AcceleratorSpace(
    {
        "clock_mhz": [800.0, 1066.0, 1250.0],
        "pes_x": [2, 4, 8],
        "cores_per_pe": [2, 4],
        "compute_lanes": [32, 64],
    }
)


def _best_of(rounds, run):
    timings = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def _measure(num_models, configs, simulator, seed=2022):
    """Best-of timings of both sweep paths on one population; checks equality."""
    dataset = NASBenchDataset.generate(num_models=num_models, seed=seed)
    networks = [record.build_network(dataset.network_config) for record in dataset]
    table = LayerTable.from_networks(networks)

    def loop_sweep():
        return [simulator.evaluate_table(table, config) for config in configs]

    def grid_sweep():
        return simulator.evaluate_table_grid(table, configs)

    # Warm-up + equivalence guard: the two paths must agree bit-for-bit.
    loop_results = loop_sweep()
    grid_latency, grid_energy = grid_sweep()
    for index in range(len(configs)):
        np.testing.assert_array_equal(grid_latency[index], loop_results[index][0])
        np.testing.assert_array_equal(grid_energy[index], loop_results[index][1])

    loop_elapsed, _ = _best_of(HW_ROUNDS, loop_sweep)
    grid_elapsed, _ = _best_of(HW_ROUNDS, grid_sweep)
    return grid_sweep, loop_elapsed, grid_elapsed


def test_hwsweep_throughput(benchmark):
    configs = list(itertools.islice(SPACE.enumerate(), HW_CONFIGS))
    simulator = BatchSimulator()

    grid_sweep, loop_elapsed, grid_elapsed = _measure(HW_MODELS, configs, simulator)
    benchmark.pedantic(grid_sweep, rounds=1, iterations=1)

    evaluations = HW_MODELS * len(configs)
    loop_rate = evaluations / loop_elapsed
    grid_rate = evaluations / grid_elapsed
    speedup = grid_rate / loop_rate

    benchmark.extra_info["grid_configs"] = len(configs)
    benchmark.extra_info["models"] = HW_MODELS
    benchmark.extra_info["loop_evals_per_sec"] = round(loop_rate, 1)
    benchmark.extra_info["grid_evals_per_sec"] = round(grid_rate, 1)
    benchmark.extra_info["grid_speedup"] = round(speedup, 1)

    lines = [
        "Hardware design-space sweep — (model, config) evaluations/sec over "
        f"a {len(configs)}-configuration grid",
        f"{'engine':<34}{'evals/sec':>14}{'elapsed (s)':>14}{'speedup':>10}",
        f"{f'per-config loop ({HW_MODELS} models)':<34}"
        f"{loop_rate:>14.1f}{loop_elapsed:>14.3f}{1.0:>10.1f}",
        f"{f'config-axis grid ({HW_MODELS} models)':<34}"
        f"{grid_rate:>14.1f}{grid_elapsed:>14.3f}{speedup:>10.1f}",
    ]

    if HW_LARGE_MODELS:
        _, large_loop, large_grid = _measure(HW_LARGE_MODELS, configs, simulator)
        large_evaluations = HW_LARGE_MODELS * len(configs)
        large_loop_rate = large_evaluations / large_loop
        large_grid_rate = large_evaluations / large_grid
        benchmark.extra_info["large_models"] = HW_LARGE_MODELS
        benchmark.extra_info["large_grid_speedup"] = round(large_grid_rate / large_loop_rate, 1)
        lines += [
            f"{f'per-config loop ({HW_LARGE_MODELS} models)':<34}"
            f"{large_loop_rate:>14.1f}{large_loop:>14.3f}{1.0:>10.1f}",
            f"{f'config-axis grid ({HW_LARGE_MODELS} models)':<34}"
            f"{large_grid_rate:>14.1f}{large_grid:>14.3f}"
            f"{large_grid_rate / large_loop_rate:>10.1f}",
        ]
    report("hwsweep_throughput", lines)
    report_json(
        "hwsweep_throughput",
        headline={"grid_speedup": speedup},
        population={"models": HW_MODELS, "configs": len(configs)},
        metrics={"loop_evals_per_sec": loop_rate, "grid_evals_per_sec": grid_rate},
    )

    if len(configs) >= 8:
        # Small smoke grids finish in a few milliseconds, where the fused
        # kernel's ~1 ms fixed setup is visible; the 3x bar applies to real
        # grid widths (the comparator still gates the measured smoke speedup
        # against its committed baseline).
        floor = 3.0 if len(configs) >= 16 else 2.0
        assert speedup >= floor, (
            f"config-axis sweep only {speedup:.1f}x the per-config loop on a "
            f"{len(configs)}-configuration grid (floor {floor}x)"
        )
