"""Figure 14: trainable parameters vs latency and the configuration crossover.

Paper reference: latency is mostly proportional to the number of trainable
parameters on every class; very small models are equally fast everywhere,
medium models (5-30M parameters) run fastest on V1 (its larger on-chip SRAM
caches more of the weights), and the largest models flip to V2/V3 (higher
memory bandwidth) with V2 ahead of V3 thanks to its higher sustained
bandwidth.
"""

from __future__ import annotations

from repro.analysis import crossover_analysis, latency_parameter_correlation

from _reporting import report

BAND_EDGES = (0.0, 1e6, 2e6, 5e6, 10e6, 20e6, 30e6, 1e9)


def test_fig14_parameters_vs_latency(benchmark, bench_measurements):
    def run():
        correlations = {
            name: latency_parameter_correlation(bench_measurements, name)
            for name in bench_measurements.config_names
        }
        bands = crossover_analysis(bench_measurements, band_edges=BAND_EDGES)
        return correlations, bands

    correlations, bands = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 14 — trainable parameters vs latency"]
    lines.append(
        "Pearson correlation(params, latency): "
        + ", ".join(f"{name}: {value:.3f}" for name, value in correlations.items())
    )
    lines.append(
        f"{'parameter band':<24}{'# models':>10}"
        + "".join(f"{name:>12}" for name in bench_measurements.config_names)
        + f"{'fastest':>10}"
    )
    for band in bands:
        label = f"[{band.lower_parameters / 1e6:.0f}M, {band.upper_parameters / 1e6:.0f}M)"
        lines.append(
            f"{label:<24}{band.num_models:>10}"
            + "".join(
                f"{band.avg_latency_ms[name]:>12.3f}"
                for name in bench_measurements.config_names
            )
            + f"{band.fastest_config:>10}"
        )
    report("fig14_params_vs_latency", lines)

    # Latency tracks parameters on every class.
    assert all(value > 0.75 for value in correlations.values())
    by_lower = {band.lower_parameters: band for band in bands}
    # Medium band (5-30M): V1 fastest.  Largest band (>30M): V2 fastest.
    for lower in (5e6, 10e6, 20e6):
        if lower in by_lower:
            assert by_lower[lower].fastest_config == "V1"
    if 30e6 in by_lower:
        assert by_lower[30e6].fastest_config == "V2"
    # Very small models: the classes are within ~35% of each other.
    smallest = by_lower[0.0]
    values = list(smallest.avg_latency_ms.values())
    assert max(values) < 1.35 * min(values)
