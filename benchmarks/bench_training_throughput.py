"""Training throughput: pack-once GraphTable vs legacy per-list batching.

Four measurements, mirroring `bench_sweep_throughput.py` on the learned-
model side of the stack:

* **featurize + pack** — graphs/sec to encode a population (Figure 4
  featurization) and the one-time cost of packing it into a `GraphTable`;
* **batch formation** — forming one epoch of shuffled mini-batches
  (`slice_batch` vs per-step `batch_graphs` list concatenation), and forming
  the whole-population batch used by single-pass inference (`to_batched`,
  O(1), vs re-concatenating every graph);
* **training** — wall-clock per epoch for `train_model` with
  `strategy="packed"` vs `strategy="list"` (bit-for-bit the same numerics);
* **pipeline** — a full `run_experiment` call cold vs warm cache, which is
  the smoke-mode path CI exercises.

Population and epochs scale down with ``REPRO_BENCH_TRAIN_MODELS`` /
``REPRO_BENCH_TRAIN_EPOCHS`` for CI smoke runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import (
    EncodeProcessDecode,
    GraphTable,
    TrainingSettings,
    batch_graphs,
    featurize_cells,
    train_model,
)
from repro.nasbench import sample_unique_cells
from repro.pipeline import Experiment, PopulationSpec, run_experiment

from _reporting import report

NUM_MODELS = int(os.environ.get("REPRO_BENCH_TRAIN_MODELS", "400"))
EPOCHS = int(os.environ.get("REPRO_BENCH_TRAIN_EPOCHS", "5"))
BATCH_SIZE = 16
SEED = 2022
#: Rounds used to time the (fast) batch-formation loops stably.
FORMATION_ROUNDS = 5


def _epoch_orders(num_graphs: int) -> list[np.ndarray]:
    rng = np.random.default_rng(0)
    return [rng.permutation(num_graphs) for _ in range(FORMATION_ROUNDS)]


def test_training_throughput(benchmark, tmp_path):
    cells = sample_unique_cells(NUM_MODELS, seed=SEED)
    targets = np.linspace(-1.0, 1.0, len(cells))

    # --- featurize + pack (one-time, amortized over the whole run) --------
    start = time.perf_counter()
    graphs = featurize_cells(cells)
    featurize_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    table = GraphTable.from_graphs(graphs)
    pack_elapsed = time.perf_counter() - start

    # --- mini-batch formation: one epoch of shuffled batches --------------
    orders = _epoch_orders(len(graphs))
    start = time.perf_counter()
    for order in orders:
        for position in range(0, len(order), BATCH_SIZE):
            indices = order[position : position + BATCH_SIZE]
            batch_graphs([graphs[i] for i in indices])
    legacy_epoch_batching = (time.perf_counter() - start) / FORMATION_ROUNDS

    start = time.perf_counter()
    for order in orders:
        for position in range(0, len(order), BATCH_SIZE):
            table.slice_batch(order[position : position + BATCH_SIZE])
    packed_epoch_batching = (time.perf_counter() - start) / FORMATION_ROUNDS

    # --- whole-population batch (single-pass inference input) -------------
    start = time.perf_counter()
    for _ in range(FORMATION_ROUNDS):
        batch_graphs(graphs)
    legacy_full_batch = (time.perf_counter() - start) / FORMATION_ROUNDS
    start = time.perf_counter()
    for _ in range(FORMATION_ROUNDS):
        table.to_batched()
    packed_full_batch = (time.perf_counter() - start) / FORMATION_ROUNDS

    # --- training: full epochs through the autodiff graph -----------------
    start = time.perf_counter()
    train_model(
        EncodeProcessDecode(seed=1), graphs, targets,
        epochs=EPOCHS, batch_size=BATCH_SIZE, seed=0, strategy="list",
    )
    legacy_train = time.perf_counter() - start

    packed_timings = []

    def packed_training():
        start = time.perf_counter()
        train_model(
            EncodeProcessDecode(seed=1), table, targets,
            epochs=EPOCHS, batch_size=BATCH_SIZE, seed=0, strategy="packed",
        )
        packed_timings.append(time.perf_counter() - start)

    benchmark.pedantic(packed_training, rounds=1, iterations=1)
    packed_train = packed_timings[0]

    # --- pipeline: cold vs warm experiment run ----------------------------
    experiment = Experiment(
        name="bench-training-throughput",
        population=PopulationSpec(num_models=min(NUM_MODELS, 120), seed=SEED),
        config_names=("V1",),
        metrics=("latency",),
        settings=TrainingSettings(epochs=EPOCHS, seed=0),
    )
    cache_dir = tmp_path / "pipeline-cache"
    start = time.perf_counter()
    run_experiment(experiment, cache_dir=cache_dir)
    cold_pipeline = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_experiment(experiment, cache_dir=cache_dir)
    warm_pipeline = time.perf_counter() - start

    featurize_rate = len(cells) / featurize_elapsed
    benchmark.extra_info["featurize_graphs_per_sec"] = round(featurize_rate, 1)
    benchmark.extra_info["epoch_batching_speedup"] = round(
        legacy_epoch_batching / packed_epoch_batching, 2
    )
    benchmark.extra_info["full_batch_speedup"] = round(legacy_full_batch / packed_full_batch, 1)
    benchmark.extra_info["packed_epoch_seconds"] = round(packed_train / EPOCHS, 4)
    benchmark.extra_info["legacy_epoch_seconds"] = round(legacy_train / EPOCHS, 4)
    benchmark.extra_info["pipeline_warm_speedup"] = round(cold_pipeline / warm_pipeline, 1)

    lines = [
        "Training throughput — packed GraphTable vs legacy list batching",
        f"({len(cells)} graphs, batch {BATCH_SIZE}, {EPOCHS} epochs; pipeline on "
        f"{experiment.population.num_models} models; featurize "
        f"{featurize_rate:.0f} graphs/sec, one-time pack {pack_elapsed * 1e3:.2f} ms)",
        f"{'stage':<36}{'packed':>12}{'legacy':>12}{'speedup':>10}",
        f"{'epoch batch formation (ms)':<36}{packed_epoch_batching * 1e3:>12.2f}"
        f"{legacy_epoch_batching * 1e3:>12.2f}"
        f"{legacy_epoch_batching / packed_epoch_batching:>10.1f}",
        f"{'whole-population batch (ms)':<36}{packed_full_batch * 1e3:>12.3f}"
        f"{legacy_full_batch * 1e3:>12.3f}"
        f"{legacy_full_batch / packed_full_batch:>10.1f}",
        f"{'train epoch (s)':<36}{packed_train / EPOCHS:>12.3f}"
        f"{legacy_train / EPOCHS:>12.3f}{legacy_train / packed_train:>10.1f}",
        f"{'pipeline run (s)':<36}{warm_pipeline:>12.3f}"
        f"{cold_pipeline:>12.3f}{cold_pipeline / warm_pipeline:>10.1f}",
        "(pipeline 'packed' column is the warm-cache re-run, 'legacy' the cold run)",
    ]
    report("training_throughput", lines)

    # Direction-robust invariants hold at every scale: the warm pipeline must
    # beat simulate+train and serve everything from cache.  The wall-clock
    # parity/speedup ratios are only meaningful once the population is large
    # enough that formation cost dominates fixed numpy call overhead, so in
    # smoke mode (tiny populations on noisy CI runners) they are reported via
    # extra_info but not asserted.
    assert warm_pipeline < cold_pipeline, (
        f"warm pipeline ({warm_pipeline:.3f}s) not faster than cold ({cold_pipeline:.3f}s)"
    )
    assert warm.cache_stats.misses == 0
    if NUM_MODELS >= 200:
        assert packed_epoch_batching <= 1.15 * legacy_epoch_batching, (
            f"packed epoch batching slower: {packed_epoch_batching:.4f}s vs "
            f"{legacy_epoch_batching:.4f}s"
        )
        assert packed_full_batch * 5.0 <= legacy_full_batch, (
            f"whole-population batch only "
            f"{legacy_full_batch / packed_full_batch:.1f}x the legacy concat"
        )
        assert packed_train <= 1.2 * legacy_train, (
            f"packed training slower than legacy: {packed_train:.3f}s vs "
            f"{legacy_train:.3f}s"
        )
