#!/usr/bin/env python
"""Diff fresh BENCH_*.json results against the committed baselines.

Usage (from the repository root)::

    python benchmarks/compare_bench.py                    # all baselines
    python benchmarks/compare_bench.py backend_fusion     # one experiment
    python benchmarks/compare_bench.py --tolerance 0.15

Every committed ``benchmarks/baselines/BENCH_<name>.json`` is matched against
``benchmarks/results/BENCH_<name>.json`` from the current run.  A headline
metric (all higher-is-better speedups/rates) that falls below
``baseline * (1 - tolerance)`` fails the comparison; so does a headline that
disappeared, or a run at different population sizes.  Exit status is the
number of failing experiments, so CI can gate on it directly.

Results measured on a different machine are still comparable for *speedups*
(ratios cancel the machine out); for absolute throughputs the JSON carries a
measured ``calibration_seconds`` constant — multiply a rate by it to get a
machine-normalized "reference-work units per benchmark unit" figure.  The
gate below intentionally covers only the committed headline metrics, which
are ratios.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _reporting import BASELINES_DIR, RESULTS_DIR, compare_to_baseline


def compare_all(
    names: list[str],
    results_dir: Path,
    baselines_dir: Path,
    tolerance: float,
) -> int:
    """Print a comparison report; return the number of failing experiments."""
    baselines = sorted(baselines_dir.glob("BENCH_*.json"))
    if names:
        wanted = {f"BENCH_{name}.json" for name in names}
        missing = wanted - {path.name for path in baselines}
        if missing:
            print(f"no committed baseline for: {', '.join(sorted(missing))}", file=sys.stderr)
            return len(missing)
        baselines = [path for path in baselines if path.name in wanted]
    if not baselines:
        print(f"no baselines under {baselines_dir}", file=sys.stderr)
        return 1

    failures = 0
    for baseline_path in baselines:
        experiment = baseline_path.stem.removeprefix("BENCH_")
        result_path = results_dir / baseline_path.name
        if not result_path.exists():
            print(f"[SKIP] {experiment}: no fresh result at {result_path}")
            continue
        baseline = json.loads(baseline_path.read_text())
        payload = json.loads(result_path.read_text())
        problems = compare_to_baseline(payload, baseline, tolerance=tolerance)
        if problems:
            failures += 1
            print(f"[FAIL] {experiment}:")
            for problem in problems:
                print(f"       - {problem}")
        else:
            summary = ", ".join(
                f"{key}={value:g}" for key, value in sorted(payload.get("headline", {}).items())
            )
            print(f"[ OK ] {experiment}: {summary}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="experiments to compare (default: all baselines)")
    parser.add_argument("--results-dir", type=Path, default=RESULTS_DIR)
    parser.add_argument("--baselines-dir", type=Path, default=BASELINES_DIR)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative headline regression (default 0.15)",
    )
    args = parser.parse_args(argv)
    return compare_all(args.names, args.results_dir, args.baselines_dir, args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
