"""Figure 5: mean validation accuracy vs latency scatter per configuration.

Paper reference: the population clusters into latency buckets driven by the
number of 3x3 convolutions per cell (the first three buckets average 1.48,
2.0 and 3.0 conv3x3 operations).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import accuracy_latency_scatter

from _reporting import report


def test_fig5_accuracy_vs_latency(benchmark, bench_measurements):
    def run():
        return {
            name: accuracy_latency_scatter(bench_measurements, name, min_accuracy=0.70)
            for name in bench_measurements.config_names
        }

    scatters = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 5 — accuracy vs latency scatter (models with >= 70% accuracy)"]
    conv_counts = np.array([record.metrics.num_conv3x3 for record in bench_measurements.dataset])
    for name, points in scatters.items():
        latencies = np.array([p.latency_ms for p in points])
        accuracies = np.array([p.accuracy for p in points])
        lines.append(
            f"{name}: {len(points)} points, latency [{latencies.min():.3f}, "
            f"{latencies.max():.3f}] ms, accuracy [{accuracies.min():.3f}, {accuracies.max():.3f}]"
        )
        # Latency-bucket structure: average conv3x3 count per latency band.
        edges = [0.0, 0.3, 0.8, 1.5, 3.0, np.inf]
        for low, high in zip(edges[:-1], edges[1:]):
            indices = [p.model_index for p in points if low <= p.latency_ms < high]
            if indices:
                lines.append(
                    f"    latency [{low:.1f}, {high if high != np.inf else 'inf'}) ms: "
                    f"{len(indices):4d} models, avg conv3x3 = {conv_counts[indices].mean():.2f}"
                )
    report("fig5_accuracy_vs_latency", lines)

    # Higher-latency bands contain cells with more 3x3 convolutions (the
    # bucket structure the paper describes).
    for name, points in scatters.items():
        latencies = np.array([p.latency_ms for p in points])
        indices = np.array([p.model_index for p in points])
        slow = conv_counts[indices[latencies > np.median(latencies)]].mean()
        fast = conv_counts[indices[latencies <= np.median(latencies)]].mean()
        assert slow > fast
