"""Figure 15: latency impact of swapping cell operations.

Paper reference: replacing a 1x1 convolution by a 3x3 convolution increases
latency on every class (the increase is smallest, ~174%, on V2); the change is
not symmetric (swapping 3x3 -> 1x1 gives roughly -100%); max-pool -> conv3x3
behaves like conv1x1 -> conv3x3.
"""

from __future__ import annotations

import os

from repro.analysis import operation_swap_matrix
from repro.nasbench import CONV1X1, CONV3X3, MAXPOOL3X3

from _reporting import report

#: Number of models swapped per configuration (the paper sweeps the full 423K).
SWAP_SAMPLE = int(os.environ.get("REPRO_FIG15_MODELS", "120"))

_LABELS = {CONV3X3: "Conv 3x3", CONV1X1: "Conv 1x1", MAXPOOL3X3: "MaxPool 3x3"}


def test_fig15_operation_swaps(benchmark, bench_dataset, bench_configs):
    records = bench_dataset.records

    def run():
        return {
            name: operation_swap_matrix(records, config, max_models=SWAP_SAMPLE, seed=1)
            for name, config in bench_configs.items()
        }

    matrices = benchmark.pedantic(run, rounds=1, iterations=1)

    operations = (CONV3X3, CONV1X1, MAXPOOL3X3)
    lines = [
        f"Figure 15 — average latency change when swapping operations ({SWAP_SAMPLE} models)"
    ]
    for name, matrix in matrices.items():
        lines.append(f"{name}: average change in latency, ms (rows: original, cols: replacement)")
        lines.append(f"{'':<14}" + "".join(f"{_LABELS[op]:>14}" for op in operations))
        for from_op in operations:
            lines.append(
                f"{_LABELS[from_op]:<14}"
                + "".join(f"{matrix.change_ms(from_op, to_op):>14.3f}" for to_op in operations)
            )
        lines.append(f"{name}: average % change in latency")
        for from_op in operations:
            lines.append(
                f"{_LABELS[from_op]:<14}"
                + "".join(
                    f"{matrix.change_percent(from_op, to_op):>14.1f}" for to_op in operations
                )
            )
    report("fig15_operation_swaps", lines)

    for name, matrix in matrices.items():
        # Upgrading an op to conv3x3 increases latency; downgrading decreases it.
        assert matrix.change_ms(CONV1X1, CONV3X3) > 0
        assert matrix.change_ms(MAXPOOL3X3, CONV3X3) > 0
        assert matrix.change_ms(CONV3X3, CONV1X1) < 0
        assert matrix.change_ms(CONV3X3, MAXPOOL3X3) < 0
        # The swap matrix is not symmetric (paper observation).
        assert abs(
            matrix.change_percent(CONV1X1, CONV3X3)
            + matrix.change_percent(CONV3X3, CONV1X1)
        ) > 1.0
