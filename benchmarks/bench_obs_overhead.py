"""Observability overhead: tracing off must be free, tracing on must be cheap.

The obs instrumentation threads through the hottest paths of the stack (the
fused grid kernel, the measurement store, the sweep worker), so its cost
model is part of the performance contract (DESIGN.md §12):

* **off** (``REPRO_TRACE`` unset) — every instrumented call site pays one
  attribute lookup and one constant-time no-op method call.  Measured here
  two ways: the per-call cost of the no-op span itself (micro-benchmark,
  machine-normalized via the calibration constant) and the estimated
  fraction of a real fused sweep spent in no-op obs calls, which must stay
  under 5%;
* **on** — spans, counters and JSONL writes are paid only at stage
  granularity (never inside kernel loops), so a fully traced sweep is gated
  against the untraced one via the ``traced_vs_noop_ratio`` headline.

Tracing must never change results: the traced sweep's latency/energy arrays
are asserted bit-for-bit equal to the untraced run's.
"""

from __future__ import annotations

import itertools
import os
import time

import numpy as np

from repro import obs
from repro.hwspace import AcceleratorSpace
from repro.nasbench import NASBenchDataset
from repro.nasbench.layer_table import LayerTable
from repro.simulator import compile_and_time_table

from _reporting import machine_calibration, report, report_json

#: Models of the swept population (small: the *ratio* is the metric).
OBS_MODELS = int(os.environ.get("REPRO_BENCH_OBS_MODELS", "160"))
#: Hardware grid width of the sweep.
OBS_CONFIGS = int(os.environ.get("REPRO_BENCH_OBS_CONFIGS", "12"))
#: Timed repetitions (best-of).
OBS_ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "3"))
#: Calls of the no-op span/counter micro-benchmark.
NOOP_CALLS = 50_000

#: Estimated share of an untraced sweep spent in no-op obs calls must stay
#: below this (the "tracing off is free" acceptance bound).
NOOP_OVERHEAD_BOUND = 0.05

#: Grid around V1 (matches the fusion benchmark's axes).
SPACE = AcceleratorSpace(
    {
        "clock_mhz": [600.0, 800.0, 1066.0, 1250.0, 1500.0],
        "pes_x": [2, 4, 8],
        "cores_per_pe": [2, 4],
        "compute_lanes": [32, 64],
        "io_bandwidth_gbps": [8.0, 16.0],
    }
)


def _best_of(rounds, run):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _noop_call_seconds() -> float:
    """Best-of per-call cost of one no-op span plus one no-op counter."""
    tracer = obs.active_tracer()
    assert not tracer.enabled
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with tracer.span("bench.noop"):
                tracer.count("bench.noop")
        best = min(best, time.perf_counter() - start)
    return best / NOOP_CALLS


def test_obs_overhead(benchmark, tmp_path):
    dataset = NASBenchDataset.generate(num_models=OBS_MODELS, seed=2022)
    networks = [record.build_network(dataset.network_config) for record in dataset]
    table = LayerTable.from_networks(networks)
    configs = list(itertools.islice(SPACE.enumerate(), OBS_CONFIGS))

    # Pin the off state regardless of the ambient environment, and leave the
    # process in it when done (other benchmarks share this interpreter).
    obs.configure_tracing(False)
    try:
        compile_and_time_table(table, configs)  # warm-up (jit, caches)
        noop_elapsed, noop_result = _best_of(
            OBS_ROUNDS, lambda: compile_and_time_table(table, configs)
        )
        per_call = _noop_call_seconds()

        with obs.capture(tmp_path / "trace") as tracer:
            traced_elapsed, traced_result = _best_of(
                OBS_ROUNDS, lambda: compile_and_time_table(table, configs)
            )
            aggregates = tracer.span_aggregates()
    finally:
        obs.configure_tracing(False)

    # Tracing must never perturb the numbers.
    np.testing.assert_array_equal(traced_result.latency_ms, noop_result.latency_ms)
    np.testing.assert_array_equal(traced_result.energy_mj, noop_result.energy_mj)

    spans_per_sweep = sum(agg["count"] for agg in aggregates.values()) / OBS_ROUNDS
    # Span sites and counter sites are roughly paired on the hot path; double
    # the span count for a conservative per-sweep call estimate.
    overhead_fraction = 2.0 * spans_per_sweep * per_call / noop_elapsed
    traced_vs_noop = noop_elapsed / traced_elapsed
    evals = len(dataset) * len(configs)
    noop_rate = evals / noop_elapsed
    traced_rate = evals / traced_elapsed
    noop_spans_per_sec = 1.0 / per_call

    benchmark.pedantic(lambda: compile_and_time_table(table, configs), rounds=1, iterations=1)
    benchmark.extra_info["noop_span_ns"] = round(per_call * 1e9, 1)
    benchmark.extra_info["traced_vs_noop_ratio"] = round(traced_vs_noop, 3)
    benchmark.extra_info["noop_overhead_fraction"] = round(overhead_fraction, 5)

    lines = [
        "Observability overhead — fused sweep "
        f"({len(dataset)} models x {len(configs)} configs, best of {OBS_ROUNDS})",
        f"{'mode':<26}{'evals/sec':>12}{'elapsed (s)':>13}",
        f"{'tracing off (no-op)':<26}{noop_rate:>12.1f}{noop_elapsed:>13.4f}",
        f"{'tracing on (JSONL)':<26}{traced_rate:>12.1f}{traced_elapsed:>13.4f}",
        f"no-op span+counter: {per_call * 1e9:.0f} ns/call, "
        f"~{spans_per_sweep:.0f} spans/sweep, "
        f"estimated off-mode overhead {overhead_fraction:.2%}",
    ]
    report("obs_overhead", lines)
    report_json(
        "obs_overhead",
        headline={
            "traced_vs_noop_ratio": traced_vs_noop,
            "noop_spans_per_calibration": noop_spans_per_sec * machine_calibration(),
        },
        population={"models": len(dataset), "configs": len(configs)},
        metrics={
            "noop_evals_per_sec": noop_rate,
            "traced_evals_per_sec": traced_rate,
            "noop_span_ns": per_call * 1e9,
            "spans_per_sweep": spans_per_sweep,
            "noop_overhead_fraction": overhead_fraction,
        },
    )

    assert overhead_fraction < NOOP_OVERHEAD_BOUND, (
        f"no-op obs calls cost an estimated {overhead_fraction:.2%} of an untraced "
        f"sweep (bound {NOOP_OVERHEAD_BOUND:.0%}); the off path must stay free"
    )
