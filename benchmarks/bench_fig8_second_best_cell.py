"""Figure 8: the second-best-accuracy cell, its latency and speedups.

Paper reference: giving up 0.16% accuracy (95.055% -> 94.895%) buys a model
with 66% fewer parameters and up to 1.78x lower latency; for this cell V1 —
not V2 — yields the lowest latency.
"""

from __future__ import annotations

from repro import PerformanceSimulator, build_network
from repro.nasbench import (
    BEST_ACCURACY_CELL,
    SECOND_BEST_ACCURACY_CELL,
    SECOND_BEST_ACCURACY_VALUE,
)

from _reporting import report


def test_fig8_second_best_cell(benchmark, bench_configs):
    best_network = build_network(BEST_ACCURACY_CELL)
    second_network = build_network(SECOND_BEST_ACCURACY_CELL)

    def run():
        out = {}
        for name, config in bench_configs.items():
            simulator = PerformanceSimulator(config)
            out[name] = (
                simulator.simulate(second_network).latency_ms,
                simulator.simulate(best_network).latency_ms,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"V1": (2.597874, 1.78), "V2": (2.679829, 1.56), "V3": (2.799071, 1.62)}
    lines = [
        "Figure 8 — second-best accuracy cell (2x conv3x3 + 2x conv1x1)",
        f"accuracy: {SECOND_BEST_ACCURACY_VALUE:.3%}, parameters: "
        f"{second_network.trainable_parameters:,} "
        f"({1 - second_network.trainable_parameters / best_network.trainable_parameters:.0%} fewer "
        "than the best cell)",
        f"{'config':<8}{'latency (ms)':>14}{'speedup vs best':>17}{'paper (ms, x)':>18}",
    ]
    for name, (second_latency, best_latency) in results.items():
        speedup = best_latency / second_latency
        lines.append(
            f"{name:<8}{second_latency:>14.4f}{speedup:>16.2f}x"
            f"{paper[name][0]:>12.3f}, {paper[name][1]:.2f}x"
        )
    report("fig8_second_best_cell", lines)

    # The runner-up is substantially faster than the best model on every class,
    # the parameter reduction is large, and V1 serves it fastest (paper Fig. 8).
    for name, (second_latency, best_latency) in results.items():
        assert best_latency / second_latency > 1.3
    assert second_network.trainable_parameters < 0.7 * best_network.trainable_parameters
    assert results["V1"][0] == min(latency for latency, _ in results.values())
