"""Serving-layer load benchmark: micro-batch efficiency and tail latency.

Two questions about ``repro.server`` (DESIGN.md §13):

* **Does micro-batching pay?**  N concurrent clients issue single-cell
  ``predict`` requests against two server arms that differ only in the
  coalescing window: ``window_ms>0`` (batched) vs ``window_ms=0`` (every
  request its own forward pass).  The headline ``predict_batch_speedup`` is
  the throughput ratio; the acceptance bound is >= 3x at >= 64 clients.
  ``requests_per_batch`` reports how many concurrent requests the window
  actually coalesced per forward pass.
* **What does the tail look like under offered load?**  An open-loop
  generator fires metric lookups at fixed offered QPS levels and records
  per-request p50/p99 wall latency plus the achieved rate and any
  backpressure rejections — the latency-vs-QPS table of the report.

Both arms run the server in-process on an ephemeral loopback port, so the
measured path is the real one: HTTP framing, admission control, executor
hop, packed forward pass / store lookup, envelope encode.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.core import TrainingSettings
from repro.nasbench import NASBenchDataset
from repro.server import ServerBusy, ServerConfig, ServiceClient, SweepServer
from repro.service import MeasurementStore, SweepService

from _reporting import report, report_json

#: Models of the served population (small on purpose: serving overhead, not
#: sweep throughput, is what this benchmark isolates).
SERVER_MODELS = int(os.environ.get("REPRO_BENCH_SERVER_MODELS", "24"))
#: Concurrent predict clients (the acceptance criterion needs >= 64).
SERVER_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVER_CLIENTS", "64"))
#: Sequential predict requests each client issues per arm.
SERVER_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVER_REQUESTS", "6"))
#: Coalescing window of the batched arm (ms).
SERVER_WINDOW_MS = float(os.environ.get("REPRO_BENCH_SERVER_WINDOW_MS", "6"))
#: Offered-QPS levels of the open-loop latency sweep.
SERVER_QPS_LEVELS = tuple(
    int(level)
    for level in os.environ.get("REPRO_BENCH_SERVER_QPS", "100,400,800").split(",")
)
#: Seconds of open-loop load per QPS level.
SERVER_QPS_SECONDS = float(os.environ.get("REPRO_BENCH_SERVER_QPS_SECONDS", "1.5"))

#: The acceptance bound on the batched/unbatched throughput ratio.
BATCH_SPEEDUP_BOUND = 3.0

SEED = 31
CONFIG = "V1"


def _build_service(root) -> SweepService:
    dataset = NASBenchDataset.generate(num_models=SERVER_MODELS, seed=SEED)
    store = MeasurementStore(root, shard_size=8)
    store.sweep(dataset, configs=(CONFIG,))
    service = SweepService(
        store, dataset, configs=(CONFIG,), settings=TrainingSettings(epochs=2, seed=0)
    )
    # Train/restore the predict model and compute the store digest up front;
    # the benchmark measures serving, not warm-up.
    service.predict([dataset[0].cell], CONFIG)
    return service


async def _start(service, window_ms: float) -> SweepServer:
    server = SweepServer(
        service,
        ServerConfig(
            port=0,
            window_ms=window_ms,
            max_batch=1024,
            max_pending=1_000_000,
            cache_size=0,  # cold answers only: caching would hide the work
            max_inflight=8 * SERVER_CLIENTS,
        ),
    )
    await server.start()
    return server


async def _predict_arm(service, cells, window_ms: float) -> dict:
    """One throughput arm: SERVER_CLIENTS concurrent single-cell predictors."""
    server = await _start(service, window_ms)
    clients = [ServiceClient(port=server.port) for _ in range(SERVER_CLIENTS)]
    values: dict[int, list[float]] = {}

    async def drive(index: int, client: ServiceClient) -> None:
        cell = cells[index % len(cells)]
        got = []
        for _ in range(SERVER_REQUESTS):
            response = await client.predict([cell], CONFIG)
            got.append(response.result["values"][0])
        values[index] = got

    started = time.perf_counter()
    await asyncio.gather(*[drive(i, c) for i, c in enumerate(clients)])
    elapsed = time.perf_counter() - started
    stats = server.batcher.stats()
    for client in clients:
        await client.close()
    await server.stop()

    # Sanity: every client's repeated answers are self-consistent, and close
    # to the direct call (bit-identity per batch composition is asserted by
    # the server test suite; across compositions BLAS noise is ~1 ULP).
    for index, got in values.items():
        assert len(set(got)) == 1
        direct = float(service.predict([cells[index % len(cells)]], CONFIG)[0])
        assert np.isclose(got[0], direct, rtol=1e-9)

    total = SERVER_CLIENTS * SERVER_REQUESTS
    return {
        "throughput_rps": total / elapsed,
        "elapsed_s": elapsed,
        "batches": stats["batches"],
        "requests_per_batch": stats["requests_per_batch"],
        "largest_batch": stats["largest_batch"],
    }


async def _qps_level(service, offered_qps: int) -> dict:
    """Open-loop metric lookups at a fixed offered rate; per-request latency."""
    server = await _start(service, window_ms=SERVER_WINDOW_MS)
    pool = [ServiceClient(port=server.port) for _ in range(16)]
    dataset = service.dataset
    total = max(1, int(offered_qps * SERVER_QPS_SECONDS))
    latencies: list[float] = []
    rejected = 0

    async def fire(index: int) -> None:
        nonlocal rejected
        client = pool[index % len(pool)]
        fingerprint = dataset[index % len(dataset)].fingerprint
        started = time.perf_counter()
        try:
            await client.metric_of(fingerprint, CONFIG, "latency")
        except ServerBusy:
            rejected += 1
            return
        latencies.append((time.perf_counter() - started) * 1e3)

    loop = asyncio.get_running_loop()
    epoch = loop.time()
    tasks = []
    for index in range(total):
        delay = epoch + index / offered_qps - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(fire(index)))
    started = time.perf_counter()
    await asyncio.gather(*tasks)
    drained = time.perf_counter()
    for client in pool:
        await client.close()
    await server.stop()

    elapsed = max(drained - started + total / offered_qps, 1e-9)
    completed = len(latencies)
    ordered = np.sort(np.asarray(latencies)) if latencies else np.zeros(1)
    return {
        "offered_qps": offered_qps,
        "achieved_qps": completed / elapsed,
        "completed": completed,
        "rejected": rejected,
        "p50_ms": float(np.percentile(ordered, 50)),
        "p99_ms": float(np.percentile(ordered, 99)),
    }


def test_server_load(benchmark, tmp_path):
    service = _build_service(tmp_path / "store")
    cells = [record.cell for record in service.dataset]

    async def arms():
        batched = await _predict_arm(service, cells, window_ms=SERVER_WINDOW_MS)
        unbatched = await _predict_arm(service, cells, window_ms=0.0)
        levels = [await _qps_level(service, qps) for qps in SERVER_QPS_LEVELS]
        return batched, unbatched, levels

    batched, unbatched, levels = asyncio.run(arms())
    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["predict_batch_speedup"] = round(speedup, 3)
    benchmark.extra_info["requests_per_batch"] = batched["requests_per_batch"]

    lines = [
        f"Serving load — {SERVER_CLIENTS} concurrent predict clients x "
        f"{SERVER_REQUESTS} requests ({SERVER_MODELS} models, config {CONFIG})",
        f"{'arm':<28}{'req/s':>10}{'batches':>9}{'req/batch':>11}",
        f"{'micro-batched (%.1f ms)' % SERVER_WINDOW_MS:<28}"
        f"{batched['throughput_rps']:>10.1f}{batched['batches']:>9}"
        f"{batched['requests_per_batch']:>11.2f}",
        f"{'window disabled':<28}{unbatched['throughput_rps']:>10.1f}"
        f"{unbatched['batches']:>9}{unbatched['requests_per_batch']:>11.2f}",
        f"predict_batch_speedup: {speedup:.2f}x (bound >= {BATCH_SPEEDUP_BOUND:.0f}x)",
        "",
        f"{'offered QPS':>12}{'achieved':>10}{'p50 ms':>9}{'p99 ms':>9}{'rejected':>10}",
    ]
    for level in levels:
        lines.append(
            f"{level['offered_qps']:>12}{level['achieved_qps']:>10.1f}"
            f"{level['p50_ms']:>9.2f}{level['p99_ms']:>9.2f}{level['rejected']:>10}"
        )
    report("server", lines)

    metrics = {
        "batched_rps": batched["throughput_rps"],
        "unbatched_rps": unbatched["throughput_rps"],
        "batched_batches": batched["batches"],
        "largest_batch": batched["largest_batch"],
    }
    for level in levels:
        prefix = f"qps{level['offered_qps']}"
        metrics[f"{prefix}_achieved"] = level["achieved_qps"]
        metrics[f"{prefix}_p50_ms"] = level["p50_ms"]
        metrics[f"{prefix}_p99_ms"] = level["p99_ms"]
        metrics[f"{prefix}_rejected"] = level["rejected"]
    report_json(
        "server",
        headline={
            "predict_batch_speedup": speedup,
            "requests_per_batch": batched["requests_per_batch"],
        },
        population={
            "models": SERVER_MODELS,
            "clients": SERVER_CLIENTS,
            "requests_per_client": SERVER_REQUESTS,
        },
        metrics=metrics,
    )

    assert speedup >= BATCH_SPEEDUP_BOUND, (
        f"micro-batching bought only {speedup:.2f}x over the window-disabled "
        f"server at {SERVER_CLIENTS} clients (bound {BATCH_SPEEDUP_BOUND:.0f}x)"
    )
