"""Table 3: min/max/avg latency and energy over models with >= 70% accuracy.

Paper reference values: min latency 0.079/0.075/0.075 ms, max latency
5.68/5.65/5.67 ms, avg latency 0.96/1.03/1.07 ms for V1/V2/V3; min energy
0.198/0.171 mJ, max 23.8/23.5 mJ, avg 4.25/3.91 mJ for V1/V2 (V3 energy model
unavailable).  The reproduction preserves the orderings and rough magnitudes.
"""

from __future__ import annotations

from repro.analysis import summarize_all

from _reporting import report


def test_table3_latency_energy_summary(benchmark, bench_measurements):
    summaries = benchmark.pedantic(
        lambda: summarize_all(bench_measurements, min_accuracy=0.70),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Table 3 — latency/energy summary over models with >= 70% accuracy",
        f"(population after filter: {summaries['V1'].num_models} models)",
        f"{'metric':<22}" + "".join(f"{name:>18}" for name in summaries),
    ]

    def fmt(value, accuracy=None):
        if value is None:
            return "N/A"
        return f"{value:.4f}" + (f" ({accuracy:.2%})" if accuracy is not None else "")

    rows = [
        ("Min. Latency (ms)", lambda s: fmt(s.min_latency.value, s.min_latency.accuracy)),
        ("Max. Latency (ms)", lambda s: fmt(s.max_latency.value, s.max_latency.accuracy)),
        ("Avg. Latency (ms)", lambda s: fmt(s.avg_latency_ms)),
        (
            "Min. Energy (mJ)",
            lambda s: fmt(
                s.min_energy.value if s.min_energy else None,
                s.min_energy.accuracy if s.min_energy else None,
            ),
        ),
        (
            "Max. Energy (mJ)",
            lambda s: fmt(
                s.max_energy.value if s.max_energy else None,
                s.max_energy.accuracy if s.max_energy else None,
            ),
        ),
        ("Avg. Energy (mJ)", lambda s: fmt(s.avg_energy_mj)),
    ]
    for label, getter in rows:
        lines.append(f"{label:<22}" + "".join(f"{getter(s):>18}" for s in summaries.values()))
    report("table3_summary", lines)

    # Paper orderings: V1 lowest average latency, V2 lowest minimum latency,
    # V2 lower average energy than V1, V3 without an energy model.
    assert summaries["V1"].avg_latency_ms < summaries["V2"].avg_latency_ms
    assert summaries["V2"].avg_latency_ms <= summaries["V3"].avg_latency_ms
    assert summaries["V2"].min_latency.value <= summaries["V1"].min_latency.value
    assert summaries["V3"].avg_energy_mj is None
    assert summaries["V2"].avg_energy_mj <= summaries["V1"].avg_energy_mj * 1.05
