"""Figure 11: latency vs graph depth and width for every accelerator class.

Paper reference: latency grows with graph depth (longer dependency chains keep
full channel counts), dips at depths four/five where the average parameter
count drops (Table 7), and *decreases* with graph width thanks to the extra
parallelism between operations.
"""

from __future__ import annotations

from repro.analysis import latency_by_structure

from _reporting import report


def test_fig11_latency_vs_depth_and_width(benchmark, bench_measurements):
    def run():
        return {
            name: {
                "depth": latency_by_structure(bench_measurements, name, "depth"),
                "width": latency_by_structure(bench_measurements, name, "width"),
            }
            for name in bench_measurements.config_names
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 11 — median latency (ms) vs graph depth and width"]
    for name, groups in stats.items():
        for attribute in ("depth", "width"):
            summary = ", ".join(f"{group.group}:{group.median:.3f}" for group in groups[attribute])
            lines.append(f"{name} by {attribute}: {summary}")
    report("fig11_latency_vs_structure", lines)

    for name, groups in stats.items():
        depth_median = {group.group: group.median for group in groups["depth"]}
        width_median = {group.group: group.median for group in groups["width"]}
        # Deep chains are slower than shallow graphs on every class...
        assert depth_median[max(depth_median)] > depth_median[min(depth_median)]
        # ... while wide graphs are not slower than the narrowest ones.
        assert width_median[max(width_median)] <= width_median[min(width_median)] * 1.25
