"""Figure 6: inference latency vs inference energy scatter for V1 and V2.

Paper reference: energy is linear in latency; V2 is more energy-efficient for
low-latency (small) models while V1 wins back ground on the large models
thanks to its bigger on-chip memory.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import energy_latency_linear_fit, latency_energy_scatter

from _reporting import report


def test_fig6_latency_vs_energy(benchmark, bench_measurements):
    def run():
        return {name: latency_energy_scatter(bench_measurements, name) for name in ("V1", "V2")}

    scatters = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 6 — latency vs energy scatter (V1 and V2, >= 70% accuracy)"]
    fits = {}
    for name, points in scatters.items():
        slope, intercept = energy_latency_linear_fit(points)
        fits[name] = (slope, intercept)
        energies = np.array([p.energy_mj for p in points])
        lines.append(
            f"{name}: {len(points)} points, "
            f"energy [{energies.min():.2f}, {energies.max():.2f}] mJ, "
            f"linear fit energy = {slope:.2f} * latency + {intercept:.2f}"
        )
    # Small-model vs large-model comparison (the crossover the paper reports).
    params = bench_measurements.dataset.parameter_counts()
    small = params < 3e6
    large = params > 20e6
    small_v1 = np.nanmean(bench_measurements.energies("V1")[small])
    small_v2 = np.nanmean(bench_measurements.energies("V2")[small])
    lines.append(
        f"small models (<3M params): avg energy V1 {small_v1:.2f} mJ, V2 {small_v2:.2f} mJ"
    )
    if large.any():
        large_v1 = np.nanmean(bench_measurements.energies("V1")[large])
        large_v2 = np.nanmean(bench_measurements.energies("V2")[large])
        lines.append(
            f"large models (>20M params): avg energy V1 {large_v1:.2f} mJ, V2 {large_v2:.2f} mJ"
        )
    report("fig6_latency_vs_energy", lines)

    # Energy grows linearly with latency, and V2 is the more efficient class
    # on the small models.
    assert fits["V1"][0] > 0 and fits["V2"][0] > 0
    assert small_v2 < small_v1
