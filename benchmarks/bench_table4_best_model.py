"""Table 4: latency/energy of the highest-accuracy model on every class.

Paper reference values for the 95.055%-accuracy model: latency 4.63 / 4.19 /
4.54 ms and energy 19.89 / 19.75 mJ (V3 energy unavailable).  The ordering —
V2 fastest, V1 slowest — is the reproduced quantity.
"""

from __future__ import annotations

from repro.analysis import best_model_report

from _reporting import report


def test_table4_best_accuracy_model(benchmark, bench_measurements):
    result = benchmark.pedantic(
        lambda: best_model_report(bench_measurements), rounds=1, iterations=1
    )

    lines = [
        "Table 4 — latency/energy of the highest-accuracy model",
        f"accuracy: {result.accuracy:.3%}, trainable parameters: {result.trainable_parameters:,}",
        f"{'config':<8}{'latency (ms)':>14}{'energy (mJ)':>14}   paper latency (ms)",
    ]
    paper_latency = {"V1": 4.633768, "V2": 4.185697, "V3": 4.535305}
    for name, latency in result.latency_ms.items():
        energy = result.energy_mj[name]
        lines.append(
            f"{name:<8}{latency:>14.4f}{(f'{energy:.3f}' if energy is not None else 'N/A'):>14}"
            f"   {paper_latency[name]:>10.3f}"
        )
    report("table4_best_model", lines)

    assert result.accuracy > 0.95
    assert result.latency_ms["V2"] < result.latency_ms["V3"] < result.latency_ms["V1"]
    assert result.energy_mj["V3"] is None
