"""Search sample-efficiency: evolution and predictor vs random at fixed budget.

Every strategy gets the identical simulation budget (population x
generations models), the identical seed and the identical accuracy floor;
what differs is only how the next generation is proposed.  The table reports
the best feasible latency per strategy with its per-generation trajectory,
the frontier size and final hypervolume — the repo's first optimization
benchmark rather than a measurement one.

The tracked pytest-benchmark metric is the warm **replay** of the evolution
search over its own measurement store (the regime a re-run of an archived
search experiment hits: zero simulations, pure load + selection replay).
"""

from __future__ import annotations

import os
import time

from repro import MeasurementStore, SearchEngine, SearchSpec
from repro.core import TrainingSettings
from repro.search import STRATEGIES

from _reporting import report, report_json

#: Models simulated per generation (population and aging-window size).
SEARCH_POP = int(os.environ.get("REPRO_BENCH_SEARCH_POP", "16"))
#: Number of generations (budget = POP x GENS per strategy).
SEARCH_GENS = int(os.environ.get("REPRO_BENCH_SEARCH_GENS", "6"))
#: Accuracy floor of the objective (0.92 keeps the problem discriminative).
SEARCH_FLOOR = float(os.environ.get("REPRO_BENCH_SEARCH_FLOOR", "0.92"))
#: Seed shared by all strategies.
SEARCH_SEED = int(os.environ.get("REPRO_BENCH_SEARCH_SEED", "7"))


def _spec(strategy: str) -> SearchSpec:
    return SearchSpec(
        strategy=strategy,
        population_size=SEARCH_POP,
        generations=SEARCH_GENS,
        seed=SEARCH_SEED,
        tournament_size=4,
        pool_factor=3,
        min_accuracy=SEARCH_FLOOR,
        predictor_settings=TrainingSettings(epochs=4),
    )


def test_search_sample_efficiency(benchmark, tmp_path):
    results = {}
    elapsed = {}
    for strategy in STRATEGIES:
        store = MeasurementStore(tmp_path / strategy, shard_size=SEARCH_POP)
        start = time.perf_counter()
        results[strategy] = SearchEngine(_spec(strategy), store=store).run()
        elapsed[strategy] = time.perf_counter() - start

    random_best = results["random"].best_objective
    assert results["evolution"].best_objective < random_best, (
        "evolution found no better model than random sampling at equal budget"
    )
    assert results["predictor"].best_objective < random_best, (
        "predictor guidance found no better model than random sampling at equal budget"
    )

    # Tracked metric: warm replay of the evolution search (no simulations).
    def replay():
        store = MeasurementStore(tmp_path / "evolution", shard_size=SEARCH_POP)
        result = SearchEngine(_spec("evolution"), store=store).run()
        assert store.stats.pairs_simulated == 0
        return result

    benchmark.pedantic(replay, rounds=3, iterations=1)
    replay_elapsed = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        replay()
        replay_elapsed = min(replay_elapsed, time.perf_counter() - start)

    budget = _spec("random").simulation_budget
    benchmark.extra_info["budget"] = budget
    for strategy in STRATEGIES:
        benchmark.extra_info[f"{strategy}_best_ms"] = round(results[strategy].best_objective, 4)

    lines = [
        "Architecture search — best feasible V1 latency at equal simulation budget",
        f"({budget} simulations per strategy = {SEARCH_POP} models x "
        f"{SEARCH_GENS} generations, accuracy floor {SEARCH_FLOOR}, "
        f"seed {SEARCH_SEED})",
        f"{'strategy':<12}{'best (ms)':>11}{'accuracy':>10}{'front':>7}"
        f"{'hypervol':>10}{'elapsed (s)':>13}",
    ]
    for strategy in STRATEGIES:
        result = results[strategy]
        lines.append(
            f"{strategy:<12}{result.best_objective:>11.4f}"
            f"{result.best_accuracy:>10.4f}{len(result.archive):>7}"
            f"{result.archive.hypervolume():>10.5f}{elapsed[strategy]:>13.3f}"
        )
    lines.append("")
    lines.append("best-so-far latency (ms) per generation:")
    header = f"{'strategy':<12}" + "".join(f"{f'gen {i}':>10}" for i in range(SEARCH_GENS))
    lines.append(header)
    for strategy in STRATEGIES:
        trajectory = "".join(
            f"{row.best_objective:>10.4f}" for row in results[strategy].generations
        )
        lines.append(f"{strategy:<12}{trajectory}")
    report("search_sample_efficiency", lines)
    report_json(
        "search",
        # Ratios only: objective gains (lower latency → ratio > 1) and the
        # warm-replay speedup are machine-independent, unlike raw seconds.
        headline={
            "evolution_gain_vs_random": random_best / results["evolution"].best_objective,
            "predictor_gain_vs_random": random_best / results["predictor"].best_objective,
            "replay_speedup_vs_search": elapsed["evolution"] / replay_elapsed,
        },
        population={
            "population": SEARCH_POP,
            "generations": SEARCH_GENS,
            "budget": budget,
        },
        metrics={
            **{f"{strategy}_best_ms": results[strategy].best_objective for strategy in STRATEGIES},
            **{f"{strategy}_elapsed_s": elapsed[strategy] for strategy in STRATEGIES},
            "replay_elapsed_s": replay_elapsed,
            "accuracy_floor": SEARCH_FLOOR,
        },
    )
