"""Table 2: microarchitectural parameters of the three Edge TPU classes.

This benchmark does not measure a workload; it regenerates the configuration
table from the :class:`AcceleratorConfig` presets and checks that the derived
peak-TOPS figures match the published ones (26.2 / 8.73 / 8.73).
"""

from __future__ import annotations

import pytest

from repro.arch import STUDIED_CONFIGS

from _reporting import report

PAPER_PEAK_TOPS = {"V1": 26.2, "V2": 8.73, "V3": 8.73}


def test_table2_configurations(benchmark):
    def run():
        return {name: config.summary() for name, config in STUDIED_CONFIGS.items()}

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)

    fields = [
        "clock_mhz",
        "pes",
        "pe_memory_bytes",
        "cores_per_pe",
        "core_memory_bytes",
        "compute_lanes",
        "instruction_memory_entries",
        "parameter_memory_entries",
        "activation_memory_entries",
        "io_bandwidth_gbps",
        "peak_tops",
    ]
    lines = ["Table 2 — microarchitecture parameters of the studied Edge TPU classes"]
    lines.append(f"{'parameter':<30}" + "".join(f"{name:>16}" for name in summaries))
    for field in fields:
        lines.append(
            f"{field:<30}" + "".join(f"{str(summary[field]):>16}" for summary in summaries.values())
        )
    report("table2_configs", lines)

    for name, summary in summaries.items():
        assert summary["peak_tops"] == pytest.approx(PAPER_PEAK_TOPS[name], rel=0.01)
