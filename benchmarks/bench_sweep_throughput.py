"""Sweep throughput: scalar vs vectorized vs process-sharded batch engine.

The paper's headline experiment needs ~1.5M latency simulations; this
benchmark tracks how fast the reproduction can sweep its population
(models/sec, counting one model as one model simulated on *all* studied
configurations).  The scalar rate is measured on a subset and the vectorized
rates on the full shared bench population; the vectorized single-process
engine must beat the scalar walk by at least 5x.
"""

from __future__ import annotations

import os
import time

from repro.nasbench import NASBenchDataset
from repro.simulator import evaluate_dataset

from _reporting import report, report_json

#: Scalar subset size: big enough for a stable rate, small enough to keep the
#: benchmark turnaround reasonable.
SCALAR_SUBSET_MODELS = int(os.environ.get("REPRO_BENCH_SCALAR_MODELS", "120"))
#: Worker processes for the sharded measurement (at least 2, so the
#: process-sharding path is always exercised; on a single-core box the row
#: honestly reports the sharding overhead instead of a speedup).
SHARD_JOBS = int(os.environ.get("REPRO_BENCH_SWEEP_JOBS", str(min(4, max(2, os.cpu_count() or 1)))))


def _sweep_rate(dataset, configs, **kwargs) -> tuple[float, float]:
    """Run one full sweep and return (models/sec, elapsed seconds)."""
    start = time.perf_counter()
    evaluate_dataset(dataset, configs=configs, **kwargs)
    elapsed = time.perf_counter() - start
    return len(dataset) / elapsed, elapsed


def test_sweep_throughput(benchmark, bench_dataset, bench_configs):
    configs = list(bench_configs.values())
    subset = NASBenchDataset(
        bench_dataset.records[:SCALAR_SUBSET_MODELS], bench_dataset.network_config
    )

    scalar_rate, scalar_elapsed = _sweep_rate(subset, configs, strategy="scalar")

    # The vectorized single-process sweep is the tracked benchmark metric.
    benchmark.pedantic(
        lambda: evaluate_dataset(bench_dataset, configs=configs, strategy="vectorized"),
        rounds=1,
        iterations=1,
    )
    vectorized_rate, vectorized_elapsed = _sweep_rate(bench_dataset, configs, strategy="vectorized")
    sharded_rate, sharded_elapsed = _sweep_rate(
        bench_dataset, configs, strategy="vectorized", n_jobs=SHARD_JOBS
    )

    benchmark.extra_info["scalar_models_per_sec"] = round(scalar_rate, 1)
    benchmark.extra_info["vectorized_models_per_sec"] = round(vectorized_rate, 1)
    benchmark.extra_info[f"sharded_{SHARD_JOBS}_models_per_sec"] = round(sharded_rate, 1)
    benchmark.extra_info["vectorized_speedup"] = round(vectorized_rate / scalar_rate, 1)

    lines = [
        "Sweep throughput — models/sec over the V1/V2/V3 configuration sweep",
        f"(scalar measured on {len(subset)} models, vectorized on "
        f"{len(bench_dataset)} models)",
        f"{'engine':<28}{'models/sec':>12}{'elapsed (s)':>14}{'speedup':>10}",
        f"{'scalar (per-model loop)':<28}{scalar_rate:>12.1f}{scalar_elapsed:>14.3f}"
        f"{1.0:>10.1f}",
        f"{'vectorized (1 process)':<28}{vectorized_rate:>12.1f}"
        f"{vectorized_elapsed:>14.3f}{vectorized_rate / scalar_rate:>10.1f}",
        f"{f'vectorized (n_jobs={SHARD_JOBS})':<28}{sharded_rate:>12.1f}"
        f"{sharded_elapsed:>14.3f}{sharded_rate / scalar_rate:>10.1f}",
    ]
    report("sweep_throughput", lines)
    report_json(
        "sweep_throughput",
        headline={"vectorized_speedup": vectorized_rate / scalar_rate},
        population={
            "models": len(bench_dataset),
            "scalar_models": len(subset),
            "configs": len(configs),
        },
        metrics={
            "scalar_models_per_sec": scalar_rate,
            "vectorized_models_per_sec": vectorized_rate,
            f"sharded_{SHARD_JOBS}_models_per_sec": sharded_rate,
        },
    )

    assert vectorized_rate >= 5.0 * scalar_rate, (
        f"vectorized sweep only {vectorized_rate / scalar_rate:.1f}x the scalar rate"
    )
