"""Figure 10: mean validation accuracy vs graph depth and graph width.

Paper reference: accuracy peaks at depth 3 and keeps improving with width up
to 5; pushing depth beyond three hurts accuracy.
"""

from __future__ import annotations

from repro.analysis import accuracy_by_structure, optimal_structure

from _reporting import report


def test_fig10_accuracy_vs_depth_and_width(benchmark, bench_dataset):
    def run():
        return (
            accuracy_by_structure(bench_dataset, "depth"),
            accuracy_by_structure(bench_dataset, "width"),
            optimal_structure(bench_dataset),
        )

    depth_stats, width_stats, best = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 10 — accuracy vs graph depth and width (box-plot summaries)"]
    for label, stats in (("depth", depth_stats), ("width", width_stats)):
        lines.append(f"{label:>6}  {'n':>6} {'median':>8} {'p25':>8} {'p75':>8} {'max':>8}")
        for group in stats:
            lines.append(
                f"{group.group:>6}  {group.count:>6} {group.median:>8.4f} "
                f"{group.p25:>8.4f} {group.p75:>8.4f} {group.maximum:>8.4f}"
            )
    lines.append(f"best median accuracy at depth {best['depth']}, width {best['width']}")
    report("fig10_accuracy_vs_structure", lines)

    # Paper: moderate depth is optimal (around 3) and the deepest graphs are
    # not the most accurate; wider graphs do not hurt accuracy.
    assert 2 <= best["depth"] <= 5
    assert best["width"] >= 3
    populous = {g.group: g.median for g in depth_stats if g.count >= 10}
    if populous:
        # The shallowest populous depth never loses badly to the deepest one.
        assert populous[min(populous)] >= populous[max(populous)] - 0.01
    by_width = {group.group: group.median for group in width_stats if group.count >= 10}
    assert by_width[max(by_width)] >= by_width[min(by_width)] - 0.005
