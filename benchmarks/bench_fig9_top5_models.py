"""Figure 9: latency vs accuracy for the five most accurate models.

Paper reference: the regions of the accuracy-ranked curve alternate between
V2 and V1 as the lowest-latency class — V2 serves the most accurate model
fastest, V1 the next ones (which contain more 1x1 convolutions).
"""

from __future__ import annotations

from repro.analysis import top_models_by_accuracy

from _reporting import report


def test_fig9_top5_accuracy_models(benchmark, bench_measurements):
    entries = benchmark.pedantic(
        lambda: top_models_by_accuracy(bench_measurements, k=5), rounds=1, iterations=1
    )

    lines = [
        "Figure 9 — top-5 accuracy models and their lowest-latency configuration",
        f"{'rank':<6}{'accuracy':>10}{'params':>14}"
        + "".join(f"{name:>12}" for name in bench_measurements.config_names)
        + f"{'fastest':>10}",
    ]
    for entry in entries:
        lines.append(
            f"{entry.rank:<6}{entry.accuracy:>10.4f}{entry.record.trainable_parameters:>14,}"
            + "".join(
                f"{entry.latency_ms[name]:>12.4f}"
                for name in bench_measurements.config_names
            )
            + f"{entry.fastest_config:>10}"
        )
    report("fig9_top5_models", lines)

    assert len(entries) == 5
    assert entries[0].accuracy > entries[-1].accuracy
    # Paper: the best model is served fastest by V2; more than one class appears
    # across the top-5 winners (the dashed-line regions of Figure 9).
    assert entries[0].fastest_config == "V2"
    assert len({entry.fastest_config for entry in entries}) >= 2
