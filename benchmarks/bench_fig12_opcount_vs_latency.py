"""Figure 12: operation count vs latency per operation type and configuration.

Paper reference: latency grows with the number of 3x3 convolutions (the
parameter-heavy operation); for a fixed conv3x3 count the latency still spans
a wide range (0.2-5 ms) depending on the graph structure; the extreme-accuracy
annotations are 95.055% (4x conv3x3) and ~9.5% (failed runs).
"""

from __future__ import annotations

from repro.analysis import accuracy_annotations, operation_count_vs_latency

from _reporting import report

OPERATIONS = ("conv3x3", "conv1x1", "maxpool3x3")


def test_fig12_operation_count_vs_latency(benchmark, bench_measurements):
    def run():
        groups = {
            (name, operation): operation_count_vs_latency(bench_measurements, name, operation)
            for name in bench_measurements.config_names
            for operation in OPERATIONS
        }
        annotations = {
            operation: accuracy_annotations(bench_measurements, operation)
            for operation in OPERATIONS
        }
        return groups, annotations

    groups, annotations = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Figure 12 — operation count vs latency (avg latency in ms per count)"]
    for operation in OPERATIONS:
        best, worst = annotations[operation]
        lines.append(
            f"{operation}: max accuracy {best.accuracy:.3%} at count {best.operation_count}, "
            f"min accuracy {worst.accuracy:.3%} at count {worst.operation_count}"
        )
        for name in bench_measurements.config_names:
            row = ", ".join(
                f"{group.count}:{group.avg_latency_ms:.3f}"
                for group in groups[(name, operation)]
            )
            lines.append(f"    {name}: {row}")
    report("fig12_opcount_vs_latency", lines)

    # Latency increases with the number of 3x3 convolutions on every class,
    # and the spread within a fixed count stays wide (graph-structure effect).
    for name in bench_measurements.config_names:
        conv_groups = [g for g in groups[(name, "conv3x3")] if g.num_models >= 5]
        assert conv_groups[-1].avg_latency_ms > conv_groups[0].avg_latency_ms
        multi = [g for g in conv_groups if g.count >= 3 and g.num_models >= 5]
        if multi:
            assert multi[-1].max_latency_ms > 2 * multi[-1].min_latency_ms
    best, _ = annotations["conv3x3"]
    assert best.accuracy > 0.95
