"""Shared fixtures for the benchmark harness.

Every table/figure benchmark works on the same sampled model population and
the same simulation sweep, built once per session.  The population size can be
overridden with the ``REPRO_BENCH_MODELS`` environment variable (default 1200;
the paper uses the full 423K-model NASBench-101 space — see DESIGN.md §2 for
the sampling substitution).
"""

from __future__ import annotations

import os

import pytest

from repro.arch import STUDIED_CONFIGS
from repro.nasbench import NASBenchDataset
from repro.simulator import evaluate_dataset

#: Number of sampled models used by the benchmark harness.
BENCH_NUM_MODELS = int(os.environ.get("REPRO_BENCH_MODELS", "1200"))
#: Seed of the sampled population (fixed for reproducibility).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2022"))


@pytest.fixture(scope="session")
def bench_dataset():
    """The sampled NASBench population shared by all benchmarks."""
    return NASBenchDataset.generate(num_models=BENCH_NUM_MODELS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_measurements(bench_dataset):
    """Latency/energy of every benchmark model on V1, V2 and V3."""
    return evaluate_dataset(bench_dataset, configs=list(STUDIED_CONFIGS.values()))


@pytest.fixture(scope="session")
def bench_configs():
    """The three studied accelerator configurations."""
    return dict(STUDIED_CONFIGS)
