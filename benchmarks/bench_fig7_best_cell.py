"""Figure 7: the highest-accuracy NASBench cell and its latency per class.

Paper reference: the 95.055%-accuracy cell (four 3x3 convolutions, ~41.6M
parameters) runs in 4.63 / 4.19 / 4.54 ms on V1 / V2 / V3 — V2 wins.
"""

from __future__ import annotations

from repro import PerformanceSimulator, build_network
from repro.nasbench import BEST_ACCURACY_CELL, BEST_ACCURACY_VALUE

from _reporting import report


def test_fig7_best_accuracy_cell(benchmark, bench_configs):
    network = build_network(BEST_ACCURACY_CELL)

    def run():
        return {
            name: PerformanceSimulator(config).simulate(network)
            for name, config in bench_configs.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"V1": 4.633768, "V2": 4.185697, "V3": 4.535305}
    lines = [
        "Figure 7 — highest-accuracy cell (4x conv3x3) latency per configuration",
        f"accuracy: {BEST_ACCURACY_VALUE:.3%}, parameters: {network.trainable_parameters:,}",
        f"{'config':<8}{'latency (ms)':>14}{'paper (ms)':>12}{'streamed weights':>18}",
    ]
    for name, result in results.items():
        lines.append(
            f"{name:<8}{result.latency_ms:>14.4f}{paper[name]:>12.3f}"
            f"{result.streamed_weight_bytes / 1e6:>16.1f}MB"
        )
    report("fig7_best_cell", lines)

    assert results["V2"].latency_ms < results["V3"].latency_ms < results["V1"].latency_ms
