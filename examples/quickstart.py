#!/usr/bin/env python3
"""Quickstart: simulate one NASBench cell on the three Edge TPU classes.

This example builds the cell the paper highlights in Figure 7 (the most
accurate NASBench-101 model), expands it into the full CIFAR-10 network,
compiles it for each of the three accelerator configurations of Table 2, and
prints the estimated inference latency and energy — the reproduction of
Table 4.

Run with:  python examples/quickstart.py
"""

from repro import STUDIED_CONFIGS, PerformanceSimulator, build_network
from repro.nasbench import BEST_ACCURACY_CELL, BEST_ACCURACY_VALUE


def main() -> None:
    network = build_network(BEST_ACCURACY_CELL)
    print("Highest-accuracy NASBench cell (paper Figure 7)")
    print(f"  mean validation accuracy : {BEST_ACCURACY_VALUE:.3%}")
    print(f"  trainable parameters     : {network.trainable_parameters:,}")
    print(f"  multiply-accumulates     : {network.total_macs / 1e9:.2f} G")
    print(f"  weight footprint         : {network.total_weight_bytes / 1e6:.1f} MB")
    print()

    print(f"{'config':<8}{'latency (ms)':>14}{'energy (mJ)':>14}{'weights cached':>18}")
    for name, config in STUDIED_CONFIGS.items():
        simulator = PerformanceSimulator(config)
        result = simulator.simulate(network)
        energy = f"{result.energy_mj:.2f}" if result.energy_mj is not None else "n/a"
        cached = f"{result.cached_weight_bytes / 1e6:.1f} MB"
        print(f"{name:<8}{result.latency_ms:>14.3f}{energy:>14}{cached:>18}")

    print()
    print("The paper reports 4.63 / 4.19 / 4.54 ms for V1 / V2 / V3 on this model;")
    print("the reproduction preserves the ordering (V2 fastest, V1 slowest) even")
    print("though the absolute scale of the analytical simulator differs.")


if __name__ == "__main__":
    main()
