#!/usr/bin/env python3
"""Resumable sweeps and disk-backed queries with the service subsystem.

The paper's headline experiment is ~1.5M latency / ~900K energy simulations;
run monolithically, an interruption throws everything away and nothing can
be queried until the whole sweep finishes.  This example shows the
alternative:

1. sweep a sampled population through a :class:`repro.MeasurementStore` —
   results persist shard-by-shard as content-keyed npz files, so the run is
   interruptible and the second invocation of this script loads instead of
   simulating (delete the store directory to go cold again);
2. ``extend()`` the same store with an extra accelerator configuration —
   only the missing (shard, configuration) pairs are simulated;
3. stand up a :class:`repro.SweepService` over the warm store and answer the
   evaluation-section queries from disk: top-k by accuracy, the Pareto
   frontier, latency/energy of a cell by fingerprint, and learned-model
   predictions for cells that were never simulated;
4. re-run the warm load under ``repro.obs`` tracing and print the merged
   trace summary — the same view ``python -m repro.obs <dir>`` gives a
   whole worker fleet (set ``REPRO_TRACE=1`` to trace this script end to
   end instead);
5. serve the same warm service over HTTP — :class:`repro.SweepServer` on an
   ephemeral loopback port, queried through the async
   :class:`repro.ServiceClient` — and check the answers match the direct
   calls bit for bit (``python -m repro.server <store_dir>`` runs the same
   server standalone; see DESIGN.md §13).

Run with:  python examples/sweep_service.py [num_models]
"""

import asyncio
import os
import sys
import time

from repro import MeasurementStore, SweepService, obs, trace_summary
from repro.core import TrainingSettings
from repro.nasbench import NASBenchDataset, cell_fingerprint, sample_unique_cells

STORE_DIR = os.environ.get("REPRO_STORE_DIR", ".repro-store")


def main(num_models: int = 300) -> None:
    dataset = NASBenchDataset.generate(num_models=num_models, seed=7)

    # 1. Resumable sweep: every completed shard lands on disk immediately.
    store = MeasurementStore(STORE_DIR, shard_size=64)
    start = time.perf_counter()
    store.sweep(dataset, configs=("V1", "V2"))
    elapsed = time.perf_counter() - start
    print(
        f"sweep of {num_models} models on V1/V2: "
        f"{store.stats.pairs_simulated} (shard, config) pairs simulated, "
        f"{store.stats.pairs_loaded} loaded from {STORE_DIR!r} "
        f"({elapsed:.2f}s — rerun this script for a warm start)"
    )

    # 2. Incremental extension: V3 shards are the only new work.
    before = store.stats.pairs_simulated
    store.extend(dataset, configs=("V1", "V2", "V3"))
    print(f"extend with V3: {store.stats.pairs_simulated - before} pairs simulated")

    # 3. Queries are answered from disk — no simulator in the loop.
    service = SweepService(
        MeasurementStore(STORE_DIR, shard_size=64),
        dataset,
        configs=("V1", "V2", "V3"),
        settings=TrainingSettings(epochs=8, seed=1),
    )
    print("\ntop-3 models by accuracy (latency in ms):")
    for entry in service.top_k(3):
        latencies = ", ".join(
            f"{name}={value:.3f}" for name, value in sorted(entry.latency_ms.items())
        )
        print(
            f"  #{entry.rank} {entry.record.fingerprint[:12]}  "
            f"acc={entry.accuracy:.4f}  {latencies}  fastest={entry.fastest_config}"
        )

    front = service.pareto_front("V2")
    print(f"\nV2 accuracy/latency Pareto frontier: {len(front)} points")
    best = service.top_k(1)[0].record
    print(
        f"lookup by fingerprint {best.fingerprint[:12]}: "
        f"latency V2 = {service.latency_of(best.fingerprint, 'V2'):.3f} ms, "
        f"energy V1 = {service.energy_of(best.fingerprint, 'V1'):.3f} mJ"
    )

    unseen = sample_unique_cells(3, seed=12345)
    start = time.perf_counter()
    predictions = service.predict(unseen, "V2")
    elapsed_ms = (time.perf_counter() - start) * 1e3
    print("\nlearned-model latency predictions for unseen cells (V2):")
    for cell, value in zip(unseen, predictions):
        print(f"  {cell_fingerprint(cell)[:12]:<14}{value:.3f} ms (predicted)")
    print(f"(3 predictions in {elapsed_ms:.1f} ms; weights cached in {STORE_DIR!r})")

    # 4. Traced leg: the warm load again, under scoped tracing.  Stages become
    #    spans, store accounting becomes counters, and the per-process JSONL
    #    stream merges into the same fleet summary `python -m repro.obs` prints.
    trace_dir = os.path.join(STORE_DIR, "traces")
    with obs.capture(trace_dir):
        warm = MeasurementStore(STORE_DIR, shard_size=64)
        warm.load(dataset, configs=("V1", "V2", "V3"))
    summary = trace_summary(trace_dir)
    loaded = summary.counters.get("store.pairs_loaded", 0)
    print(f"\ntraced warm load (streams in {trace_dir!r}):")
    print(
        f"  store.pairs_loaded counter = {loaded:.0f}"
        f" (StoreStats agrees: {warm.stats.pairs_loaded})"
    )
    for line in summary.lines()[:6]:
        print(f"  {line}")

    # 5. The same service over HTTP: every endpoint routes through the typed
    #    SweepService.query() dispatch, so served answers equal direct calls.
    asyncio.run(_serve_and_query(service, best.fingerprint))


async def _serve_and_query(service: SweepService, fingerprint: str) -> None:
    from repro import ServerConfig, ServiceClient, SweepServer
    from repro.service import LatencyRequest

    server = SweepServer(service, ServerConfig(port=0))
    await server.start()
    print(f"\nserving on 127.0.0.1:{server.port} (store digest {service.store_digest}):")
    async with ServiceClient(port=server.port) as client:
        top = await client.top_k(3)
        print(f"  top_k(k=3)            -> {len(top.result['entries'])} entries")
        latency = await client.query(LatencyRequest(fingerprint, "V2"))
        assert latency.result["value"] == service.latency_of(fingerprint, "V2")
        print(
            f"  latency(V2)           -> {latency.result['value']:.3f} ms "
            f"(served from {latency.served_from})"
        )
        again = await client.query(LatencyRequest(fingerprint, "V2"))
        print(f"  latency(V2) repeat    -> served from {again.served_from}")
        health = await client.health()
        print(f"  GET /healthz          -> {health['status']}")
    await server.stop()
    print("  drained and stopped cleanly")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
