#!/usr/bin/env python3
"""Characterization workflow: sweep a model population across Edge TPU classes.

This example reproduces the heart of the paper's evaluation section at small
scale: it samples a population of unique NASBench cells, simulates every model
on the V1/V2/V3 accelerator configurations, and then prints

* the Table 3 style latency/energy summary over models with >= 70% accuracy,
* the Table 5 winner buckets (which configuration serves which models best),
* the Figure 14 crossover analysis (fastest configuration per model-size band).

Run with:  python examples/accelerator_comparison.py [num_models]
"""

import sys

from repro import NASBenchDataset, evaluate_dataset
from repro.analysis import (
    bucket_characteristics,
    crossover_analysis,
    summarize_all,
    winner_buckets,
)


def main(num_models: int = 400) -> None:
    print(f"Sampling {num_models} unique NASBench cells and simulating V1/V2/V3 ...")
    dataset = NASBenchDataset.generate(num_models=num_models, seed=0)
    measurements = evaluate_dataset(dataset)

    print("\n--- Table 3: latency/energy summary (models with >= 70% accuracy) ---")
    for name, summary in summarize_all(measurements).items():
        energy = (
            f"avg energy {summary.avg_energy_mj:.2f} mJ"
            if summary.energy_available
            else "energy model n/a"
        )
        print(
            f"  {name}: latency min {summary.min_latency.value:.3f} ms "
            f"(acc {summary.min_latency.accuracy:.2%}), "
            f"max {summary.max_latency.value:.3f} ms "
            f"(acc {summary.max_latency.accuracy:.2%}), "
            f"avg {summary.avg_latency_ms:.3f} ms, {energy}"
        )

    print("\n--- Table 5/6: winner buckets ---")
    buckets = winner_buckets(measurements)
    for name, bucket in buckets.items():
        if bucket.num_models == 0:
            print(f"  Latency({name}) <= : no models")
            continue
        characteristics = bucket_characteristics(measurements, bucket)
        latencies = ", ".join(
            f"{other}={value:.2f}ms" for other, value in bucket.avg_latency_ms.items()
        )
        print(
            f"  Latency({name}) <= : {bucket.num_models} models | {latencies} | "
            f"avg conv3x3 {characteristics.avg_conv3x3:.2f}, "
            f"conv1x1 {characteristics.avg_conv1x1:.2f}, "
            f"params {characteristics.avg_trainable_parameters / 1e6:.2f}M"
        )

    print("\n--- Figure 14: fastest configuration per model-size band ---")
    for band in crossover_analysis(measurements):
        print(
            f"  [{band.lower_parameters / 1e6:5.1f}M, {band.upper_parameters / 1e6:6.1f}M) "
            f"n={band.num_models:4d}  fastest: {band.fastest_config}  "
            + "  ".join(f"{k}={v:.3f}ms" for k, v in band.avg_latency_ms.items())
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
