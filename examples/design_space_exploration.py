#!/usr/bin/env python3
"""Architecture design-space exploration with the parameterized Edge TPU model.

Section 6.1 of the paper concludes that, for the NASBench workloads, I/O
bandwidth is the deciding factor and the accelerator tile size (number of PEs
and compute cores) can be reduced with little performance impact.  This
example uses the fully parameterized :class:`AcceleratorConfig` to check that
claim: starting from the V1 configuration, it sweeps

* the PE array size (16 -> 8 -> 4 -> 2 PEs),
* the I/O bandwidth (8.5 -> 17 -> 34 GB/s),

and reports the average latency over a fixed workload sample for every
combination, highlighting which knob actually moves the needle.

The workload is expanded and flattened into a :class:`LayerTable` exactly
once and shared by all twelve derived configurations — the batch engine's
compile-once, array-of-layers sweep makes the whole exploration run in well
under a second.

After the sweep, the example demonstrates the paper's Section 4/5 workflow of
substituting the simulator with the learned performance model: a pipeline
experiment trains a GNN on the baseline configuration's measurements, and the
model's whole-population prediction (one batched forward pass) is rank-
correlated against the simulated ground truth.

Run with:  python examples/design_space_exploration.py [num_models]
"""

import sys

import numpy as np

from repro import EDGE_TPU_V1, BatchSimulator, LayerTable, NASBenchDataset
from repro.core import TrainingSettings, spearman_correlation
from repro.pipeline import Experiment, PopulationSpec, run_experiment


def main(num_models: int = 150) -> None:
    dataset = NASBenchDataset.generate(num_models=num_models, seed=3)
    networks = [record.build_network() for record in dataset.records]
    table = LayerTable.from_networks(networks)
    simulator = BatchSimulator()

    pe_grids = [(4, 4), (4, 2), (2, 2), (2, 1)]
    bandwidths = [8.5, 17.0, 34.0]

    print(f"Average latency (ms) over {num_models} NASBench models, V1-derived " "configurations\n")
    header = "PEs \\ I/O bandwidth" + "".join(f"{bw:>12.1f} GB/s" for bw in bandwidths)
    print(header)
    baseline = None
    for pes_x, pes_y in pe_grids:
        row = [f"{pes_x * pes_y:>3d} PEs ({pes_x}x{pes_y})  "]
        for bandwidth in bandwidths:
            config = EDGE_TPU_V1.with_overrides(
                name=f"V1-{pes_x}x{pes_y}-{bandwidth:g}GBps",
                pes_x=pes_x,
                pes_y=pes_y,
                io_bandwidth_gbps=bandwidth,
            )
            latencies, _ = simulator.evaluate_table(table, config)
            average = float(np.mean(latencies))
            if baseline is None:
                baseline = average
            row.append(f"{average:>16.3f}")
        print("".join(row))

    print(
        "\nReading the table: each extra doubling of I/O bandwidth (moving right"
        "\nalong a row) keeps paying off at every tile size, which is the paper's"
        "\nSection 6.1 insight that bandwidth is the deciding factor.  Shrinking"
        "\nthe PE array (moving down a column) costs more in this reproduction"
        "\nthan the paper suggests, because fewer PEs also shrink the on-chip"
        "\nparameter cache and the sustained-bandwidth efficiency in our model —"
        "\nsee EXPERIMENTS.md ('Known deviations') for the discussion."
    )

    print("\nTraining the learned performance model as a simulator replacement ...")
    experiment = Experiment(
        name="dse-learned-ranker",
        population=PopulationSpec(num_models=num_models, seed=3),
        config_names=("V1",),
        metrics=("latency",),
        settings=TrainingSettings(epochs=20, seed=0),
    )
    result = run_experiment(experiment)
    model = result.model("V1", "latency")
    cells = [record.cell for record in result.dataset]
    predicted = model.predict_cells(cells)  # one batched forward pass
    simulated = result.measurements.latencies("V1")
    rank_correlation = spearman_correlation(predicted, simulated)
    print(
        f"  learned-model vs simulator rank correlation over "
        f"{len(cells)} models: {rank_correlation:.4f}"
    )
    print(
        "  A high rank correlation is what lets the paper explore the design"
        "\n  space with the learned model instead of the simulator."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
