#!/usr/bin/env python3
"""Hardware-aware architecture search with the repro.search subsystem.

The paper characterizes the NASBench-101 space on Edge TPU classes so that
architecture *search* can be steered by hardware cost.  This example closes
that loop: it searches for the fastest V1 cell that still clears a 92%
accuracy floor, comparing three strategies at the identical simulation
budget:

1. **random** — fresh unique samples every generation (the baseline);
2. **evolution** — regularized evolution: tournament-select a parent from
   the current population, mutate it (edge flip / op swap / vertex add or
   remove), age out the oldest members;
3. **predictor** — mutate a 3x larger candidate pool, pre-screen it with the
   learned performance model trained on everything measured so far
   (``SweepService.predict``), and simulate only the most promising slice.

Searches run through a cached :class:`repro.SearchExperiment`, so a rerun of
this script replays every sweep from disk (delete the cache directory to go
cold), an interrupted search resumes where it stopped, and the final Pareto
frontier is persisted next to the measurement shards.

Run with:  python examples/architecture_search.py [cache_dir]
"""

import sys

from repro import SearchExperiment, SearchSpec, run_search_experiment
from repro.core import TrainingSettings
from repro.search import STRATEGIES

CACHE_DIR = sys.argv[1] if len(sys.argv) > 1 else ".repro-search-cache"


def spec_for(strategy: str) -> SearchSpec:
    return SearchSpec(
        strategy=strategy,
        config_name="V1",
        metric="latency",
        min_accuracy=0.92,
        population_size=16,
        generations=6,
        seed=7,
        pool_factor=3,
        predictor_settings=TrainingSettings(epochs=4),
    )


def main() -> None:
    outcomes = {}
    for strategy in STRATEGIES:
        experiment = SearchExperiment(name=f"example-{strategy}", spec=spec_for(strategy))
        outcome = run_search_experiment(experiment, cache_dir=CACHE_DIR)
        outcomes[strategy] = outcome
        mode = "replayed from cache" if outcome.replayed else "simulated"
        result = outcome.result
        print(
            f"{strategy:<10} best {result.best_objective:.4f} ms at "
            f"{result.best_accuracy:.4f} accuracy "
            f"({result.num_evaluated} models, {mode}, "
            f"{outcome.elapsed_seconds:.2f}s)"
        )

    best = outcomes["evolution"].result
    print("\nevolution best-so-far trajectory (ms):",
          " -> ".join(f"{row.best_objective:.4f}" for row in best.generations))

    print(f"\nfinal evolution Pareto frontier ({len(best.archive)} points, "
          f"hypervolume {best.archive.hypervolume():.5f}):")
    for entry in best.archive.entries:
        print(
            f"  {entry.fingerprint[:12]}  {entry.cost:.4f} ms  "
            f"acc={entry.accuracy:.4f}  (gen {entry.generation})"
        )
    print(f"\narchive persisted at {outcomes['evolution'].archive_path}")

    # Same evolution loop, one level up: candidates are whole staged
    # backbones (a distinct cell per stage plus per-stage depth and width
    # multipliers) instead of a single cell repeated through the fixed
    # template.  Only the spec changes — caching, resume and the archive
    # all work identically.
    macro_outcome = run_search_experiment(
        SearchExperiment(
            name="example-macro-evolution",
            spec=SearchSpec(
                strategy="evolution",
                arch_space="macro",
                config_name="V1",
                metric="latency",
                min_accuracy=0.92,
                population_size=16,
                generations=6,
                seed=7,
            ),
        ),
        cache_dir=CACHE_DIR,
    )
    macro_result = macro_outcome.result
    macro_mode = "replayed from cache" if macro_outcome.replayed else "simulated"
    print(
        f"\nmacro evolution best {macro_result.best_objective:.4f} ms at "
        f"{macro_result.best_accuracy:.4f} accuracy "
        f"({macro_result.num_evaluated} backbones, {macro_mode}, "
        f"{macro_outcome.elapsed_seconds:.2f}s)"
    )
    winner = macro_result.best_record.architecture
    print(
        f"winning backbone: {len(winner.stages)} stages, depths "
        + "/".join(str(stage.depth) for stage in winner.stages)
        + ", widths "
        + "/".join(f"{stage.width_multiplier:g}x" for stage in winner.stages)
    )

    print(f"\nrerun this script to replay from {CACHE_DIR!r}")


if __name__ == "__main__":
    main()
