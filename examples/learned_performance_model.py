#!/usr/bin/env python3
"""Train the learned performance model and use it as a simulator replacement.

This example reproduces the paper's Section 4 / Table 8 workflow at small
scale:

1. sample a population of NASBench cells and measure their latency on one
   Edge TPU configuration with the performance simulator (the "ground truth");
2. train the graph-neural-network learned performance model on a 60/20/20
   split of those measurements;
3. report the Table 8 metrics (average estimation accuracy, Spearman and
   Pearson correlation) on the held-out test set;
4. compare simulator vs learned-model estimates for the paper's named cells,
   and time both — the learned model answers in well under a millisecond,
   which is the paper's motivation for using it in design-space exploration.

Run with:  python examples/learned_performance_model.py [num_models] [epochs]
"""

import sys
import time

from repro import NASBenchDataset, PerformanceSimulator, get_config, evaluate_dataset
from repro.core import LearnedPerformanceModel, TrainingSettings
from repro.nasbench import BEST_ACCURACY_CELL, SECOND_BEST_ACCURACY_CELL, build_network


def main(num_models: int = 800, epochs: int = 30, config_name: str = "V1") -> None:
    config = get_config(config_name)

    print(f"Simulating {num_models} models on {config_name} to collect training data ...")
    dataset = NASBenchDataset.generate(num_models=num_models, seed=7)
    measurements = evaluate_dataset(dataset, configs=[config])
    cells = [record.cell for record in dataset.records]
    latencies = measurements.latencies(config_name)

    print(f"Training the graph network ({epochs} epochs, batch 16, Adam 1e-3) ...")
    model = LearnedPerformanceModel(
        config_name, TrainingSettings(epochs=epochs, seed=1)
    )
    history = model.fit(cells, latencies)
    print(f"  final training loss: {history.train_losses[-1]:.4f}")

    report = model.evaluate("test")
    print("\n--- Table 8 metrics (held-out test set) ---")
    for key, value in report.as_row().items():
        print(f"  {key:>22}: {value}")

    print("\n--- simulator vs learned model on the paper's named cells ---")
    simulator = PerformanceSimulator(config)
    for name, cell in [
        ("Figure 7 best-accuracy cell", BEST_ACCURACY_CELL),
        ("Figure 8 second-best cell", SECOND_BEST_ACCURACY_CELL),
    ]:
        start = time.perf_counter()
        simulated = simulator.simulate(build_network(cell)).latency_ms
        simulator_time = time.perf_counter() - start
        start = time.perf_counter()
        predicted = model.predict_cell(cell)
        predictor_time = time.perf_counter() - start
        print(
            f"  {name}: simulator {simulated:.3f} ms ({simulator_time * 1e3:.1f} ms to run), "
            f"learned model {predicted:.3f} ms ({predictor_time * 1e3:.2f} ms to run)"
        )


if __name__ == "__main__":
    num_models = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    main(num_models, epochs)
