#!/usr/bin/env python3
"""Train the learned performance model with the experiment pipeline.

This example reproduces the paper's Section 4 / Table 8 workflow at small
scale, driven end to end by :func:`repro.pipeline.run_experiment`:

1. sample a population of NASBench cells and label it with the vectorized
   ``BatchSimulator`` sweep (the "ground truth");
2. train the graph-neural-network learned performance model on a 60/20/20
   split of those measurements (mini-batches are slices of a pack-once
   ``GraphTable``);
3. report the Table 8 metrics (average estimation accuracy, Spearman and
   Pearson correlation) on the held-out test set;
4. compare simulator vs learned-model estimates for the paper's named cells,
   and time both — the learned model answers in well under a millisecond,
   which is the paper's motivation for using it in design-space exploration.

Measurements and trained weights are cached as npz files when a cache
directory is given (``REPRO_PIPELINE_CACHE`` environment variable), making a
second run of the same experiment nearly instant.

Run with:  python examples/learned_performance_model.py [num_models] [epochs]
"""

import os
import sys
import time

from repro import BatchSimulator, get_config
from repro.core import TrainingSettings
from repro.nasbench import BEST_ACCURACY_CELL, SECOND_BEST_ACCURACY_CELL
from repro.pipeline import Experiment, PopulationSpec, run_experiment


def main(num_models: int = 800, epochs: int = 30, config_name: str = "V1") -> None:
    experiment = Experiment(
        name="learned-performance-model-example",
        population=PopulationSpec(num_models=num_models, seed=7),
        config_names=(config_name,),
        metrics=("latency",),
        settings=TrainingSettings(epochs=epochs, seed=1),
    )
    cache_dir = os.environ.get("REPRO_PIPELINE_CACHE") or None

    print(
        f"Running experiment {experiment.name!r} "
        f"({num_models} models on {config_name}, {epochs} epochs) ..."
    )
    result = run_experiment(experiment, cache_dir=cache_dir, progress=lambda m: print(f"  {m}"))
    model = result.model(config_name, "latency")
    assert model.history is not None
    print(f"  final training loss: {model.history.train_losses[-1]:.4f}")
    if cache_dir:
        stats = result.cache_stats
        print(f"  cache: {stats.hits} hits, {stats.misses} misses ({cache_dir})")

    report = result.report(config_name, "latency")
    print("\n--- Table 8 metrics (held-out test set) ---")
    for key, value in report.as_row().items():
        print(f"  {key:>22}: {value}")

    print("\n--- simulator vs learned model on the paper's named cells ---")
    config = get_config(config_name)
    simulator = BatchSimulator()
    for name, cell in [
        ("Figure 7 best-accuracy cell", BEST_ACCURACY_CELL),
        ("Figure 8 second-best cell", SECOND_BEST_ACCURACY_CELL),
    ]:
        start = time.perf_counter()
        simulated = float(simulator.evaluate_cells([cell], config)[0][0])
        simulator_time = time.perf_counter() - start
        start = time.perf_counter()
        predicted = model.predict_cell(cell)
        predictor_time = time.perf_counter() - start
        print(
            f"  {name}: simulator {simulated:.3f} ms ({simulator_time * 1e3:.1f} ms to run), "
            f"learned model {predicted:.3f} ms ({predictor_time * 1e3:.2f} ms to run)"
        )


if __name__ == "__main__":
    num_models = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    main(num_models, epochs)
