#!/usr/bin/env python3
"""Accelerator design-space exploration: hardware Pareto sweep + co-search.

The paper studies three fixed Edge TPU classes; `repro.hwspace` opens the
whole microarchitectural neighborhood around them.  This example:

1. defines an :class:`repro.AcceleratorSpace` — a validated grid over clock,
   PE geometry, cores and SIMD lanes around V1 (36 design points);
2. sweeps a sampled workload population over the full grid in config-axis
   vectorized passes (resumable: measurements persist as store shards keyed
   by each design point's content digest — rerun the script for a warm
   start) and prints the hardware Pareto frontier of mean latency against
   two cost proxies, peak TOPS and total on-chip SRAM;
3. runs one joint NAS × hardware co-search (:class:`repro.CoSearchEngine`)
   and compares its best (cell, configuration) pair against fixed-hardware
   searches on V1/V2/V3 at the identical simulation budget.

Run with:  python examples/hardware_exploration.py [num_models]
"""

import os
import sys
import time

from repro import AcceleratorSpace, CoSearchEngine, CoSearchSpec, HardwareFrontier, MeasurementStore
from repro.hwspace import studied_baselines
from repro.nasbench import NASBenchDataset

STORE_DIR = os.environ.get("REPRO_HWSPACE_DIR", ".repro-hwspace")

#: Clock x PE-array x cores x lanes grid around the deployed V1 class.
SPACE = AcceleratorSpace(
    {
        "clock_mhz": [800.0, 1066.0, 1250.0],
        "pes_x": [2, 4, 8],
        "cores_per_pe": [2, 4],
        "compute_lanes": [32, 64],
    }
)


def explore_frontier(num_models: int) -> None:
    dataset = NASBenchDataset.generate(num_models=num_models, seed=7)
    store = MeasurementStore(STORE_DIR, shard_size=64)
    frontier = HardwareFrontier(dataset, store=store)
    configs = list(SPACE.enumerate())

    start = time.perf_counter()
    points = frontier.summarize(configs)
    elapsed = time.perf_counter() - start
    print(
        f"swept {num_models} models over {len(configs)} design points in "
        f"{elapsed:.2f}s ({store.stats.pairs_simulated} shard pairs simulated, "
        f"{store.stats.pairs_loaded} loaded — rerun for a warm start)"
    )

    for cost, label in (("peak_tops", "peak TOPS"), ("total_sram_mib", "total SRAM")):
        front = frontier.pareto(points, cost=cost)
        print(f"\nhardware Pareto frontier (mean latency vs {label}): {len(front)} points")
        print(f"{'design':<22}{'mean ms':>9}{'TOPS':>7}{'SRAM MiB':>10}{'clock':>7}{'PEs':>6}")
        for point in front:
            config = point.config
            print(
                f"{config.name:<22}{point.mean_latency_ms:>9.3f}{point.peak_tops:>7.1f}"
                f"{point.total_sram_mib:>10.1f}{config.clock_mhz:>7.0f}{config.num_pes:>6}"
            )


def co_search() -> None:
    spec = CoSearchSpec(population_size=16, generations=6, seed=0, min_accuracy=0.92)
    print(
        f"\nco-search: {spec.simulation_budget} pair evaluations over "
        f"{SPACE.size} hardware points x the cell space"
    )
    result = CoSearchEngine(spec, SPACE).run(progress=lambda line: print("  " + line))
    print("\n".join(result.summary_lines()))

    best = result.best_pair
    print(
        f"\nbest pair: {best.config.name} "
        f"(clock {best.config.clock_mhz:.0f} MHz, {best.config.num_pes} PEs, "
        f"{best.config.compute_lanes} lanes) at {best.cost:.4f} ms, "
        f"accuracy {best.accuracy:.4f}"
    )
    print("\nvs fixed-hardware searches at the same budget:")
    for name, (cost, accuracy) in studied_baselines(spec).items():
        verdict = "dominated" if result.dominates(cost, accuracy) else "not dominated"
        print(f"  {name}: best {cost:.4f} ms @ accuracy {accuracy:.4f} -> {verdict}")


def main(num_models: int = 300) -> None:
    explore_frontier(num_models)
    co_search()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
