"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on environments whose setuptools is
too old to provide PEP 660 editable installs without the ``wheel`` package.
"""

from setuptools import setup

setup()
