"""Setuptools configuration.

The project keeps its metadata here (no pyproject.toml yet); the hard
runtime dependencies are NumPy (compiler/simulator array kernels, analysis)
and SciPy (the Table 8 correlation metrics in ``repro.core.metrics``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-edge-tpu-nasbench",
    version="1.0.0",
    description=(
        "Reproduction of 'An Evaluation of Edge TPU Accelerators for "
        "Convolutional Neural Networks'"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
    },
)
