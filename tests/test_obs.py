"""Tests of the observability core and its contract with the stack.

Covers the obs package's own invariants — span nesting and self-time
arithmetic, the atomic-append JSONL sink with rotation, histogram
percentiles against the numpy reference, thread safety, and the ~free
no-op path — plus the contracts the rest of the stack relies on:

* tracing never changes numerical results;
* the store's trace counters match :class:`~repro.service.StoreStats`
  exactly (the fleet-merge acceptance criterion);
* progress callbacks are non-fatal (a raising callback logs an event and
  the sweep completes);
* warn-once diagnostics stay warn-once through the structured ``log`` API.
"""

from __future__ import annotations

import json
import threading
import time
import warnings

import numpy as np
import pytest

from repro import obs
from repro.arch import EDGE_TPU_V1
from repro.nasbench import NASBenchDataset
from repro.obs.summary import _quantile
from repro.service import MeasurementStore
from repro.simulator import evaluate_dataset


@pytest.fixture(autouse=True)
def _isolated_tracer():
    """Pin the off state regardless of ambient ``REPRO_TRACE`` (the CI
    traced leg runs the whole suite with it set) and clear warn-once latches
    so every test observes its own diagnostics."""
    obs.configure_tracing(False)
    obs.reset_once()
    yield
    obs.configure_tracing(False)


@pytest.fixture(scope="module")
def obs_dataset():
    return NASBenchDataset.generate(num_models=8, seed=11)


def span_records(source) -> list[dict]:
    return [record for record in obs.read_trace(source) if record.get("t") == "span"]


# ---------------------------------------------------------------------- #
# Tracer core
# ---------------------------------------------------------------------- #
class TestTracerCore:
    def test_span_nesting_and_self_time(self, tmp_path):
        with obs.capture(tmp_path / "trace"):
            with obs.span("outer", stage="test"):
                time.sleep(0.02)
                with obs.span("inner"):
                    time.sleep(0.01)

        spans = {record["name"]: record for record in span_records(tmp_path / "trace")}
        outer, inner = spans["outer"], spans["inner"]
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["attrs"]["stage"] == "test"
        # self = wall minus direct children's wall, precomputed at pop.
        assert outer["self_ms"] == pytest.approx(
            outer["wall_ms"] - inner["wall_ms"], abs=1e-2
        )
        summary = obs.trace_summary(tmp_path / "trace")
        assert summary.spans["inner"].parent == "outer"
        assert summary.spans["outer"].parent is None

    def test_traced_decorator_records_error_attribute(self, tmp_path):
        @obs.traced("deco.fn")
        def flaky(ok):
            if not ok:
                raise ValueError("boom")
            return 7

        with obs.capture(tmp_path / "trace"):
            assert flaky(True) == 7
            with pytest.raises(ValueError):
                flaky(False)

        spans = [r for r in span_records(tmp_path / "trace") if r["name"] == "deco.fn"]
        assert len(spans) == 2
        assert "error" not in spans[0].get("attrs", {})
        assert spans[1]["attrs"]["error"] == "ValueError"

    def test_thread_safety_exact_counts_and_unique_ids(self, tmp_path):
        tracer = obs.Tracer(tmp_path / "mt")
        threads_n, spans_each = 8, 200

        def work():
            for _ in range(spans_each):
                with tracer.span("mt.span"):
                    tracer.count("mt.count")

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()

        expected = threads_n * spans_each
        assert tracer.metrics.counter_value("mt.count") == expected
        spans = span_records(tmp_path / "mt")
        assert len(spans) == expected
        # Thread-local stacks: no cross-thread nesting, globally unique ids.
        assert all(span["depth"] == 0 for span in spans)
        assert len({span["id"] for span in spans}) == expected
        summary = obs.trace_summary(tmp_path / "mt")
        assert summary.counters["mt.count"] == expected

    def test_rotation_keeps_every_record_and_meta_lines(self, tmp_path):
        tracer = obs.Tracer(tmp_path / "rot", max_bytes=600)
        for _ in range(25):
            with tracer.span("rot.span"):
                pass
        tracer.close()

        files = sorted((tmp_path / "rot").glob("*.jsonl"))
        assert len(files) > 1, "tiny max_bytes must force rotation"
        for path in files:
            first = json.loads(path.read_text().splitlines()[0])
            assert first["t"] == "meta" and first["version"] == 1
        summary = obs.trace_summary(tmp_path / "rot")
        assert summary.spans["rot.span"].count == 25

    def test_noop_tracer_is_effectively_free(self):
        tracer = obs.active_tracer()
        assert not tracer.enabled and not obs.enabled()
        assert obs.span_breakdown() == {}
        start = time.perf_counter()
        for _ in range(50_000):
            with tracer.span("noop"):
                tracer.count("noop")
        elapsed = time.perf_counter() - start
        # ~0.5 us/call on a slow box; the generous bound catches accidental
        # work (allocation, I/O) sneaking into the off path.
        assert elapsed < 1.0, f"50k no-op spans took {elapsed:.3f}s"

    def test_environment_directory_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.TRACE_ENV, "1")
        monkeypatch.setenv(obs.TRACE_DIR_ENV, str(tmp_path / "envtrace"))
        tracer = obs.configure_tracing(True)
        try:
            assert tracer.enabled
            with obs.span("env.span"):
                pass
            assert tracer.path.parent == tmp_path / "envtrace"
        finally:
            obs.configure_tracing(False)
        assert span_records(tmp_path / "envtrace")[0]["name"] == "env.span"


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_summary_quantile_matches_numpy_exactly(self):
        rng = np.random.default_rng(0)
        samples = rng.random(137).tolist()
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            np.testing.assert_allclose(
                _quantile(samples, q), np.quantile(samples, q), rtol=1e-12
            )

    def test_histogram_percentiles_track_numpy_within_bucket_width(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 100.0, size=5000)
        histogram = obs.Histogram(buckets=tuple(np.linspace(0.5, 100.0, 200)))
        for value in values:
            histogram.observe(value)
        width = 99.5 / 199
        for q in (0.50, 0.95, 0.99):
            assert histogram.percentile(q) == pytest.approx(
                np.quantile(values, q), abs=2 * width
            )
        summary = histogram.summary()
        assert summary["count"] == 5000
        assert summary["mean"] == pytest.approx(values.mean())
        assert summary["max"] == values.max()

    def test_histogram_round_trip_and_merge(self):
        left, right = obs.Histogram(), obs.Histogram()
        for value in (0.3, 4.0, 40.0):
            left.observe(value)
        right.observe(400.0)
        restored = obs.Histogram.from_dict(json.loads(json.dumps(left.to_dict())))
        restored.merge(right)
        assert restored.count == 4
        assert restored.total == pytest.approx(444.3)
        assert restored.minimum == pytest.approx(0.3)
        assert restored.maximum == pytest.approx(400.0)
        with pytest.raises(ValueError, match="buckets"):
            restored.merge(obs.Histogram(buckets=(1.0, 2.0)))

    def test_fleet_merge_keeps_latest_snapshot_per_stream(self):
        records = [
            {"t": "metrics", "seq": 1, "ts": 1.0, "stream": "a",
             "counters": {"x": 5}, "gauges": {"g": 1.0}},
            {"t": "metrics", "seq": 2, "ts": 2.0, "stream": "a",
             "counters": {"x": 9}, "gauges": {"g": 3.0}},
            {"t": "metrics", "seq": 1, "ts": 5.0, "stream": "b",
             "counters": {"x": 4}, "gauges": {"g": 7.0}},
        ]
        summary = obs.trace_summary(records)
        assert summary.streams == 2
        # Snapshots are cumulative: latest per stream, then summed across.
        assert summary.counters["x"] == 13
        # Gauges: the most recent write anywhere in the fleet wins.
        assert summary.gauges["g"] == 7.0

    def test_multi_process_style_merge_across_directories(self, tmp_path):
        for worker in ("w1", "w2"):
            with obs.capture(tmp_path / worker):
                with obs.span("work.unit"):
                    obs.count("work.done", 2)
                    obs.observe("work.ms", 3.0)
        summary = obs.trace_summary([tmp_path / "w1", tmp_path / "w2"])
        assert summary.files == 2
        assert summary.spans["work.unit"].count == 2
        assert summary.counters["work.done"] == 4
        assert summary.histograms["work.ms"].count == 2


# ---------------------------------------------------------------------- #
# Events and diagnostics
# ---------------------------------------------------------------------- #
class TestEvents:
    def test_warn_once_dedup_records_every_event(self, tmp_path):
        with obs.capture(tmp_path / "trace") as tracer:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                obs.log("x.warned", "trouble", warn=True, once="key")
                obs.log("x.warned", "trouble", warn=True, once="key")
                obs.reset_once("key")
                obs.log("x.warned", "trouble", warn=True, once="key")
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 2
        # The trace sees each occurrence even when the console saw one.
        assert tracer.event_counts["x.warned"] == 3

    def test_echo_prints_message_and_records_event(self, tmp_path, capsys):
        with obs.capture(tmp_path / "trace") as tracer:
            obs.log("cli.status", "hello fleet", echo=True, pairs=3)
        assert "hello fleet" in capsys.readouterr().out
        assert tracer.event_counts["cli.status"] == 1
        summary = obs.trace_summary(tmp_path / "trace")
        assert summary.events["cli.status"] == 1

    def test_backend_fallback_is_structured_and_warns_once(self, tmp_path, monkeypatch):
        from repro.core import backend as backend_mod

        monkeypatch.setattr(backend_mod, "_warned_fallback", False)
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "definitely-not-a-backend")
        with obs.capture(tmp_path / "trace") as tracer:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert backend_mod._resolve_from_environment().name == "numpy"
                assert backend_mod._resolve_from_environment().name == "numpy"
        assert tracer.event_counts.get("backend.fallback") == 1
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "definitely-not-a-backend" in str(runtime[0].message)


# ---------------------------------------------------------------------- #
# Stack contracts
# ---------------------------------------------------------------------- #
class TestStackContracts:
    def test_tracing_does_not_change_results(self, tmp_path, obs_dataset):
        baseline = evaluate_dataset(obs_dataset, configs=[EDGE_TPU_V1])
        with obs.capture(tmp_path / "trace"):
            traced = evaluate_dataset(obs_dataset, configs=[EDGE_TPU_V1])
        np.testing.assert_array_equal(traced.latencies("V1"), baseline.latencies("V1"))
        np.testing.assert_array_equal(traced.energies("V1"), baseline.energies("V1"))

    def test_store_counters_match_store_stats_exactly(self, tmp_path, obs_dataset):
        cold = MeasurementStore(tmp_path / "store", shard_size=4)
        with obs.capture(tmp_path / "t-cold") as tracer:
            cold.sweep(obs_dataset, configs=("V1", "V2"))
        assert tracer.metrics.counter_value("store.pairs_simulated") == (
            cold.stats.pairs_simulated
        )
        assert tracer.metrics.counter_value("store.models_simulated") == (
            cold.stats.models_simulated
        )
        assert tracer.metrics.counter_value("store.pairs_loaded") == 0

        warm = MeasurementStore(tmp_path / "store", shard_size=4)
        with obs.capture(tmp_path / "t-warm") as tracer:
            warm.extend(obs_dataset, configs=("V1", "V2"))
        assert tracer.metrics.counter_value("store.pairs_loaded") == warm.stats.pairs_loaded
        assert tracer.metrics.counter_value("store.models_loaded") == warm.stats.models_loaded
        assert tracer.metrics.counter_value("store.pairs_simulated") == 0
        # The flushed trace merges to the same numbers (the fleet criterion).
        summary = obs.trace_summary(tmp_path / "t-warm")
        assert summary.counters["store.pairs_loaded"] == warm.stats.pairs_loaded

    def test_raising_progress_callback_does_not_abort_extend(self, tmp_path, obs_dataset):
        reference = evaluate_dataset(obs_dataset, configs=[EDGE_TPU_V1])
        store = MeasurementStore(tmp_path / "store", shard_size=4)
        calls = []

        def bad_callback(config_name, done, total):
            calls.append(config_name)
            raise ValueError("progress boom")

        with obs.capture(tmp_path / "trace") as tracer:
            with pytest.warns(RuntimeWarning, match="progress boom"):
                measurements = store.extend(
                    obs_dataset, configs=("V1",), progress_callback=bad_callback
                )
        assert calls, "the callback must still be invoked"
        assert tracer.event_counts["progress_callback.error"] == len(calls)
        np.testing.assert_allclose(
            measurements.latencies("V1"), reference.latencies("V1"), rtol=1e-9
        )

    def test_raising_progress_callback_does_not_abort_evaluate(self, tmp_path, obs_dataset):
        reference = evaluate_dataset(obs_dataset, configs=[EDGE_TPU_V1])

        def bad_callback(config_name, done, total):
            raise RuntimeError("tick boom")

        with obs.capture(tmp_path / "trace") as tracer:
            with pytest.warns(RuntimeWarning, match="tick boom"):
                measurements = evaluate_dataset(
                    obs_dataset, configs=[EDGE_TPU_V1], progress_callback=bad_callback
                )
        assert tracer.event_counts["progress_callback.error"] >= 1
        np.testing.assert_allclose(
            measurements.latencies("V1"), reference.latencies("V1"), rtol=1e-9
        )

    def test_package_level_exports(self):
        import repro

        assert repro.obs is obs
        assert repro.trace_summary is obs.trace_summary


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_cli_merges_prints_and_writes(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        with obs.capture(tmp_path / "traces"):
            with obs.span("cli.root"):
                obs.count("cli.hits", 3)

        output = tmp_path / "summary.json"
        assert main([str(tmp_path / "traces"), "--json", "--output", str(output)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["cli.hits"] == 3
        assert payload["spans"]["cli.root"]["count"] == 1
        assert json.loads(output.read_text())["counters"]["cli.hits"] == 3

        assert main([str(tmp_path / "traces")]) == 0
        assert "trace summary" in capsys.readouterr().out

    def test_cli_exits_2_without_trace_files(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main([str(tmp_path / "missing")]) == 2
        assert "no trace files" in capsys.readouterr().err
