"""Unit tests for the NASBench cell representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidCellError
from repro.nasbench import (
    CONV1X1,
    CONV3X3,
    Cell,
    INPUT,
    MAXPOOL3X3,
    OUTPUT,
)


def linear_cell(*ops: str) -> Cell:
    """Build a simple chain cell input -> ops... -> output."""
    n = len(ops) + 2
    matrix = np.zeros((n, n), dtype=int)
    for i in range(n - 1):
        matrix[i, i + 1] = 1
    return Cell(matrix, (INPUT, *ops, OUTPUT))


class TestCellValidation:
    def test_minimal_cell(self):
        cell = Cell([[0, 1], [0, 0]], [INPUT, OUTPUT])
        assert cell.num_vertices == 2
        assert cell.num_edges == 1

    def test_chain_cell_properties(self):
        cell = linear_cell(CONV3X3, CONV1X1, MAXPOOL3X3)
        assert cell.num_vertices == 5
        assert cell.num_edges == 4
        assert cell.interior_ops == (CONV3X3, CONV1X1, MAXPOOL3X3)
        assert cell.op_count(CONV3X3) == 1
        assert cell.op_count(CONV1X1) == 1
        assert cell.op_count(MAXPOOL3X3) == 1

    def test_rejects_non_square_matrix(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1, 0], [0, 0, 1]], [INPUT, OUTPUT])

    def test_rejects_lower_triangular_edges(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [1, 0]], [INPUT, OUTPUT])

    def test_rejects_self_loop(self):
        matrix = [[1, 1], [0, 0]]
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT, OUTPUT])

    def test_rejects_too_many_vertices(self):
        n = 8
        matrix = np.zeros((n, n), dtype=int)
        for i in range(n - 1):
            matrix[i, i + 1] = 1
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT] + [CONV3X3] * (n - 2) + [OUTPUT])

    def test_rejects_too_many_edges(self):
        n = 6
        matrix = np.triu(np.ones((n, n), dtype=int), 1)  # 15 edges > 9
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT, CONV3X3, CONV3X3, CONV3X3, CONV3X3, OUTPUT])

    def test_rejects_bad_ops(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, "conv7x7", OUTPUT])
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [0, 0]], [OUTPUT, INPUT])

    def test_rejects_op_count_mismatch(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [0, 0]], [INPUT, CONV3X3, OUTPUT])

    def test_rejects_non_binary_entries(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 2], [0, 0]], [INPUT, OUTPUT])


class TestPruning:
    def test_prune_keeps_connected_cell(self):
        cell = linear_cell(CONV3X3)
        assert cell.prune() is cell

    def test_prune_removes_dangling_vertex(self):
        # vertex 2 (conv1x1) has no outgoing path to the output.
        matrix = [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, OUTPUT])
        pruned = cell.prune()
        assert pruned.num_vertices == 3
        assert pruned.interior_ops == (CONV3X3,)

    def test_prune_removes_unreachable_vertex(self):
        # vertex 2 feeds the output but is not reachable from the input.
        matrix = [
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, MAXPOOL3X3, OUTPUT])
        pruned = cell.prune()
        assert pruned.num_vertices == 3
        assert pruned.interior_ops == (CONV3X3,)

    def test_disconnected_cell_raises(self):
        matrix = [
            [0, 1, 0, 0],
            [0, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV3X3, OUTPUT])
        assert not cell.is_valid()
        with pytest.raises(InvalidCellError):
            cell.prune()


class TestGraphMetrics:
    def test_depth_of_chain(self):
        assert linear_cell(CONV3X3, CONV3X3, CONV3X3).depth() == 4

    def test_depth_with_skip(self):
        matrix = [
            [0, 1, 0, 1],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, OUTPUT])
        assert cell.depth() == 3

    def test_width_of_chain_is_one(self):
        assert linear_cell(CONV3X3, CONV3X3).width() == 1

    def test_width_of_parallel_branches(self):
        # input feeds three parallel ops which all feed the output.
        matrix = [
            [0, 1, 1, 1, 0],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, MAXPOOL3X3, OUTPUT])
        assert cell.width() == 3

    def test_degrees_and_edges(self):
        cell = linear_cell(CONV3X3, CONV1X1)
        assert cell.edges() == [(0, 1), (1, 2), (2, 3)]
        assert cell.in_degree(0) == 0
        assert cell.out_degree(0) == 1
        assert cell.in_degree(3) == 1


class TestSerialization:
    def test_round_trip(self):
        cell = linear_cell(CONV3X3, MAXPOOL3X3)
        clone = Cell.from_dict(cell.to_dict())
        assert clone == cell
        assert hash(clone) == hash(cell)

    def test_equality_distinguishes_ops(self):
        a = linear_cell(CONV3X3)
        b = linear_cell(CONV1X1)
        assert a != b

    def test_numpy_matrix_is_a_copy(self):
        cell = linear_cell(CONV3X3)
        matrix = cell.numpy_matrix()
        matrix[0, 1] = 0
        assert cell.numpy_matrix()[0, 1] == 1
