"""Unit tests for the NASBench cell representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidCellError
from repro.nasbench import (
    CONV1X1,
    CONV3X3,
    Cell,
    INPUT,
    MAXPOOL3X3,
    OUTPUT,
)


def linear_cell(*ops: str) -> Cell:
    """Build a simple chain cell input -> ops... -> output."""
    n = len(ops) + 2
    matrix = np.zeros((n, n), dtype=int)
    for i in range(n - 1):
        matrix[i, i + 1] = 1
    return Cell(matrix, (INPUT, *ops, OUTPUT))


class TestCellValidation:
    def test_minimal_cell(self):
        cell = Cell([[0, 1], [0, 0]], [INPUT, OUTPUT])
        assert cell.num_vertices == 2
        assert cell.num_edges == 1

    def test_chain_cell_properties(self):
        cell = linear_cell(CONV3X3, CONV1X1, MAXPOOL3X3)
        assert cell.num_vertices == 5
        assert cell.num_edges == 4
        assert cell.interior_ops == (CONV3X3, CONV1X1, MAXPOOL3X3)
        assert cell.op_count(CONV3X3) == 1
        assert cell.op_count(CONV1X1) == 1
        assert cell.op_count(MAXPOOL3X3) == 1

    def test_rejects_non_square_matrix(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1, 0], [0, 0, 1]], [INPUT, OUTPUT])

    def test_rejects_lower_triangular_edges(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [1, 0]], [INPUT, OUTPUT])

    def test_rejects_self_loop(self):
        matrix = [[1, 1], [0, 0]]
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT, OUTPUT])

    def test_rejects_too_many_vertices(self):
        n = 8
        matrix = np.zeros((n, n), dtype=int)
        for i in range(n - 1):
            matrix[i, i + 1] = 1
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT] + [CONV3X3] * (n - 2) + [OUTPUT])

    def test_rejects_too_many_edges(self):
        n = 6
        matrix = np.triu(np.ones((n, n), dtype=int), 1)  # 15 edges > 9
        with pytest.raises(InvalidCellError):
            Cell(matrix, [INPUT, CONV3X3, CONV3X3, CONV3X3, CONV3X3, OUTPUT])

    def test_rejects_bad_ops(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, "conv7x7", OUTPUT])
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [0, 0]], [OUTPUT, INPUT])

    def test_rejects_op_count_mismatch(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 1], [0, 0]], [INPUT, CONV3X3, OUTPUT])

    def test_rejects_non_binary_entries(self):
        with pytest.raises(InvalidCellError):
            Cell([[0, 2], [0, 0]], [INPUT, OUTPUT])


class TestPruning:
    def test_prune_keeps_connected_cell(self):
        cell = linear_cell(CONV3X3)
        assert cell.prune() is cell

    def test_prune_removes_dangling_vertex(self):
        # vertex 2 (conv1x1) has no outgoing path to the output.
        matrix = [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, OUTPUT])
        pruned = cell.prune()
        assert pruned.num_vertices == 3
        assert pruned.interior_ops == (CONV3X3,)

    def test_prune_removes_unreachable_vertex(self):
        # vertex 2 feeds the output but is not reachable from the input.
        matrix = [
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, MAXPOOL3X3, OUTPUT])
        pruned = cell.prune()
        assert pruned.num_vertices == 3
        assert pruned.interior_ops == (CONV3X3,)

    def test_disconnected_cell_raises(self):
        matrix = [
            [0, 1, 0, 0],
            [0, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV3X3, OUTPUT])
        assert not cell.is_valid()
        with pytest.raises(InvalidCellError):
            cell.prune()


class TestGraphMetrics:
    def test_depth_of_chain(self):
        assert linear_cell(CONV3X3, CONV3X3, CONV3X3).depth() == 4

    def test_depth_with_skip(self):
        matrix = [
            [0, 1, 0, 1],
            [0, 0, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, OUTPUT])
        assert cell.depth() == 3

    def test_width_of_chain_is_one(self):
        assert linear_cell(CONV3X3, CONV3X3).width() == 1

    def test_width_of_parallel_branches(self):
        # input feeds three parallel ops which all feed the output.
        matrix = [
            [0, 1, 1, 1, 0],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 1],
            [0, 0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, MAXPOOL3X3, OUTPUT])
        assert cell.width() == 3

    def test_degrees_and_edges(self):
        cell = linear_cell(CONV3X3, CONV1X1)
        assert cell.edges() == [(0, 1), (1, 2), (2, 3)]
        assert cell.in_degree(0) == 0
        assert cell.out_degree(0) == 1
        assert cell.in_degree(3) == 1


class TestSerialization:
    def test_round_trip(self):
        cell = linear_cell(CONV3X3, MAXPOOL3X3)
        clone = Cell.from_dict(cell.to_dict())
        assert clone == cell
        assert hash(clone) == hash(cell)

    def test_equality_distinguishes_ops(self):
        a = linear_cell(CONV3X3)
        b = linear_cell(CONV1X1)
        assert a != b

    def test_numpy_matrix_is_a_copy(self):
        cell = linear_cell(CONV3X3)
        matrix = cell.numpy_matrix()
        matrix[0, 1] = 0
        assert cell.numpy_matrix()[0, 1] == 1


class TestModelIdentity:
    """Equality and hashing follow the isomorphism fingerprint."""

    def test_fingerprint_matches_cell_fingerprint(self):
        from repro.nasbench import cell_fingerprint

        cell = linear_cell(CONV3X3, MAXPOOL3X3)
        assert cell.fingerprint == cell_fingerprint(cell)
        # Cached: repeated access returns the identical string object.
        assert cell.fingerprint is cell.fingerprint

    def test_isomorphic_cells_compare_equal(self):
        from repro.nasbench import permute_cell

        matrix = [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
        cell = Cell(matrix, [INPUT, CONV3X3, CONV1X1, OUTPUT])
        # Swapping the two parallel branches relabels the vertices but keeps
        # the model the same.
        permuted = permute_cell(cell, [0, 2, 1, 3])
        assert permuted.ops != cell.ops
        assert permuted == cell
        assert hash(permuted) == hash(cell)

    def test_dangling_vertex_cell_equals_its_pruned_form(self):
        base = linear_cell(CONV3X3)
        with_dangling = Cell(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 0],  # vertex 2 has no outgoing path: pruned away
                [0, 0, 0, 0],
            ],
            [INPUT, CONV3X3, CONV1X1, OUTPUT],
        )
        assert with_dangling == base
        assert len({with_dangling, base}) == 1

    def test_sets_of_cells_deduplicate_by_model(self):
        a = linear_cell(CONV3X3)
        b = linear_cell(CONV1X1)
        assert len({a, b, linear_cell(CONV3X3)}) == 2
        assert a != b
        assert a != "not a cell"

    def test_disconnected_cells_compare_without_raising(self):
        # No input->output path: constructible (is_valid() screens it later),
        # and equality/hashing must not raise despite having no pruned form.
        disconnected = Cell([[0, 0], [0, 0]], [INPUT, OUTPUT])
        assert not disconnected.is_valid()
        assert disconnected == Cell([[0, 0], [0, 0]], [INPUT, OUTPUT])
        assert disconnected != linear_cell(CONV3X3)
        assert len({disconnected, disconnected}) == 1
