"""Benchmark JSON reporting and baseline comparator.

The benchmark harness lives outside the package (``benchmarks/``), so the
reporting module is loaded here by path.  Covered: the shape of the
``BENCH_*.json`` payload (machine fingerprint + measured calibration
constant), and the comparator semantics — within-band pass, >tolerance
regression, vanished/new headline metrics, and the population-mismatch
short-circuit that stops apples-to-oranges ratio comparisons.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_REPORTING_PATH = Path(__file__).parent.parent / "benchmarks" / "_reporting.py"


@pytest.fixture(scope="module")
def reporting():
    spec = importlib.util.spec_from_file_location("bench_reporting", _REPORTING_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(headline, population=None, metrics=None):
    return {
        "schema": 1,
        "experiment": "x",
        "headline": headline,
        "population": population or {"models": 100},
        "metrics": metrics or {},
    }


class TestReportJson:
    def test_writes_normalized_payload(self, reporting, monkeypatch, tmp_path):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        payload = reporting.report_json(
            "unit_test",
            headline={"speedup": 4.56789},
            population={"models": 10},
            metrics={"rate": 123.456789},
        )
        on_disk = json.loads((tmp_path / "BENCH_unit_test.json").read_text())
        assert on_disk == payload
        assert on_disk["schema"] == reporting.BENCH_SCHEMA
        assert on_disk["headline"] == {"speedup": 4.5679}
        assert on_disk["population"] == {"models": 10}
        assert on_disk["calibration_seconds"] > 0
        machine = on_disk["machine"]
        assert machine["numpy"] and machine["python"] and machine["platform"]

    def test_calibration_is_cached_and_positive(self, reporting):
        first = reporting.machine_calibration()
        second = reporting.machine_calibration()
        assert first == second
        assert 0 < first < 60

    def test_load_baseline_missing_returns_none(self, reporting, tmp_path):
        assert reporting.load_baseline("nope", baselines_dir=tmp_path) is None


class TestComparator:
    def test_within_tolerance_passes(self, reporting):
        baseline = _payload({"speedup": 10.0})
        current = _payload({"speedup": 8.6})  # -14% on a 15% band
        assert reporting.compare_to_baseline(current, baseline, tolerance=0.15) == []

    def test_regression_beyond_tolerance_fails(self, reporting):
        baseline = _payload({"speedup": 10.0})
        current = _payload({"speedup": 8.4})  # -16%
        problems = reporting.compare_to_baseline(current, baseline, tolerance=0.15)
        assert len(problems) == 1
        assert "speedup regressed" in problems[0]

    def test_improvement_always_passes(self, reporting):
        baseline = _payload({"speedup": 10.0})
        current = _payload({"speedup": 25.0})
        assert reporting.compare_to_baseline(current, baseline) == []

    def test_missing_headline_metric_is_a_regression(self, reporting):
        baseline = _payload({"speedup": 10.0, "warm_speedup": 25.0})
        current = _payload({"speedup": 10.0})
        problems = reporting.compare_to_baseline(current, baseline)
        assert any("missing" in problem for problem in problems)

    def test_new_headline_metric_without_baseline_is_flagged(self, reporting):
        baseline = _payload({"speedup": 10.0})
        current = _payload({"speedup": 10.0, "extra": 3.0})
        problems = reporting.compare_to_baseline(current, baseline)
        assert any("no committed baseline" in problem for problem in problems)

    def test_population_mismatch_short_circuits(self, reporting):
        baseline = _payload({"speedup": 10.0}, population={"models": 10000, "configs": 120})
        current = _payload({"speedup": 2.0}, population={"models": 160, "configs": 120})
        problems = reporting.compare_to_baseline(current, baseline)
        assert len(problems) == 1
        assert "population mismatch" in problems[0]
        assert "models" in problems[0]
