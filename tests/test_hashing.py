"""Tests for graph-isomorphism hashing, including property-based invariance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nasbench import (
    CONV1X1,
    CONV3X3,
    Cell,
    INPUT,
    INTERIOR_OPS,
    MAXPOOL3X3,
    OUTPUT,
    cell_fingerprint,
    hash_graph,
    permute_cell,
    random_cell,
)


def test_hash_is_deterministic():
    cell = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV3X3, OUTPUT])
    assert cell_fingerprint(cell) == cell_fingerprint(cell)


def test_hash_differs_for_different_ops():
    a = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV3X3, OUTPUT])
    b = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV1X1, OUTPUT])
    assert cell_fingerprint(a) != cell_fingerprint(b)


def test_hash_differs_for_different_structure():
    chain = Cell(
        [[0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0]],
        [INPUT, CONV3X3, CONV3X3, OUTPUT],
    )
    parallel = Cell(
        [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 1], [0, 0, 0, 0]],
        [INPUT, CONV3X3, CONV3X3, OUTPUT],
    )
    assert cell_fingerprint(chain) != cell_fingerprint(parallel)


def test_hash_ignores_extraneous_vertices():
    base = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, MAXPOOL3X3, OUTPUT])
    with_dangling = Cell(
        [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 0],  # dangling conv1x1 never reaches the output
            [0, 0, 0, 0],
        ],
        [INPUT, MAXPOOL3X3, CONV1X1, OUTPUT],
    )
    assert cell_fingerprint(base) == cell_fingerprint(with_dangling)


def test_interior_permutation_preserves_hash():
    # Two interior vertices on parallel branches can be swapped freely.
    cell = Cell(
        [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ],
        [INPUT, CONV3X3, MAXPOOL3X3, OUTPUT],
    )
    permuted = permute_cell(cell, [0, 2, 1, 3])
    assert permuted.ops[1] == MAXPOOL3X3
    assert cell_fingerprint(cell) == cell_fingerprint(permuted)


def test_permute_cell_validates_permutation():
    cell = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV3X3, OUTPUT])
    with pytest.raises(ValueError):
        permute_cell(cell, [1, 0, 2])
    with pytest.raises(ValueError):
        permute_cell(cell, [0, 0, 2])


def test_hash_graph_rejects_label_mismatch():
    with pytest.raises(ValueError):
        hash_graph(np.zeros((3, 3), dtype=int), [1, 2])


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_parallel_branch_swap_is_hash_invariant(seed):
    """Swapping two parallel interior branches never changes the fingerprint."""
    rng = np.random.default_rng(seed)
    ops = [str(rng.choice(INTERIOR_OPS)) for _ in range(2)]
    matrix = np.array(
        [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ]
    )
    cell = Cell(matrix, [INPUT, ops[0], ops[1], OUTPUT])
    swapped = Cell(matrix, [INPUT, ops[1], ops[0], OUTPUT])
    assert cell_fingerprint(cell) == cell_fingerprint(swapped)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fingerprint_stable_under_pruning(seed):
    """Pruning before hashing never changes the fingerprint of a pruned cell."""
    rng = np.random.default_rng(seed)
    cell = random_cell(rng)
    assert cell_fingerprint(cell, prune=True) == cell_fingerprint(cell, prune=False)
