"""Tests for lowering, tiling/mapping and the parameter-cache planner."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import EDGE_TPU_V1, EDGE_TPU_V2, EDGE_TPU_V3, STUDIED_CONFIGS
from repro.compiler import (
    compile_model,
    effective_cache_capacity,
    lower_network,
    map_layer,
    max_activation_bytes,
    plan_parameter_cache,
)
from repro.errors import CompilationError
from repro.nasbench import build_network, random_cell
from repro.nasbench.famous_cells import BEST_ACCURACY_CELL, SHALLOW_CONV_HEAVY_CELL
from repro.nasbench.network import KIND_CONV, LayerSpec


@pytest.fixture(scope="module")
def best_network():
    return build_network(BEST_ACCURACY_CELL)


@pytest.fixture(scope="module")
def small_network():
    return build_network(SHALLOW_CONV_HEAVY_CELL)


def conv_layer(out_channels=128, in_channels=128, size=32, kernel=3) -> LayerSpec:
    return LayerSpec(
        name="conv",
        kind=KIND_CONV,
        input_height=size,
        input_width=size,
        in_channels=in_channels,
        out_channels=out_channels,
        kernel_size=kernel,
        has_batch_norm=True,
    )


class TestLowering:
    def test_lowering_preserves_layer_order(self, best_network):
        lowered = lower_network(best_network)
        assert [layer.name for layer in lowered] == [layer.name for layer in best_network.layers]

    def test_unsupported_kind_rejected(self, best_network):
        bad_layer = dataclasses.replace(best_network.layers[0], kind="depthwise_conv")
        bad_network = dataclasses.replace(
            best_network, layers=(bad_layer,) + best_network.layers[1:]
        )
        with pytest.raises(CompilationError):
            lower_network(bad_network)

    def test_max_activation_bytes(self, best_network):
        layers = lower_network(best_network)
        expected = max(
            layer.input_activation_bytes + layer.output_activation_bytes for layer in layers
        )
        assert max_activation_bytes(layers) == expected


class TestTiling:
    def test_compute_cycles_cover_the_macs(self):
        layer = conv_layer()
        for config in STUDIED_CONFIGS.values():
            mapping = map_layer(layer, config)
            issued = mapping.compute_cycles * config.macs_per_cycle
            assert issued >= layer.macs
            assert 0 < mapping.utilization <= 1.0

    def test_wider_machine_is_not_slower_in_cycles(self):
        layer = conv_layer(out_channels=512, size=8, in_channels=512)
        cycles_v1 = map_layer(layer, EDGE_TPU_V1).compute_cycles
        cycles_v2 = map_layer(layer, EDGE_TPU_V2).compute_cycles
        assert cycles_v1 <= cycles_v2

    def test_thin_layers_underutilize_the_wide_machine(self):
        thin = conv_layer(out_channels=32, in_channels=32, kernel=1)
        utilization_v1 = map_layer(thin, EDGE_TPU_V1).utilization
        utilization_v2 = map_layer(thin, EDGE_TPU_V2).utilization
        assert utilization_v1 <= utilization_v2

    def test_vector_layer_has_no_mac_utilization(self):
        pool = LayerSpec(
            name="pool",
            kind="maxpool",
            input_height=16,
            input_width=16,
            in_channels=64,
            out_channels=64,
            kernel_size=3,
        )
        mapping = map_layer(pool, EDGE_TPU_V2)
        assert mapping.utilization == 0.0
        assert mapping.compute_cycles >= 1
        assert mapping.weight_passes == 0

    def test_weight_passes_grow_with_layer_size(self):
        small = conv_layer(out_channels=64, in_channels=64)
        large = conv_layer(out_channels=512, in_channels=512, size=8)
        assert (
            map_layer(small, EDGE_TPU_V3).weight_passes
            <= map_layer(large, EDGE_TPU_V3).weight_passes
        )

    @settings(max_examples=25, deadline=None)
    @given(
        out_channels=st.integers(min_value=1, max_value=512),
        in_channels=st.integers(min_value=1, max_value=512),
        kernel=st.sampled_from([1, 3]),
        size=st.sampled_from([8, 16, 32]),
    )
    def test_mapping_invariants(self, out_channels, in_channels, kernel, size):
        layer = conv_layer(out_channels, in_channels, size, kernel)
        for config in (EDGE_TPU_V1, EDGE_TPU_V3):
            mapping = map_layer(layer, config)
            assert mapping.compute_cycles >= 1
            assert mapping.compute_cycles * config.macs_per_cycle >= layer.macs
            assert mapping.spatial_tiles >= 1
            assert mapping.channel_tiles >= 1


class TestParameterCache:
    def test_effective_capacity_decays(self):
        capacity = 10_000_000
        assert effective_cache_capacity(5_000_000, capacity) == capacity
        assert effective_cache_capacity(capacity, capacity) == capacity
        assert effective_cache_capacity(2 * capacity, capacity) == capacity // 2
        assert effective_cache_capacity(3 * capacity, capacity) == 0
        assert effective_cache_capacity(123, 0) == 0

    def test_small_model_is_fully_cached(self, small_network):
        for config in STUDIED_CONFIGS.values():
            plan = plan_parameter_cache(lower_network(small_network), config)
            assert plan.fully_cached
            assert plan.cached_bytes == plan.total_weight_bytes

    def test_large_model_streams_on_small_memory_configs(self, best_network):
        layers = lower_network(best_network)
        plan_v2 = plan_parameter_cache(layers, EDGE_TPU_V2)
        assert not plan_v2.fully_cached
        assert plan_v2.streamed_bytes > 0
        plan_v1 = plan_parameter_cache(layers, EDGE_TPU_V1)
        assert plan_v1.streamed_bytes <= plan_v2.streamed_bytes

    def test_cached_bytes_respect_capacity(self, best_network):
        for config in STUDIED_CONFIGS.values():
            plan = plan_parameter_cache(lower_network(best_network), config)
            assert plan.cached_bytes <= plan.effective_capacity_bytes
            assert plan.cached_bytes + plan.streamed_bytes == plan.total_weight_bytes

    def test_disabled_caching_streams_everything(self, small_network):
        plan = plan_parameter_cache(lower_network(small_network), EDGE_TPU_V1, enable_caching=False)
        assert plan.cached_bytes == 0
        assert plan.streamed_bytes == plan.total_weight_bytes

    def test_is_cached_lookup(self, small_network):
        plan = plan_parameter_cache(lower_network(small_network), EDGE_TPU_V1)
        for name in plan.cached_layers:
            assert plan.is_cached(name)
        assert not plan.is_cached("not-a-layer")


class TestCompileModel:
    def test_compiled_model_layer_alignment(self, best_network):
        compiled = compile_model(best_network, EDGE_TPU_V2)
        assert len(compiled.layers) == len(best_network.layers)
        for compiled_layer, layer in zip(compiled.layers, best_network.layers):
            assert compiled_layer.spec is layer
            assert (
                compiled_layer.cached_weight_bytes + compiled_layer.streamed_weight_bytes
                == layer.weight_bytes
            )

    def test_average_utilization_bounds(self, best_network):
        for config in STUDIED_CONFIGS.values():
            compiled = compile_model(best_network, config)
            assert 0.0 < compiled.average_utilization <= 1.0

    def test_total_compute_cycles_positive(self, small_network):
        compiled = compile_model(small_network, EDGE_TPU_V3)
        assert compiled.total_compute_cycles > 0
        assert compiled.total_weight_bytes == sum(
            layer.weight_bytes for layer in small_network.layers
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_models_compile_on_every_config(self, seed):
        network = build_network(random_cell(np.random.default_rng(seed)))
        for config in STUDIED_CONFIGS.values():
            compiled = compile_model(network, config)
            assert compiled.total_compute_cycles > 0
