"""Shared fixtures for the test suite.

The heavier fixtures (a sampled dataset and its simulation sweep) are
session-scoped so the many analysis/integration tests can share one
population instead of regenerating it per test.
"""

from __future__ import annotations

import shutil

import pytest

from repro.arch import STUDIED_CONFIGS
from repro.nasbench import NASBenchDataset, sample_unique_cells
from repro.simulator import evaluate_dataset


@pytest.fixture(scope="session")
def small_cells():
    """A deterministic list of 40 unique sampled cells."""
    return sample_unique_cells(40, seed=123)


@pytest.fixture(scope="session")
def dataset():
    """A deterministic dataset of 150 models (includes the paper's named cells)."""
    return NASBenchDataset.generate(num_models=150, seed=42)


@pytest.fixture(scope="session")
def measurements(dataset):
    """Latency/energy measurements of the session dataset on V1/V2/V3."""
    return evaluate_dataset(dataset, configs=list(STUDIED_CONFIGS.values()))


@pytest.fixture(scope="session")
def configs():
    """The three studied accelerator configurations keyed by name."""
    return dict(STUDIED_CONFIGS)


@pytest.fixture()
def pipeline_cache_dir(tmp_path):
    """A throwaway pipeline cache directory, force-removed after the test.

    ``tmp_path`` already isolates tests from each other; the explicit
    ``rmtree`` guarantees cached npz artifacts never leak between tests even
    if the base temporary directory is retained (``--basetemp`` reuse).
    """
    cache_dir = tmp_path / "pipeline-cache"
    yield cache_dir
    shutil.rmtree(cache_dir, ignore_errors=True)
