"""Tests for the accelerator design-space exploration subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ParetoArchive
from repro.arch import EDGE_TPU_V1, EDGE_TPU_V2, MIB
from repro.errors import InvalidConfigError, PipelineError, SearchError
from repro.hwspace import (
    AcceleratorSpace,
    CoSearchEngine,
    CoSearchSpec,
    HardwareFrontier,
    config_digest,
    pair_key,
    studied_baselines,
)
from repro.hwspace.frontier import ConfigPoint
from repro.nasbench import NASBenchDataset
from repro.pipeline import HardwareSweepExperiment, PopulationSpec, run_hardware_sweep
from repro.service import MeasurementStore

AXES = {
    "clock_mhz": [800.0, 1066.0],
    "pes_x": [2, 4],
    "compute_lanes": [32, 64],
}


@pytest.fixture(scope="module")
def space():
    return AcceleratorSpace(AXES)


@pytest.fixture(scope="module")
def small_dataset():
    return NASBenchDataset.generate(num_models=30, seed=9)


class TestAcceleratorSpace:
    def test_size_and_enumeration(self, space):
        configs = list(space.enumerate())
        assert space.size == len(configs) == 8
        assert len({config.name for config in configs}) == 8
        # Deterministic order: a second enumeration is identical.
        assert [c.name for c in space.enumerate()] == [c.name for c in configs]

    def test_grid_points_route_through_with_overrides(self, space):
        for config in space.enumerate():
            assert config.name == f"hw-{config_digest(config)}"
            assert config in space
            # Non-axis fields come from the base configuration.
            assert config.pe_memory_bytes == EDGE_TPU_V1.pe_memory_bytes
            assert config.io_bandwidth_gbps == EDGE_TPU_V1.io_bandwidth_gbps

    def test_digest_stable_across_axis_order_and_base_name(self):
        reordered = AcceleratorSpace(
            {
                "compute_lanes": [64, 32],
                "pes_x": [4, 2],
                "clock_mhz": [1066.0, 800.0],
            }
        )
        assert reordered.digest == AcceleratorSpace(AXES).digest
        renamed_base = AcceleratorSpace(AXES, base=EDGE_TPU_V1.with_overrides(name="X"))
        assert renamed_base.digest == AcceleratorSpace(AXES).digest
        different = AcceleratorSpace({**AXES, "clock_mhz": [800.0, 1250.0]})
        assert different.digest != AcceleratorSpace(AXES).digest
        other_base = AcceleratorSpace(AXES, base=EDGE_TPU_V2)
        assert other_base.digest != AcceleratorSpace(AXES).digest

    def test_config_digest_ignores_name_only(self):
        renamed = EDGE_TPU_V1.with_overrides(name="renamed")
        assert config_digest(renamed) == config_digest(EDGE_TPU_V1)
        changed = EDGE_TPU_V1.with_overrides(clock_mhz=801.0)
        assert config_digest(changed) != config_digest(EDGE_TPU_V1)

    def test_invalid_grids_are_rejected(self):
        with pytest.raises(InvalidConfigError):
            AcceleratorSpace({})
        with pytest.raises(InvalidConfigError, match="'num_lanes'"):
            AcceleratorSpace({"num_lanes": [32]})
        with pytest.raises(InvalidConfigError, match="'name'"):
            AcceleratorSpace({"name": ["a"]})
        with pytest.raises(InvalidConfigError, match="no values"):
            AcceleratorSpace({"clock_mhz": []})
        with pytest.raises(InvalidConfigError, match="duplicate"):
            AcceleratorSpace({"pes_x": [2, 2]})
        with pytest.raises(InvalidConfigError, match="non-numeric"):
            AcceleratorSpace({"clock_mhz": ["fast"]})
        with pytest.raises(InvalidConfigError, match="integer"):
            AcceleratorSpace({"pes_x": [2.5]})
        # Values violating the AcceleratorConfig invariants fail eagerly.
        with pytest.raises(InvalidConfigError):
            AcceleratorSpace({"clock_mhz": [0.0]})
        with pytest.raises(InvalidConfigError):
            AcceleratorSpace({"pe_memory_cache_fraction": [1.5]})

    def test_sample_is_on_grid_and_seed_deterministic(self, space):
        first = space.sample(np.random.default_rng(4))
        again = space.sample(np.random.default_rng(4))
        assert first == again
        assert first in space

    def test_neighbors_are_one_step_moves(self, space):
        corner = space.at([0, 0, 0])
        moves = space.neighbors(corner)
        assert len(moves) == 3  # one step up per axis, nothing below the corner
        center_axes = {"clock_mhz": [700.0, 800.0, 900.0]}
        line = AcceleratorSpace(center_axes)
        middle = line.at([1])
        assert {config.clock_mhz for config in line.neighbors(middle)} == {700.0, 900.0}
        for move in moves:
            assert move in space
            differing = [
                field
                for field in space.axis_fields
                if getattr(move, field) != getattr(corner, field)
            ]
            assert len(differing) == 1

    def test_off_grid_configs_are_rejected(self, space):
        with pytest.raises(InvalidConfigError, match="not on the grid"):
            space.coordinates(EDGE_TPU_V1.with_overrides(clock_mhz=999.0))
        with pytest.raises(InvalidConfigError, match="not on the grid"):
            space.neighbors(EDGE_TPU_V2)
        assert EDGE_TPU_V2 not in space
        with pytest.raises(InvalidConfigError):
            space.at([0, 0])
        with pytest.raises(InvalidConfigError):
            space.at([0, 0, 5])


class TestHardwareFrontier:
    def test_summaries_match_measurements(self, space, small_dataset):
        frontier = HardwareFrontier(small_dataset)
        configs = list(space.enumerate())
        measurements = frontier.sweep(configs)
        points = frontier.summarize(configs, measurements)
        mask = small_dataset.accuracies() >= 0.70
        for point, config in zip(points, configs):
            latencies = measurements.latencies(config.name)[mask]
            assert point.mean_latency_ms == pytest.approx(float(latencies.mean()))
            assert point.median_latency_ms == pytest.approx(float(np.median(latencies)))
            assert point.num_models == int(mask.sum())
            assert point.peak_tops == pytest.approx(config.peak_tops)
            assert point.total_sram_mib == pytest.approx(config.total_on_chip_memory_bytes / MIB)

    def test_pareto_drops_dominated_points(self):
        def point(name, latency, tops):
            return ConfigPoint(
                config=EDGE_TPU_V1.with_overrides(name=name),
                digest=name,
                num_models=1,
                mean_latency_ms=latency,
                median_latency_ms=latency,
                mean_energy_mj=float("nan"),
                peak_tops=tops,
                total_sram_mib=1.0,
            )

        cheap_slow = point("a", 4.0, 5.0)
        costly_fast = point("b", 1.0, 20.0)
        dominated = point("c", 4.5, 20.0)  # slower and costlier than both
        front = HardwareFrontier.pareto([dominated, costly_fast, cheap_slow], cost="peak_tops")
        assert [p.digest for p in front] == ["b", "a"]

    def test_pareto_validates_axis_names(self):
        with pytest.raises(InvalidConfigError):
            HardwareFrontier.pareto([], metric="latency")
        with pytest.raises(InvalidConfigError):
            HardwareFrontier.pareto([], cost="area")

    def test_store_caching_mode_mismatch_is_rejected(self, small_dataset, tmp_path):
        store = MeasurementStore(tmp_path, enable_parameter_caching=True)
        with pytest.raises(InvalidConfigError, match="parameter caching"):
            HardwareFrontier(small_dataset, store=store, enable_parameter_caching=False)

    def test_store_backed_sweep_resumes(self, space, small_dataset, tmp_path):
        configs = list(space.enumerate())
        store = MeasurementStore(tmp_path, shard_size=15)
        frontier = HardwareFrontier(small_dataset, store=store)
        frontier.summarize(configs)
        assert store.stats.pairs_simulated == 2 * len(configs)
        warm_store = MeasurementStore(tmp_path, shard_size=15)
        warm = HardwareFrontier(small_dataset, store=warm_store)
        warm.summarize(configs)
        assert warm_store.stats.pairs_simulated == 0
        assert warm_store.stats.pairs_loaded == 2 * len(configs)


class TestHardwareSweepPipeline:
    def test_cached_sweep_replays(self, tmp_path):
        experiment = HardwareSweepExperiment(
            name="smoke",
            space=AcceleratorSpace({"clock_mhz": [800.0, 1066.0], "pes_x": [2, 4]}),
            population=PopulationSpec(num_models=20, seed=2),
        )
        cold = run_hardware_sweep(experiment, cache_dir=tmp_path)
        assert not cold.replayed
        assert len(cold.points) == 4
        assert set(cold.frontiers) == {"peak_tops", "total_sram_mib"}
        for front in cold.frontiers.values():
            assert front  # never empty: some config is non-dominated
        warm = run_hardware_sweep(experiment, cache_dir=tmp_path)
        assert warm.replayed
        assert warm.store_stats.pairs_simulated == 0
        renamed = HardwareSweepExperiment(
            name="other-name",
            space=experiment.space,
            population=experiment.population,
        )
        assert renamed.sweep_key() == experiment.sweep_key()

    def test_compacted_sweep_replays_identically(self, tmp_path):
        experiment = HardwareSweepExperiment(
            name="smoke",
            space=AcceleratorSpace({"clock_mhz": [800.0, 1066.0], "pes_x": [2, 4]}),
            population=PopulationSpec(num_models=20, seed=2),
        )
        cold = run_hardware_sweep(experiment, cache_dir=tmp_path, compact=True)
        assert list(tmp_path.glob("hwsweep-*-compact-*.npy"))
        assert not list(tmp_path.glob("hwsweep-*.npz"))
        warm = run_hardware_sweep(experiment, cache_dir=tmp_path)
        assert warm.replayed
        assert warm.store_stats.pairs_compacted == warm.store_stats.pairs_loaded > 0
        for cold_point, warm_point in zip(cold.points, warm.points):
            assert cold_point == warm_point
        with pytest.raises(PipelineError, match="cache_dir"):
            run_hardware_sweep(experiment, compact=True)


class TestCoSearch:
    def test_spec_validation(self):
        with pytest.raises(SearchError):
            CoSearchSpec(metric="throughput")
        with pytest.raises(SearchError):
            CoSearchSpec(population_size=1)
        with pytest.raises(SearchError):
            CoSearchSpec(generations=0)
        with pytest.raises(SearchError):
            CoSearchSpec(hardware_move_probability=1.5)
        assert CoSearchSpec(population_size=10, generations=3).simulation_budget == 30

    def test_single_point_space_is_rejected(self):
        space = AcceleratorSpace({"clock_mhz": [800.0]})
        with pytest.raises(SearchError, match="single point"):
            CoSearchEngine(CoSearchSpec(), space)

    def test_archive_keys_pairs_not_cells(self):
        archive = ParetoArchive(ref_cost=10.0)
        cell_stub = NASBenchDataset.generate(num_models=1, seed=0)[0].cell
        assert archive.update(cell_stub, 5.0, 0.8, key="fp@hw-a")
        # Same cell on different hardware: a distinct, mutually
        # non-dominated point must coexist in the archive.
        assert archive.update(cell_stub, 3.0, 0.7, key="fp@hw-b")
        assert len(archive) == 2
        # Without a key the cell fingerprint still deduplicates.
        assert not archive.update(cell_stub, 5.0, 0.8, key="fp@hw-a")

    def test_run_spends_exact_budget_on_unique_pairs(self, space):
        spec = CoSearchSpec(population_size=8, generations=3, seed=5)
        result = CoSearchEngine(spec, space).run()
        assert len(result.pairs) == spec.simulation_budget
        keys = [record.key for record in result.pairs]
        assert len(set(keys)) == len(keys)
        for record in result.pairs:
            assert record.key == pair_key(record.cell, config_digest(record.config))
            assert record.config in space
        assert len(result.generations) == spec.generations
        hypervolumes = [row.hypervolume for row in result.generations]
        assert hypervolumes == sorted(hypervolumes)

    def test_run_is_deterministic_in_the_seed(self, space):
        spec = CoSearchSpec(population_size=8, generations=2, seed=13)
        first = CoSearchEngine(spec, space).run()
        second = CoSearchEngine(spec, space).run()
        assert [r.key for r in first.pairs] == [r.key for r in second.pairs]
        np.testing.assert_array_equal(first.objective, second.objective)

    def test_cosearch_dominates_a_studied_baseline_at_equal_budget(self):
        # The acceptance experiment: at the same simulation budget a joint
        # cell x hardware search must find a pair that Pareto-dominates at
        # least one of the fixed-hardware V1/V2/V3 winners.
        space = AcceleratorSpace(
            {
                "clock_mhz": [800.0, 1066.0, 1250.0],
                "pes_x": [2, 4, 8],
                "cores_per_pe": [2, 4],
                "compute_lanes": [32, 64],
            }
        )
        spec = CoSearchSpec(population_size=16, generations=6, seed=0, min_accuracy=0.92)
        result = CoSearchEngine(spec, space).run()
        baselines = studied_baselines(spec)
        assert set(baselines) == {"V1", "V2", "V3"}
        assert any(result.dominates(cost, accuracy) for cost, accuracy in baselines.values())
        # The joint winner is also strictly faster than every single-axis
        # winner (the hardware axis buys raw latency).
        assert result.best_objective < min(cost for cost, _ in baselines.values())

    def test_summary_lines_render(self, space):
        spec = CoSearchSpec(population_size=8, generations=2, seed=5)
        result = CoSearchEngine(spec, space).run()
        lines = result.summary_lines()
        assert "co-search" in lines[0]
        assert len(lines) == 2 + spec.generations

    def test_summary_lines_render_for_infeasible_runs(self, space):
        # The diagnostic table must render exactly when nothing was feasible.
        spec = CoSearchSpec(population_size=4, generations=1, min_accuracy=0.999)
        result = CoSearchEngine(spec, space).run()
        with pytest.raises(SearchError):
            _ = result.best_pair
        assert "no feasible pair" in result.summary_lines()[0]
