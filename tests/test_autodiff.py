"""Tests for the reverse-mode autodiff engine, including gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.autodiff import (
    Tensor,
    add,
    concat,
    divide,
    gather,
    layer_norm,
    matmul,
    mean,
    mse_loss,
    multiply,
    power,
    relu,
    segment_sum,
    subtract,
    tensor_sum,
)
from repro.errors import ModelError


def numerical_gradient(fn, tensor: Tensor, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function wrt *tensor*."""
    gradient = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = fn().item()
        flat[index] = original - epsilon
        lower = fn().item()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return gradient


class TestForward:
    def test_basic_arithmetic(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0, 4.0]])
        assert np.allclose(add(a, b).numpy(), [[4.0, 6.0]])
        assert np.allclose(subtract(a, b).numpy(), [[-2.0, -2.0]])
        assert np.allclose(multiply(a, b).numpy(), [[3.0, 8.0]])
        assert np.allclose(divide(b, a).numpy(), [[3.0, 2.0]])

    def test_operator_overloads(self):
        a = Tensor([[2.0]])
        assert ((a + 1.0) * 3.0).item() == pytest.approx(9.0)
        assert (-a).item() == pytest.approx(-2.0)
        assert (1.0 - a).item() == pytest.approx(-1.0)

    def test_matmul_shape_validation(self):
        with pytest.raises(ModelError):
            matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))

    def test_relu_clamps_negatives(self):
        out = relu(Tensor([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out.numpy(), [[0.0, 0.0, 2.0]])

    def test_segment_sum_groups_rows(self):
        values = Tensor([[1.0], [2.0], [3.0]])
        out = segment_sum(values, np.array([0, 1, 0]), 2)
        assert np.allclose(out.numpy(), [[4.0], [2.0]])

    def test_segment_sum_validates_lengths(self):
        with pytest.raises(ModelError):
            segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    def test_gather_selects_rows(self):
        values = Tensor([[1.0], [2.0], [3.0]])
        out = gather(values, np.array([2, 0, 2]))
        assert np.allclose(out.numpy(), [[3.0], [1.0], [3.0]])

    def test_layer_norm_normalizes_rows(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0, 4.0]]))
        scale = Tensor(np.ones((1, 4)))
        offset = Tensor(np.zeros((1, 4)))
        out = layer_norm(x, scale, offset).numpy()
        assert out.mean() == pytest.approx(0.0, abs=1e-6)
        assert out.std() == pytest.approx(1.0, rel=1e-2)

    def test_mse_loss_value(self):
        loss = mse_loss(Tensor([[1.0], [3.0]]), Tensor([[0.0], [0.0]]))
        assert loss.item() == pytest.approx(5.0)

    def test_mse_loss_shape_mismatch(self):
        with pytest.raises(ModelError):
            mse_loss(Tensor(np.ones((2, 1))), Tensor(np.ones((3, 1))))


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(ModelError):
            Tensor([[1.0]]).backward()

    def test_backward_requires_scalar(self):
        t = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(ModelError):
            (t * 2.0).backward()

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([[2.0]], requires_grad=True)
        y = x * x  # dy/dx = 2x = 4
        y.backward()
        assert x.grad[0, 0] == pytest.approx(4.0)

    def test_broadcast_gradient_is_summed(self):
        bias = Tensor(np.zeros((1, 3)), requires_grad=True)
        values = Tensor(np.ones((4, 3)))
        out = tensor_sum(add(values, bias))
        out.backward()
        assert np.allclose(bias.grad, np.full((1, 3), 4.0))

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)

        def loss():
            return tensor_sum(multiply(matmul(a, b), matmul(a, b)))

        value = loss()
        value.backward()
        assert np.allclose(a.grad, numerical_gradient(loss, a), atol=1e-5)
        assert np.allclose(b.grad, numerical_gradient(loss, b), atol=1e-5)

    def test_layer_norm_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        scale = Tensor(rng.normal(size=(1, 5)), requires_grad=True)
        offset = Tensor(rng.normal(size=(1, 5)), requires_grad=True)

        def loss():
            return tensor_sum(power(layer_norm(x, scale, offset), 2.0))

        loss().backward()
        assert np.allclose(x.grad, numerical_gradient(loss, x), atol=1e-4)
        assert np.allclose(scale.grad, numerical_gradient(loss, scale), atol=1e-4)
        assert np.allclose(offset.grad, numerical_gradient(loss, offset), atol=1e-4)

    def test_segment_and_gather_gradients_match_numerical(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        segments = np.array([0, 1, 0, 2, 1])
        indices = np.array([0, 2, 2, 1])

        def loss():
            pooled = segment_sum(x, segments, 3)
            selected = gather(x, indices)
            return tensor_sum(power(pooled, 2.0)) + tensor_sum(power(selected, 2.0))

        loss().backward()
        assert np.allclose(x.grad, numerical_gradient(loss, x), atol=1e-5)

    def test_concat_routes_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = tensor_sum(multiply(concat([a, b], axis=1), Tensor(np.arange(10.0).reshape(2, 5))))
        out.backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)
        assert np.allclose(a.grad, [[0.0, 1.0], [5.0, 6.0]])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mlp_like_composition_gradient(self, seed):
        """Random small MLP compositions have correct gradients."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(3, 4)))
        w1 = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(6, 1)), requires_grad=True)
        target = Tensor(rng.normal(size=(3, 1)))

        def loss():
            hidden = relu(matmul(x, w1))
            return mse_loss(matmul(hidden, w2), target)

        loss().backward()
        assert np.allclose(w1.grad, numerical_gradient(loss, w1), atol=1e-5)
        assert np.allclose(w2.grad, numerical_gradient(loss, w2), atol=1e-5)

    def test_mean_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        mean(x).backward()
        assert np.allclose(x.grad, np.full((2, 3), 1.0 / 6.0))
