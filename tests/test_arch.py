"""Tests for accelerator configurations, memory budgets, bandwidth and energy."""

from __future__ import annotations

import pytest

from repro.arch import (
    EDGE_TPU_V1,
    EDGE_TPU_V2,
    EDGE_TPU_V3,
    KIB,
    MIB,
    STUDIED_CONFIGS,
    bandwidth_efficiency,
    energy_parameters_for,
    get_config,
    on_chip_bytes_per_cycle,
    parameter_cache_capacity,
    sustained_bandwidth_bytes_per_second,
)
from repro.errors import InvalidConfigError


class TestTable2Configurations:
    """The presets must reproduce every derived figure of Table 2."""

    def test_peak_tops_match_paper(self):
        assert EDGE_TPU_V1.peak_tops == pytest.approx(26.2, rel=0.01)
        assert EDGE_TPU_V2.peak_tops == pytest.approx(8.73, rel=0.01)
        assert EDGE_TPU_V3.peak_tops == pytest.approx(8.73, rel=0.01)

    def test_pe_counts(self):
        assert EDGE_TPU_V1.num_pes == 16
        assert EDGE_TPU_V2.num_pes == 16
        assert EDGE_TPU_V3.num_pes == 4

    def test_total_core_memory(self):
        assert EDGE_TPU_V1.total_core_memory_bytes == 16 * 4 * 32 * KIB
        assert EDGE_TPU_V2.total_core_memory_bytes == 16 * 1 * 32 * KIB
        assert EDGE_TPU_V3.total_core_memory_bytes == 4 * 8 * 8 * KIB

    def test_total_pe_memory(self):
        assert EDGE_TPU_V1.total_pe_memory_bytes == 16 * 2 * MIB
        assert EDGE_TPU_V2.total_pe_memory_bytes == 16 * 384 * KIB
        assert EDGE_TPU_V3.total_pe_memory_bytes == 4 * 2 * MIB

    def test_clock_and_bandwidth(self):
        assert EDGE_TPU_V1.clock_mhz == 800.0
        assert EDGE_TPU_V2.clock_mhz == EDGE_TPU_V3.clock_mhz == 1066.0
        assert EDGE_TPU_V1.io_bandwidth_gbps == 17.0
        assert EDGE_TPU_V2.io_bandwidth_gbps == EDGE_TPU_V3.io_bandwidth_gbps == 32.0

    def test_macs_per_cycle_consistent_with_peak_tops(self):
        for config in STUDIED_CONFIGS.values():
            derived_tops = 2 * config.macs_per_cycle * config.clock_hz / 1e12
            assert config.peak_tops == pytest.approx(derived_tops)

    def test_get_config_lookup(self):
        assert get_config("v1") is EDGE_TPU_V1
        assert get_config("V3") is EDGE_TPU_V3
        with pytest.raises(InvalidConfigError):
            get_config("V4")


class TestConfigValidationAndOverrides:
    def test_rejects_bad_values(self):
        with pytest.raises(InvalidConfigError):
            EDGE_TPU_V1.with_overrides(clock_mhz=0)
        with pytest.raises(InvalidConfigError):
            EDGE_TPU_V1.with_overrides(pes_x=0)
        with pytest.raises(InvalidConfigError):
            EDGE_TPU_V1.with_overrides(io_bandwidth_gbps=-1)
        with pytest.raises(InvalidConfigError):
            EDGE_TPU_V1.with_overrides(pe_memory_cache_fraction=1.5)

    def test_overrides_produce_new_config(self):
        modified = EDGE_TPU_V1.with_overrides(name="V1-half", pes_x=2)
        assert modified.num_pes == 8
        assert EDGE_TPU_V1.num_pes == 16
        assert modified.peak_tops < EDGE_TPU_V1.peak_tops

    def test_unknown_field_raises_invalid_config_error(self):
        # Regression: used to surface as a bare TypeError from
        # dataclasses.replace instead of the library's exception type.
        with pytest.raises(InvalidConfigError, match="'num_lanes'"):
            EDGE_TPU_V1.with_overrides(num_lanes=32)
        with pytest.raises(InvalidConfigError) as excinfo:
            EDGE_TPU_V1.with_overrides(pes_z=2, clock_ghz=1.0)
        assert "'clock_ghz'" in str(excinfo.value)
        assert "'pes_z'" in str(excinfo.value)
        # Valid overrides alongside an unknown one still fail atomically.
        with pytest.raises(InvalidConfigError):
            EDGE_TPU_V1.with_overrides(pes_x=2, pes_q=2)

    def test_summary_contains_table2_fields(self):
        summary = EDGE_TPU_V2.summary()
        assert summary["peak_tops"] == pytest.approx(8.73, rel=0.01)
        assert summary["io_bandwidth_gbps"] == 32.0
        assert summary["pes"] == "(4, 4)"


class TestBandwidthModel:
    def test_efficiency_increases_with_pes(self):
        assert bandwidth_efficiency(4) < bandwidth_efficiency(16)
        assert bandwidth_efficiency(16) < 1.0

    def test_efficiency_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bandwidth_efficiency(0)

    def test_v2_sustains_more_bandwidth_than_v3(self):
        # Same peak I/O bandwidth, but V2's 16 PEs beat V3's 4 PEs.
        assert sustained_bandwidth_bytes_per_second(
            EDGE_TPU_V2
        ) > sustained_bandwidth_bytes_per_second(EDGE_TPU_V3)

    def test_sustained_below_peak(self):
        for config in STUDIED_CONFIGS.values():
            assert (
                sustained_bandwidth_bytes_per_second(config)
                < config.io_bandwidth_bytes_per_second
            )

    def test_on_chip_bandwidth_scales_with_cores(self):
        assert on_chip_bytes_per_cycle(EDGE_TPU_V1) > on_chip_bytes_per_cycle(EDGE_TPU_V2)
        assert on_chip_bytes_per_cycle(EDGE_TPU_V3) > on_chip_bytes_per_cycle(EDGE_TPU_V2)


class TestMemoryBudget:
    def test_cache_capacity_ordering_matches_on_chip_memory(self):
        budgets = {
            name: parameter_cache_capacity(config, 262_144).parameter_cache_bytes
            for name, config in STUDIED_CONFIGS.items()
        }
        assert budgets["V1"] > budgets["V3"] > budgets["V2"]

    def test_activation_reserve_capped_by_pe_memory(self):
        budget = parameter_cache_capacity(EDGE_TPU_V2, 10 * MIB)
        assert budget.activation_reserve_bytes == EDGE_TPU_V2.total_pe_memory_bytes
        assert budget.parameter_cache_bytes == EDGE_TPU_V2.total_core_memory_bytes

    def test_cache_fraction_zero_leaves_core_memory_only(self):
        config = EDGE_TPU_V1.with_overrides(pe_memory_cache_fraction=0.0)
        budget = parameter_cache_capacity(config, 0)
        assert budget.parameter_cache_bytes == config.total_core_memory_bytes


class TestEnergyParameters:
    def test_v3_energy_model_unavailable(self):
        assert energy_parameters_for(EDGE_TPU_V1).available
        assert energy_parameters_for(EDGE_TPU_V2).available
        assert not energy_parameters_for(EDGE_TPU_V3).available

    def test_static_power_scales_with_compute(self):
        assert (
            energy_parameters_for(EDGE_TPU_V1).static_power_w
            > energy_parameters_for(EDGE_TPU_V2).static_power_w
        )

    def test_coefficients_are_non_negative(self):
        for config in STUDIED_CONFIGS.values():
            params = energy_parameters_for(config)
            assert params.mac_energy_pj > 0
            assert params.dram_byte_energy_pj > params.sram_byte_energy_pj

    def test_custom_config_gets_parameters(self):
        custom = EDGE_TPU_V1.with_overrides(name="custom", pes_x=2)
        params = energy_parameters_for(custom)
        assert params.static_power_w < energy_parameters_for(EDGE_TPU_V1).static_power_w
