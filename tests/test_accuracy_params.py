"""Tests for the surrogate accuracy model and the parameter histogram (Table 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nasbench import (
    BEST_ACCURACY_CELL,
    BEST_ACCURACY_VALUE,
    SECOND_BEST_ACCURACY_CELL,
    SECOND_BEST_ACCURACY_VALUE,
    SurrogateAccuracyModel,
    parameter_distribution,
    random_cell,
    sample_unique_cells,
)
from repro.nasbench.accuracy import FAILED_RUN_ACCURACY, GENERIC_ACCURACY_CEILING


@pytest.fixture(scope="module")
def accuracy_model():
    return SurrogateAccuracyModel()


class TestSurrogateAccuracy:
    def test_named_cells_match_paper_values(self, accuracy_model):
        assert accuracy_model.mean_validation_accuracy(BEST_ACCURACY_CELL) == pytest.approx(
            BEST_ACCURACY_VALUE
        )
        assert accuracy_model.mean_validation_accuracy(
            SECOND_BEST_ACCURACY_CELL
        ) == pytest.approx(SECOND_BEST_ACCURACY_VALUE)

    def test_best_cell_is_global_maximum(self, accuracy_model):
        cells = sample_unique_cells(200, seed=17)
        accuracies = [accuracy_model.mean_validation_accuracy(cell) for cell in cells]
        assert max(accuracies) <= BEST_ACCURACY_VALUE
        assert GENERIC_ACCURACY_CEILING < BEST_ACCURACY_VALUE

    def test_accuracy_is_deterministic(self, accuracy_model):
        cells = sample_unique_cells(20, seed=3)
        first = [accuracy_model.mean_validation_accuracy(cell) for cell in cells]
        second = [accuracy_model.mean_validation_accuracy(cell) for cell in cells]
        assert first == second

    def test_most_models_pass_the_70_percent_filter(self, accuracy_model):
        cells = sample_unique_cells(300, seed=5)
        accuracies = np.array([accuracy_model.mean_validation_accuracy(cell) for cell in cells])
        fraction = (accuracies >= 0.70).mean()
        # Paper: ~98.5% of models clear the filter; the surrogate should be close.
        assert fraction > 0.93
        # ... and the failed runs should sit near the 10% random baseline.
        failed = accuracies[accuracies < 0.70]
        if failed.size:
            assert np.all(failed < 0.15)
            assert np.all(failed >= FAILED_RUN_ACCURACY - 1e-9)

    def test_earlier_epochs_have_lower_accuracy(self, accuracy_model):
        cell = sample_unique_cells(1, seed=11)[0]
        accuracies = [
            accuracy_model.mean_validation_accuracy(cell, epochs=epoch)
            for epoch in (4, 12, 36, 108)
        ]
        if accuracies[-1] > 0.5:  # skip the rare failed-run draw
            assert accuracies == sorted(accuracies)

    def test_unsupported_epoch_rejected(self, accuracy_model):
        cell = sample_unique_cells(1, seed=2)[0]
        with pytest.raises(ValueError):
            accuracy_model.mean_validation_accuracy(cell, epochs=50)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_accuracy_is_bounded(self, accuracy_model, seed):
        cell = random_cell(np.random.default_rng(seed))
        value = accuracy_model.mean_validation_accuracy(cell)
        assert 0.05 <= value <= BEST_ACCURACY_VALUE

    def test_explain_terms_sum_to_final(self, accuracy_model):
        cells = sample_unique_cells(30, seed=8)
        for cell in cells:
            breakdown = accuracy_model.explain(cell)
            if breakdown.failed:
                continue
            total = (
                breakdown.base
                + breakdown.conv3x3_term
                + breakdown.conv1x1_term
                + breakdown.maxpool_term
                + breakdown.depth_term
                + breakdown.width_term
                + breakdown.parameter_term
                + breakdown.noise_term
            )
            clamped = min(max(total, 0.70), GENERIC_ACCURACY_CEILING)
            if breakdown.final not in (BEST_ACCURACY_VALUE, SECOND_BEST_ACCURACY_VALUE):
                assert breakdown.final == pytest.approx(clamped, abs=1e-6)


class TestParameterDistribution:
    def test_counts_sum_to_population(self):
        values = [100, 200, 300, 400, 500, 1000]
        intervals = parameter_distribution(values, num_intervals=4)
        assert sum(interval.count for interval in intervals) == len(values)

    def test_ten_intervals_like_table1(self):
        rng = np.random.default_rng(0)
        values = rng.integers(227_274, 49_979_274, size=500).tolist()
        intervals = parameter_distribution(values, num_intervals=10)
        assert len(intervals) == 10
        assert intervals[0].lower == min(values)
        assert intervals[-1].upper == max(values)
        assert sum(interval.count for interval in intervals) == 500

    def test_explicit_bounds(self):
        intervals = parameter_distribution([10, 20, 90], num_intervals=2, bounds=(0, 100))
        assert intervals[0].count == 2
        assert intervals[1].count == 1

    def test_empty_and_degenerate_inputs(self):
        assert parameter_distribution([]) == []
        single = parameter_distribution([5, 5, 5], num_intervals=3)
        assert len(single) == 1
        assert single[0].count == 3
