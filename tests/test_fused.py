"""Fused compile-and-time kernel: parity with the staged oracle, duals vs FD.

Three layers of guarantees:

* **bit-for-bit parity** — the fused single-pass kernel must reproduce the
  staged per-stage grid pipeline exactly (not to a tolerance) in both
  parameter-caching modes, on a grid including the three mutated designs
  covering the clock / geometry / cache-fraction axes;
* **loop-nest semantics** — the ``@njit(parallel=True)`` loop nest is a
  plain-Python function until numba compiles it, so its semantics are tested
  here without numba (via a jit-capable stub backend whose ``njit`` is the
  identity) and, when numba is installed, through the real compiled kernel;
* **forward-mode sensitivities vs central finite differences** — the clock
  dual against the *real* staged pipeline re-run at perturbed clocks, the
  SRAM dual against the relaxed frozen-plan model it differentiates
  (``sram_scale``), both at 1e-6 relative tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import EDGE_TPU_V1, EDGE_TPU_V2, STUDIED_CONFIGS
from repro.core.backend import ArrayBackend, available_backends
from repro.errors import SimulationError
from repro.nasbench import NASBenchDataset
from repro.nasbench.layer_table import LayerTable
from repro.simulator import GRID_STRATEGIES, BatchSimulator, compile_and_time_table
from repro.simulator.fused import _fused_rows_loop_nest

#: Studied classes plus three mutated designs (clock, geometry, cache axes).
MUTATED_CONFIGS = [
    EDGE_TPU_V1.with_overrides(name="hw-fast-clock", clock_mhz=1250.0),
    EDGE_TPU_V1.with_overrides(name="hw-wide-grid", pes_x=8, pes_y=2, compute_lanes=32),
    EDGE_TPU_V2.with_overrides(
        name="hw-small-cache", pe_memory_cache_fraction=0.25, cores_per_pe=2
    ),
]
PARITY_CONFIGS = list(STUDIED_CONFIGS.values()) + MUTATED_CONFIGS


@pytest.fixture(scope="module")
def fused_dataset():
    return NASBenchDataset.generate(num_models=24, seed=17)


@pytest.fixture(scope="module")
def fused_table(fused_dataset):
    networks = [record.build_network(fused_dataset.network_config) for record in fused_dataset]
    return LayerTable.from_networks(networks)


class _IdentityJitBackend(ArrayBackend):
    """jit-capable backend whose "compiler" is the identity.

    Forces :func:`compile_and_time_table` down the loop-nest branch while
    executing it as plain Python — the loop nest's semantics are then
    testable in environments without numba.
    """

    name = "identity-jit"
    jit = True

    def njit(self, function, parallel: bool = True):
        return function


class TestFusedParity:
    @pytest.mark.parametrize("caching", [True, False])
    def test_fused_matches_staged_bit_for_bit(self, fused_table, caching):
        staged = BatchSimulator(enable_parameter_caching=caching, strategy="staged")
        staged_latency, staged_energy = staged.evaluate_table_grid(fused_table, PARITY_CONFIGS)
        result = compile_and_time_table(
            fused_table, PARITY_CONFIGS, enable_parameter_caching=caching
        )
        np.testing.assert_array_equal(result.latency_ms, staged_latency)
        np.testing.assert_array_equal(result.energy_mj, staged_energy)

    @pytest.mark.parametrize("chunk", [1, 3, 1000])
    def test_chunking_does_not_change_results(self, fused_table, chunk):
        baseline = compile_and_time_table(fused_table, PARITY_CONFIGS)
        chunked = compile_and_time_table(fused_table, PARITY_CONFIGS, config_chunk=chunk)
        np.testing.assert_array_equal(chunked.latency_ms, baseline.latency_ms)
        np.testing.assert_array_equal(chunked.energy_mj, baseline.energy_mj)

    def test_batch_simulator_routes_grid_through_fused_by_default(self, fused_table):
        assert GRID_STRATEGIES == ("fused", "staged")
        fused_sim = BatchSimulator()
        assert fused_sim.strategy == "fused"
        latency, energy = fused_sim.evaluate_table_grid(fused_table, PARITY_CONFIGS)
        result = compile_and_time_table(fused_table, PARITY_CONFIGS)
        np.testing.assert_array_equal(latency, result.latency_ms)
        np.testing.assert_array_equal(energy, result.energy_mj)

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(SimulationError, match="strategy"):
            BatchSimulator(strategy="warp-speed")

    @pytest.mark.parametrize("caching", [True, False])
    def test_loop_nest_plain_python_matches_numpy_path(self, fused_table, caching):
        reference = compile_and_time_table(
            fused_table, PARITY_CONFIGS, enable_parameter_caching=caching
        )
        looped = compile_and_time_table(
            fused_table,
            PARITY_CONFIGS,
            enable_parameter_caching=caching,
            backend=_IdentityJitBackend(),
        )
        np.testing.assert_allclose(
            looped.latency_ms, reference.latency_ms, rtol=1e-9, equal_nan=True
        )
        np.testing.assert_allclose(looped.energy_mj, reference.energy_mj, rtol=1e-9, equal_nan=True)

    @pytest.mark.skipif(
        "numba" not in available_backends(), reason="numba not installed in this environment"
    )
    def test_numba_backend_parity(self, fused_table):
        reference = compile_and_time_table(fused_table, PARITY_CONFIGS, backend="numpy")
        compiled = compile_and_time_table(fused_table, PARITY_CONFIGS, backend="numba")
        np.testing.assert_allclose(
            compiled.latency_ms, reference.latency_ms, rtol=1e-9, equal_nan=True
        )
        np.testing.assert_allclose(
            compiled.energy_mj, reference.energy_mj, rtol=1e-9, equal_nan=True
        )

    def test_loop_nest_is_importable_plain_function(self):
        # The symbol the jit branch compiles must stay a plain function so
        # the identity-jit test above really covers the compiled semantics.
        assert callable(_fused_rows_loop_nest)
        assert getattr(_fused_rows_loop_nest, "__wrapped__", None) is None


class TestSensitivities:
    def test_disabled_by_default(self, fused_table):
        result = compile_and_time_table(fused_table, PARITY_CONFIGS)
        assert result.dlatency_dclock_ghz is None
        assert result.dlatency_dsram_byte is None

    def test_clock_dual_matches_staged_finite_difference(self, fused_table):
        result = compile_and_time_table(fused_table, MUTATED_CONFIGS, sensitivities=True)
        simulator = BatchSimulator(strategy="staged")
        h_mhz = 0.05  # +- 50 kHz around each design's clock
        for index, config in enumerate(MUTATED_CONFIGS):
            plus, _ = simulator.evaluate_table(
                fused_table, config.with_overrides(clock_mhz=config.clock_mhz + h_mhz)
            )
            minus, _ = simulator.evaluate_table(
                fused_table, config.with_overrides(clock_mhz=config.clock_mhz - h_mhz)
            )
            fd = (plus - minus) / (2.0 * h_mhz * 1e-3)  # per GHz
            np.testing.assert_allclose(
                result.dlatency_dclock_ghz[index], fd, rtol=1e-6, atol=1e-9
            )

    @pytest.mark.parametrize("caching", [True, False])
    def test_sram_dual_matches_relaxed_model_finite_difference(self, fused_table, caching):
        result = compile_and_time_table(
            fused_table, MUTATED_CONFIGS, enable_parameter_caching=caching, sensitivities=True
        )
        h = 1e-4
        plus = compile_and_time_table(
            fused_table, MUTATED_CONFIGS, enable_parameter_caching=caching, sram_scale=1.0 + h
        )
        minus = compile_and_time_table(
            fused_table, MUTATED_CONFIGS, enable_parameter_caching=caching, sram_scale=1.0 - h
        )
        fd_per_scale = (plus.latency_ms - minus.latency_ms) / (2.0 * h)
        total_bytes = np.array(
            [config.total_on_chip_memory_bytes for config in MUTATED_CONFIGS], dtype=np.float64
        )
        analytic_per_scale = result.dlatency_dsram_byte * total_bytes[:, None]
        np.testing.assert_allclose(analytic_per_scale, fd_per_scale, rtol=1e-6, atol=1e-12)
        if not caching:
            # With caching disabled the streamed plan is frozen: the relaxed
            # model must report zero SRAM response, not a phantom gradient.
            assert not analytic_per_scale.any()

    def test_clock_dual_is_nonpositive_and_sram_dual_mostly_zero_or_negative(self, fused_table):
        # More clock or more SRAM never makes a frozen-plan design slower.
        result = compile_and_time_table(fused_table, PARITY_CONFIGS, sensitivities=True)
        assert (result.dlatency_dclock_ghz <= 0.0).all()
        assert (result.dlatency_dsram_byte <= 0.0).all()

    def test_frontier_sensitivity_report(self, fused_dataset):
        from repro.hwspace import HardwareFrontier, SensitivityPoint

        frontier = HardwareFrontier(fused_dataset)
        points = frontier.sensitivity_report(MUTATED_CONFIGS)
        assert len(points) == len(MUTATED_CONFIGS)
        summaries = frontier.summarize(MUTATED_CONFIGS)
        for point, summary in zip(points, summaries):
            assert isinstance(point, SensitivityPoint)
            assert point.digest == summary.digest
            assert point.num_models == summary.num_models
            np.testing.assert_allclose(point.mean_latency_ms, summary.mean_latency_ms, rtol=1e-12)
            assert point.mean_dlatency_dclock_ghz <= 0.0
            assert point.mean_dlatency_dsram_mib <= 0.0
            assert 0.0 <= point.sram_sensitive_fraction <= 1.0
