"""Tests for cell-space enumeration and sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.nasbench import (
    MAX_EDGES,
    MAX_VERTICES,
    cell_fingerprint,
    enumerate_cells,
    random_cell,
    sample_unique_cells,
)
from repro.nasbench.famous_cells import BEST_ACCURACY_CELL
from repro.nasbench.generator import count_unique_cells


class TestEnumeration:
    def test_two_vertex_space(self):
        cells = list(enumerate_cells(max_vertices=2))
        # Only the trivial input->output cell exists.
        assert len(cells) == 1
        assert cells[0].num_vertices == 2

    def test_three_vertex_space(self):
        cells = list(enumerate_cells(max_vertices=3))
        # The trivial cell, three chain cells (one per op), and three cells with
        # an extra input->output skip edge alongside the chain.
        assert len(cells) == 7
        assert all(cell.num_vertices <= 3 for cell in cells)

    def test_enumeration_is_deduplicated(self):
        cells = list(enumerate_cells(max_vertices=4))
        fingerprints = [cell_fingerprint(cell) for cell in cells]
        assert len(fingerprints) == len(set(fingerprints))

    def test_enumeration_respects_edge_budget(self):
        for cell in enumerate_cells(max_vertices=4, max_edges=4):
            assert cell.num_edges <= 4

    def test_count_grows_with_vertices(self):
        assert count_unique_cells(2) < count_unique_cells(3) < count_unique_cells(4)

    def test_invalid_limits_rejected(self):
        with pytest.raises(DatasetError):
            list(enumerate_cells(max_vertices=1))
        with pytest.raises(DatasetError):
            list(enumerate_cells(max_vertices=3, max_edges=0))


class TestSampling:
    def test_sample_is_deterministic(self):
        a = sample_unique_cells(25, seed=9)
        b = sample_unique_cells(25, seed=9)
        assert [cell_fingerprint(c) for c in a] == [cell_fingerprint(c) for c in b]

    def test_sample_is_unique(self):
        cells = sample_unique_cells(60, seed=4)
        fingerprints = {cell_fingerprint(cell) for cell in cells}
        assert len(fingerprints) == 60

    def test_sample_includes_extra_cells(self):
        cells = sample_unique_cells(10, seed=1, extra_cells=[BEST_ACCURACY_CELL])
        assert cell_fingerprint(cells[0]) == cell_fingerprint(BEST_ACCURACY_CELL)

    def test_sample_rejects_non_positive_count(self):
        with pytest.raises(DatasetError):
            sample_unique_cells(0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_random_cells_respect_space_limits(self, seed):
        cell = random_cell(np.random.default_rng(seed))
        assert 2 <= cell.num_vertices <= MAX_VERTICES
        assert 1 <= cell.num_edges <= MAX_EDGES
        assert cell.is_valid()
        # random_cell returns pruned cells: pruning again is a no-op.
        assert cell.prune().num_vertices == cell.num_vertices


class TestSamplingFailurePaths:
    def test_random_cell_exhausts_attempts_instead_of_looping(self):
        # With max_vertices=3 every draw needs at least 2 edges (a spanning
        # path), so an edge budget of 1 makes every attempt hit the
        # min_edges > max_usable_edges boundary.  The draw must *skip* those
        # attempts (not loop forever) and raise once the budget is spent.
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError, match="after 40 attempts"):
            random_cell(rng, max_vertices=3, max_edges=1, max_attempts=40)

    def test_random_cell_works_at_the_edge_budget_boundary(self):
        # min_edges == max_usable_edges is the tightest satisfiable budget.
        rng = np.random.default_rng(1)
        cell = random_cell(rng, max_vertices=3, max_edges=2)
        assert cell.num_edges <= 2

    def test_random_cell_zero_attempts_raises(self):
        with pytest.raises(DatasetError):
            random_cell(np.random.default_rng(0), max_attempts=0)

    def test_sample_unique_cells_raises_when_subspace_is_exhausted(self):
        # The 3-vertex sub-space only holds 7 unique models; asking for 50
        # must terminate with DatasetError, not spin forever.
        with pytest.raises(DatasetError, match="unique cells"):
            sample_unique_cells(50, seed=0, max_vertices=3)
