"""Array-backend shim: detection, selection robustness and op parity.

Covers the three contracts of :mod:`repro.core.backend`:

* **selection never breaks a run** — an unset/blank ``REPRO_BACKEND`` means
  numpy silently, a garbage value falls back to numpy with exactly one
  warning, and only *explicit* programmatic requests raise
  :class:`~repro.errors.BackendError`;
* **detection treats broken optionals as absent** — a numba/cupy install
  that raises at import (any exception) or imports as an attribute-less stub
  must disappear from the registry instead of poisoning it;
* **op parity** — every backend op is defined by its numpy semantics; the
  sorted segment-sum fast path and the njit-compatible scatter loop are
  checked bit-for-bit against the ``np.add.at`` reference.
"""

from __future__ import annotations

import types
import warnings

import numpy as np
import pytest

from repro.core import backend as backend_mod
from repro.core.backend import (
    ArrayBackend,
    _detect_backends,
    _probe_module,
    _scatter_add_rows,
    available_backends,
    get_backend,
    set_active_backend,
    use_backend,
)
from repro.errors import BackendError


@pytest.fixture()
def fresh_warning_state(monkeypatch):
    """Reset the warn-once latch so each test observes its own warning."""
    monkeypatch.setattr(backend_mod, "_warned_fallback", False)


class TestSelection:
    def test_numpy_is_always_available_and_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert get_backend("numpy").name == "numpy"

    def test_unset_or_blank_environment_means_numpy_silently(self, monkeypatch):
        for value in (None, "", "   "):
            if value is None:
                monkeypatch.delenv(backend_mod.BACKEND_ENV, raising=False)
            else:
                monkeypatch.setenv(backend_mod.BACKEND_ENV, value)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                backend = backend_mod._resolve_from_environment()
            assert backend.name == "numpy"

    def test_garbage_environment_falls_back_with_single_warning(
        self, monkeypatch, fresh_warning_state
    ):
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "definitely-not-a-backend")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = backend_mod._resolve_from_environment()
            second = backend_mod._resolve_from_environment()
        assert first.name == "numpy"
        assert second.name == "numpy"
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 1
        assert "definitely-not-a-backend" in str(fallback[0].message)

    def test_unavailable_backend_in_environment_never_raises(
        self, monkeypatch, fresh_warning_state
    ):
        # cupy needs a GPU stack; on any machine without it this exercises
        # the requested-but-absent path end to end.
        requested = "cupy" if "cupy" not in available_backends() else "rocm"
        monkeypatch.setenv(backend_mod.BACKEND_ENV, requested)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = backend_mod._resolve_from_environment()
        assert backend.name == "numpy"
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_environment_resolution_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv(backend_mod.BACKEND_ENV, "  NumPy ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert backend_mod._resolve_from_environment().name == "numpy"

    def test_explicit_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="available"):
            get_backend("tpu")

    def test_explicit_missing_optional_backend_raises(self):
        if "numba" in available_backends():
            pytest.skip("numba is installed here; the absent-path is covered elsewhere")
        with pytest.raises(BackendError, match="numba"):
            get_backend("numba")

    def test_get_backend_passthrough_and_default(self):
        instance = ArrayBackend()
        assert get_backend(instance) is instance
        assert get_backend(None) is backend_mod.active_backend()

    def test_use_backend_restores_on_exit_and_error(self):
        before = backend_mod.active_backend()
        with use_backend("numpy") as backend:
            assert backend_mod.active_backend() is backend
        assert backend_mod.active_backend() is before
        with pytest.raises(RuntimeError):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert backend_mod.active_backend() is before

    def test_set_active_backend_roundtrip(self):
        before = backend_mod.active_backend()
        try:
            chosen = set_active_backend("numpy")
            assert backend_mod.active_backend() is chosen
        finally:
            set_active_backend(before)


class TestDetection:
    def test_probe_finds_a_real_module(self):
        import math

        assert _probe_module("math", ("sqrt", "floor")) is math

    def test_import_error_treated_as_absent(self, monkeypatch):
        def broken(name):
            raise ImportError(f"no module named {name}")

        monkeypatch.setattr(backend_mod.importlib, "import_module", broken)
        assert _probe_module("numba", ("njit", "prange")) is None
        assert set(_detect_backends()) == {"numpy"}

    def test_half_installed_module_raising_os_error_treated_as_absent(self, monkeypatch):
        # Broken binary wheels raise all sorts of things at import time —
        # anything, not just ImportError, must read as "absent".
        def broken(name):
            raise OSError(f"{name}: cannot load shared object")

        monkeypatch.setattr(backend_mod.importlib, "import_module", broken)
        assert _probe_module("cupy", ("asarray",)) is None
        assert set(_detect_backends()) == {"numpy"}

    def test_stub_module_missing_attributes_treated_as_absent(self, monkeypatch):
        stub = types.SimpleNamespace(njit=lambda **_: (lambda fn: fn))  # no prange

        monkeypatch.setattr(backend_mod.importlib, "import_module", lambda name: stub)
        assert _probe_module("numba", ("njit", "prange")) is None
        assert set(_detect_backends()) == {"numpy"}


class TestSegmentOps:
    def _reference_segment_sum(self, values, segment_ids, num_segments):
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        np.add.at(out, segment_ids, values)
        return out

    def test_sorted_segment_sum_matches_scatter_reference(self):
        rng = np.random.default_rng(0)
        values = rng.random((200, 3))
        # Sorted ids with empty segments on both ends and in the middle.
        segment_ids = np.sort(rng.integers(1, 9, size=200))
        backend = get_backend("numpy")
        result = backend.segment_sum(values, segment_ids, 11, sorted_ids=True)
        # reduceat reduces each run pairwise where add.at accumulates
        # sequentially: equal to roundoff, not bit-for-bit.
        np.testing.assert_allclose(
            result, self._reference_segment_sum(values, segment_ids, 11), rtol=1e-9
        )
        empty = np.flatnonzero(np.bincount(segment_ids, minlength=11) == 0)
        assert empty.size and not result[empty].any()

    def test_wrong_sorted_hint_still_sums_correctly(self):
        rng = np.random.default_rng(1)
        values = rng.random((64, 2))
        segment_ids = rng.integers(0, 5, size=64)  # NOT sorted
        backend = get_backend("numpy")
        result = backend.segment_sum(values, segment_ids, 5, sorted_ids=True)
        np.testing.assert_allclose(
            result, self._reference_segment_sum(values, segment_ids, 5), rtol=1e-9
        )

    def test_empty_values_give_zero_segments(self):
        backend = get_backend("numpy")
        result = backend.segment_sum(np.empty((0, 4)), np.empty(0, dtype=np.int64), 3)
        assert result.shape == (3, 4)
        assert not result.any()

    def test_scatter_add_matches_inplace_reference(self):
        rng = np.random.default_rng(2)
        values = rng.random((50, 3))
        indices = rng.integers(0, 7, size=50)
        reference = np.zeros((7, 3))
        np.add.at(reference, indices, values)
        target = np.zeros((7, 3))
        get_backend("numpy").scatter_add(target, indices, values)
        np.testing.assert_array_equal(target, reference)

    def test_plain_python_scatter_loop_matches_numpy(self):
        # The numba kernel body must be correct when run as plain Python —
        # that is how environments without numba exercise its semantics.
        rng = np.random.default_rng(3)
        values = rng.random((40, 2))
        indices = rng.integers(0, 6, size=40)
        reference = np.zeros((6, 2))
        np.add.at(reference, indices, values)
        target = np.zeros((6, 2))
        _scatter_add_rows(target, indices, values)
        np.testing.assert_array_equal(target, reference)

    def test_take_gathers_rows(self):
        values = np.arange(12.0).reshape(6, 2)
        indices = np.array([5, 0, 0, 3])
        np.testing.assert_array_equal(get_backend("numpy").take(values, indices), values[indices])

    @pytest.mark.skipif(
        "numba" not in available_backends(), reason="numba not installed in this environment"
    )
    def test_numba_segment_ops_match_numpy(self):
        rng = np.random.default_rng(4)
        values = rng.random((128, 3))
        segment_ids = rng.integers(0, 9, size=128)
        numba_backend = get_backend("numba")
        numpy_backend = get_backend("numpy")
        np.testing.assert_allclose(
            numba_backend.segment_sum(values, segment_ids, 9),
            numpy_backend.segment_sum(values, segment_ids, 9),
            rtol=1e-9,
        )
        target_numba = np.zeros((9, 3))
        target_numpy = np.zeros((9, 3))
        numba_backend.scatter_add(target_numba, segment_ids, values)
        numpy_backend.scatter_add(target_numpy, segment_ids, values)
        np.testing.assert_allclose(target_numba, target_numpy, rtol=1e-9)
