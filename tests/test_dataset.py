"""Tests for the NASBenchDataset container."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.nasbench import (
    BEST_ACCURACY_CELL,
    NASBenchDataset,
    NetworkConfig,
    sample_unique_cells,
)


class TestGeneration:
    def test_generate_has_requested_size(self, dataset):
        assert len(dataset) == 150

    def test_records_are_unique(self, dataset):
        fingerprints = {record.fingerprint for record in dataset}
        assert len(fingerprints) == len(dataset)

    def test_indices_are_consecutive(self, dataset):
        assert [record.index for record in dataset] == list(range(len(dataset)))

    def test_famous_cells_included_by_default(self, dataset):
        assert BEST_ACCURACY_CELL in dataset
        record = dataset.find_cell(BEST_ACCURACY_CELL)
        assert record.mean_validation_accuracy == pytest.approx(0.95055)

    def test_generation_is_deterministic(self):
        a = NASBenchDataset.generate(num_models=30, seed=5)
        b = NASBenchDataset.generate(num_models=30, seed=5)
        assert [r.fingerprint for r in a] == [r.fingerprint for r in b]

    def test_from_cells_deduplicates(self):
        cells = sample_unique_cells(10, seed=1)
        dataset = NASBenchDataset.from_cells(cells + cells)
        assert len(dataset) == 10

    def test_enumerate_small_space(self):
        dataset = NASBenchDataset.enumerate(max_vertices=3)
        assert len(dataset) == 7

    def test_empty_input_rejected(self):
        with pytest.raises(DatasetError):
            NASBenchDataset.from_cells([])


class TestQueries:
    def test_find_unknown_fingerprint_raises(self, dataset):
        with pytest.raises(DatasetError):
            dataset.find("not-a-fingerprint")

    def test_filter_by_accuracy(self, dataset):
        filtered = dataset.filter_by_accuracy(0.70)
        assert len(filtered) <= len(dataset)
        assert all(r.mean_validation_accuracy >= 0.70 for r in filtered)
        # The filtered dataset keeps the original records (and indices).
        assert filtered[0].index == dataset[filtered[0].index].index

    def test_filter_that_removes_everything_raises(self, dataset):
        with pytest.raises(DatasetError):
            dataset.filter(lambda record: False)

    def test_top_k_by_accuracy_is_sorted(self, dataset):
        top = dataset.top_k_by_accuracy(5)
        accuracies = [record.mean_validation_accuracy for record in top]
        assert accuracies == sorted(accuracies, reverse=True)
        assert top[0].mean_validation_accuracy == pytest.approx(0.95055)

    def test_group_by_depth(self, dataset):
        groups = dataset.group_by(lambda record: record.metrics.depth)
        assert sum(len(records) for records in groups.values()) == len(dataset)
        assert all(depth >= 1 for depth in groups)

    def test_arrays_are_aligned(self, dataset):
        accuracies = dataset.accuracies()
        parameters = dataset.parameter_counts()
        assert len(accuracies) == len(parameters) == len(dataset)
        assert parameters.min() > 0

    def test_record_builds_network_with_dataset_config(self, dataset):
        record = dataset[0]
        network = record.build_network(dataset.network_config)
        assert network.trainable_parameters == record.trainable_parameters

    def test_custom_network_config_changes_parameters(self):
        cells = sample_unique_cells(5, seed=2)
        small = NASBenchDataset.from_cells(cells, network_config=NetworkConfig(stem_channels=64))
        large = NASBenchDataset.from_cells(cells, network_config=NetworkConfig(stem_channels=128))
        assert small.parameter_counts().sum() < large.parameter_counts().sum()
