"""Equivalence tests: vectorized batch engine vs the scalar simulator.

The batch engine must reproduce the scalar :class:`PerformanceSimulator`
results within 1e-9 relative tolerance (in practice the only difference is
the float reduction order of per-layer sums) across all three studied
configurations, with and without parameter caching, including the model
input/output DRAM extras charged to the first and last layer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import STUDIED_CONFIGS
from repro.compiler import compile_layer_table, compile_model, plan_parameter_cache
from repro.errors import CompilationError, SimulationError
from repro.nasbench import (
    LayerSpec,
    LayerTable,
    NASBenchDataset,
    build_network,
    random_cell,
)
from repro.simulator import BatchSimulator, PerformanceSimulator, evaluate_dataset

RTOL = 1e-9
CONFIG_NAMES = ("V1", "V2", "V3")


@pytest.fixture(scope="module")
def population():
    """A 200-model random population (fresh seed, distinct from conftest's)."""
    return NASBenchDataset.generate(num_models=200, seed=20220902)


def scalar_sweep(dataset, enable_caching):
    return evaluate_dataset(dataset, enable_parameter_caching=enable_caching, strategy="scalar")


class TestLayerTable:
    def test_matches_layer_spec_properties(self, population):
        network = population[0].build_network(population.network_config)
        table = network.to_layer_table()
        assert table.num_models == 1
        assert table.num_layers == len(network.layers)
        for row, layer in enumerate(network.layers):
            assert table.output_height[row] == layer.output_height
            assert table.output_width[row] == layer.output_width
            assert table.macs[row] == layer.macs
            assert table.weight_bytes[row] == layer.weight_bytes
            assert table.input_activation_bytes[row] == layer.input_activation_bytes
            assert table.output_activation_bytes[row] == layer.output_activation_bytes
            assert table.is_mac[row] == (layer.kind in ("conv", "projection", "dense"))

    def test_unsupported_kind_rejected(self):
        spec = LayerSpec(
            name="bad/avgpool",
            kind="avgpool",
            input_height=8,
            input_width=8,
            in_channels=16,
            out_channels=16,
        )
        with pytest.raises(CompilationError, match="avgpool"):
            LayerTable.from_specs((spec,))

    def test_non_positive_channels_rejected(self):
        spec = LayerSpec(
            name="bad/conv",
            kind="conv",
            input_height=8,
            input_width=8,
            in_channels=0,
            out_channels=16,
        )
        with pytest.raises(CompilationError, match="non-positive channel counts"):
            LayerTable.from_specs((spec,))

    def test_from_networks_segments(self, population):
        networks = [
            record.build_network(population.network_config)
            for record in population.records[:5]
        ]
        table = LayerTable.from_networks(networks)
        assert table.num_models == 5
        assert list(np.diff(table.model_offsets)) == [len(n.layers) for n in networks]
        # Segment reductions line up with per-network totals.
        np.testing.assert_array_equal(
            table.segment_sum(table.macs), [n.total_macs for n in networks]
        )
        np.testing.assert_array_equal(
            table.segment_sum(table.weight_bytes),
            [n.total_weight_bytes for n in networks],
        )


class TestCompiledTableEquivalence:
    @pytest.mark.parametrize("enable_caching", [True, False])
    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    def test_cache_plan_matches_scalar(self, population, config_name, enable_caching):
        config = STUDIED_CONFIGS[config_name]
        networks = [
            record.build_network(population.network_config)
            for record in population.records[:25]
        ]
        table = LayerTable.from_networks(networks)
        compiled = compile_layer_table(table, config, enable_parameter_caching=enable_caching)
        for index, network in enumerate(networks):
            plan = plan_parameter_cache(network.layers, config, enable_caching=enable_caching)
            rows = table.model_slice(index)
            assert compiled.cache.capacity_bytes[index] == plan.capacity_bytes
            assert compiled.cache.effective_capacity_bytes[index] == plan.effective_capacity_bytes
            assert compiled.cache.total_weight_bytes[index] == plan.total_weight_bytes
            assert compiled.cache.cached_bytes[index] == plan.cached_bytes
            streamed = compiled.cache.streamed_bytes[rows]
            for layer, layer_streamed in zip(network.layers, streamed):
                assert layer_streamed == plan.streamed_bytes_by_layer.get(layer.name, 0)

    @pytest.mark.parametrize("config_name", CONFIG_NAMES)
    def test_mapping_matches_scalar_compile(self, population, config_name):
        config = STUDIED_CONFIGS[config_name]
        network = population[3].build_network(population.network_config)
        compiled_scalar = compile_model(network, config)
        compiled_table = compile_layer_table(network.to_layer_table(), config)
        for row, layer in enumerate(compiled_scalar.layers):
            assert compiled_table.mapping.row(row) == layer.mapping
            assert compiled_table.streamed_weight_bytes[row] == layer.streamed_weight_bytes
            assert compiled_table.cached_weight_bytes[row] == layer.cached_weight_bytes


class TestBatchSimulatorEquivalence:
    @pytest.mark.parametrize("enable_caching", [True, False])
    def test_population_sweep_matches_scalar(self, population, enable_caching):
        scalar = scalar_sweep(population, enable_caching)
        batch = BatchSimulator(enable_parameter_caching=enable_caching).evaluate(population)
        for name in CONFIG_NAMES:
            np.testing.assert_allclose(batch.latencies(name), scalar.latencies(name), rtol=RTOL)
            np.testing.assert_allclose(
                batch.energies(name), scalar.energies(name), rtol=RTOL, equal_nan=True
            )

    def test_v3_energy_unavailable(self, population):
        batch = BatchSimulator().evaluate(population)
        assert not batch.has_energy("V3")
        assert batch.has_energy("V1") and batch.has_energy("V2")

    def test_first_and_last_layer_io_extras_are_charged(self, population):
        """Single-model check that the model I/O DRAM extras are included."""
        network = population[7].build_network(population.network_config)
        for name in CONFIG_NAMES:
            config = STUDIED_CONFIGS[name]
            scalar = PerformanceSimulator(config).simulate(network)
            latency, energy = BatchSimulator().evaluate_networks([network], config)
            assert latency[0] == pytest.approx(scalar.latency_ms, rel=RTOL)
            if scalar.energy_mj is None:
                assert np.isnan(energy[0])
            else:
                assert energy[0] == pytest.approx(scalar.energy_mj, rel=RTOL)

    def test_n_jobs_sharding_is_exact(self, population):
        single = BatchSimulator().evaluate(population)
        sharded = BatchSimulator().evaluate(population, n_jobs=2)
        for name in CONFIG_NAMES:
            np.testing.assert_array_equal(sharded.latencies(name), single.latencies(name))
            np.testing.assert_array_equal(sharded.energies(name), single.energies(name))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_cells_property(self, seed):
        """Property-style: any sampled cell times identically on both paths."""
        network = build_network(random_cell(np.random.default_rng(seed)))
        table = network.to_layer_table()
        for name in CONFIG_NAMES:
            config = STUDIED_CONFIGS[name]
            scalar = PerformanceSimulator(config).simulate(network)
            latency, energy = BatchSimulator().evaluate_table(table, config)
            assert latency[0] == pytest.approx(scalar.latency_ms, rel=RTOL)
            if scalar.energy_mj is not None:
                assert energy[0] == pytest.approx(scalar.energy_mj, rel=RTOL)


class TestFacade:
    def test_default_strategy_matches_scalar(self, population):
        fast = evaluate_dataset(population)
        slow = scalar_sweep(population, True)
        for name in CONFIG_NAMES:
            np.testing.assert_allclose(fast.latencies(name), slow.latencies(name), rtol=RTOL)

    def test_unknown_strategy_rejected(self, population):
        with pytest.raises(SimulationError):
            evaluate_dataset(population, strategy="warp-speed")

    def test_empty_dataset_yields_empty_measurements(self, population):
        empty = NASBenchDataset((), population.network_config)
        measurements = evaluate_dataset(empty)
        assert measurements.config_names == list(CONFIG_NAMES)
        for name in CONFIG_NAMES:
            assert measurements.latencies(name).shape == (0,)

    def test_progress_callback_reports_each_config(self, population):
        seen = []
        evaluate_dataset(
            population,
            progress_callback=lambda name, done, total: seen.append((name, done, total)),
        )
        assert seen == [(name, len(population), len(population)) for name in CONFIG_NAMES]
