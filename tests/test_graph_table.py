"""Equivalence tests: pack-once GraphTable vs the legacy per-list path.

The packed representation must be a pure re-arrangement of the legacy one:
slicing the table produces bit-for-bit the arrays ``batch_graphs`` builds
from the corresponding Python list, and training/prediction through the
packed path reproduces the legacy list-batching path exactly (same losses,
same weights, same predictions) given the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EncodeProcessDecode,
    GraphTable,
    LearnedPerformanceModel,
    TrainingSettings,
    as_graph_table,
    batch_graphs,
    featurize_cells,
    train_model,
)
from repro.core.trainer import evaluate_loss, predict
from repro.errors import ModelError
from repro.nasbench import sample_unique_cells


@pytest.fixture(scope="module")
def cells():
    return sample_unique_cells(60, seed=77)


@pytest.fixture(scope="module")
def graphs(cells):
    return featurize_cells(cells)


@pytest.fixture(scope="module")
def table(graphs):
    return GraphTable.from_graphs(graphs)


def assert_batches_equal(packed, legacy):
    assert packed.num_graphs == legacy.num_graphs
    for name in ("senders", "receivers", "node_graph_ids", "edge_graph_ids"):
        assert np.array_equal(getattr(packed, name), getattr(legacy, name)), name
    for name in ("nodes", "edges", "globals_"):
        assert np.array_equal(getattr(packed, name).data, getattr(legacy, name).data), name


class TestPacking:
    def test_table_shape_accounting(self, table, graphs):
        assert table.num_graphs == len(graphs)
        assert table.num_nodes == sum(graph.num_nodes for graph in graphs)
        assert table.num_edges == sum(graph.num_edges for graph in graphs)
        assert len(table) == len(graphs)
        assert np.array_equal(table.node_counts, [graph.num_nodes for graph in graphs])

    def test_from_cells_matches_featurize_then_pack(self, cells, table):
        direct = GraphTable.from_cells(cells)
        assert np.array_equal(direct.nodes, table.nodes)
        assert np.array_equal(direct.senders, table.senders)
        assert np.array_equal(direct.node_offsets, table.node_offsets)

    def test_to_batched_matches_batch_graphs(self, table, graphs):
        assert_batches_equal(table.to_batched(), batch_graphs(graphs))

    def test_empty_table_rejected(self):
        with pytest.raises(ModelError):
            GraphTable.from_graphs([])

    def test_as_graph_table_is_idempotent(self, table, graphs):
        assert as_graph_table(table) is table
        packed = as_graph_table(graphs)
        assert np.array_equal(packed.nodes, table.nodes)


class TestSlicing:
    @pytest.mark.parametrize(
        "indices",
        [
            [0],
            [5, 2, 9],
            [3, 3, 3],
            list(range(60)),
            [59, 0, 31, 31, 7],
        ],
    )
    def test_slice_matches_legacy_batching(self, table, graphs, indices):
        packed = table.slice_batch(np.asarray(indices))
        legacy = batch_graphs([graphs[i] for i in indices])
        assert_batches_equal(packed, legacy)

    def test_random_slices_match_legacy_batching(self, table, graphs):
        rng = np.random.default_rng(5)
        for _ in range(10):
            indices = rng.integers(0, len(graphs), size=rng.integers(1, 40))
            assert_batches_equal(
                table.slice_batch(indices),
                batch_graphs([graphs[i] for i in indices]),
            )

    def test_subset_matches_repacking(self, table, graphs):
        indices = np.array([4, 40, 11, 4])
        subset = table.subset(indices)
        expected = GraphTable.from_graphs([graphs[i] for i in indices])
        assert np.array_equal(subset.nodes, expected.nodes)
        assert np.array_equal(subset.senders, expected.senders)
        assert np.array_equal(subset.edge_offsets, expected.edge_offsets)

    def test_out_of_range_indices_rejected(self, table):
        with pytest.raises(ModelError):
            table.slice_batch([table.num_graphs])
        with pytest.raises(ModelError):
            table.slice_batch([-1])
        with pytest.raises(ModelError):
            table.slice_batch([])


class TestTrainingEquivalence:
    def test_packed_training_is_bit_for_bit_legacy(self, table, graphs):
        targets = np.linspace(-1.2, 1.2, len(graphs))
        packed_model = EncodeProcessDecode(seed=4)
        legacy_model = EncodeProcessDecode(seed=4)

        packed_history = train_model(
            packed_model, table, targets, epochs=4, batch_size=16, seed=1,
            strategy="packed",
        )
        legacy_history = train_model(
            legacy_model, graphs, targets, epochs=4, batch_size=16, seed=1,
            strategy="list",
        )

        assert packed_history.train_losses == legacy_history.train_losses
        for packed_param, legacy_param in zip(packed_model.parameters(), legacy_model.parameters()):
            assert np.array_equal(packed_param.data, legacy_param.data)
        assert np.array_equal(predict(packed_model, table), predict(legacy_model, graphs))

    def test_validation_losses_match(self, table, graphs):
        targets = np.linspace(0.5, -0.5, len(graphs))
        packed_model = EncodeProcessDecode(seed=2)
        legacy_model = EncodeProcessDecode(seed=2)
        train_indices = np.arange(40)
        val_indices = np.arange(40, 60)

        packed_history = train_model(
            packed_model,
            table.subset(train_indices),
            targets[train_indices],
            table.subset(val_indices),
            targets[val_indices],
            epochs=2,
            seed=0,
        )
        legacy_history = train_model(
            legacy_model,
            [graphs[i] for i in train_indices],
            targets[train_indices],
            [graphs[i] for i in val_indices],
            targets[val_indices],
            epochs=2,
            seed=0,
            strategy="list",
        )
        assert packed_history.validation_losses == legacy_history.validation_losses

    def test_list_strategy_rejects_table_input(self, table):
        targets = np.zeros(table.num_graphs)
        with pytest.raises(ModelError):
            train_model(EncodeProcessDecode(seed=0), table, targets, epochs=1, strategy="list")
        with pytest.raises(ModelError):
            train_model(EncodeProcessDecode(seed=0), table, targets, epochs=1, strategy="nope")


class TestInference:
    def test_single_pass_matches_chunked(self, table, graphs):
        model = EncodeProcessDecode(seed=9)
        single = predict(model, table)
        chunked = predict(model, graphs, batch_size=7)
        assert single.shape == (len(graphs),)
        np.testing.assert_allclose(single, chunked, rtol=1e-9, atol=1e-12)

    def test_evaluate_loss_matches_legacy_chunking(self, table, graphs):
        model = EncodeProcessDecode(seed=3)
        targets = np.linspace(0.0, 1.0, len(graphs))
        assert evaluate_loss(model, table, targets, batch_size=16) == pytest.approx(
            evaluate_loss(model, graphs, targets, batch_size=16), rel=1e-12
        )


class TestPredictorEquivalence:
    def test_fit_table_matches_fit_cells(self, cells):
        targets = np.array([0.3 + 0.4 * cell.op_count("conv3x3-bn-relu") for cell in cells])
        settings = TrainingSettings(epochs=3, seed=0)
        by_cells = LearnedPerformanceModel("V1", settings)
        by_cells.fit(cells, targets)
        by_table = LearnedPerformanceModel("V1", settings)
        by_table.fit_table(GraphTable.from_cells(cells), targets)

        assert by_cells.history.train_losses == by_table.history.train_losses
        assert by_cells.evaluate("test") == by_table.evaluate("test")
        assert np.array_equal(by_cells.predict_cells(cells[:8]), by_table.predict_cells(cells[:8]))

    def test_state_round_trip_preserves_reports(self, cells):
        targets = np.array([1.0 + cell.num_edges for cell in cells], dtype=float)
        settings = TrainingSettings(epochs=3, seed=1)
        model = LearnedPerformanceModel("V2", settings)
        model.fit(cells, targets)
        state = model.export_state()

        restored = LearnedPerformanceModel("V2", settings)
        restored.restore_state(GraphTable.from_cells(cells), state)
        assert restored.evaluate("test") == model.evaluate("test")
        assert np.array_equal(restored.predict_cells(cells[:5]), model.predict_cells(cells[:5]))
        assert restored.history.train_losses == model.history.train_losses

    def test_predict_empty_cell_list_returns_empty(self, cells):
        model = LearnedPerformanceModel("V1", TrainingSettings(epochs=1, seed=0))
        model.fit(cells, np.linspace(1.0, 2.0, len(cells)))
        assert model.predict_cells([]).shape == (0,)

    def test_restore_rejects_mismatched_population(self, cells):
        settings = TrainingSettings(epochs=2, seed=0)
        model = LearnedPerformanceModel("V1", settings)
        model.fit(cells, np.linspace(1.0, 2.0, len(cells)))
        state = model.export_state()
        other = LearnedPerformanceModel("V1", settings)
        # Wrong size ...
        with pytest.raises(ModelError):
            other.restore_state(GraphTable.from_cells(cells[:10]), state)
        # ... and same size but different cells (feature digest mismatch).
        different = sample_unique_cells(2 * len(cells), seed=123)[len(cells):]
        with pytest.raises(ModelError, match="digest"):
            other.restore_state(GraphTable.from_cells(different), state)
