"""Tests for graph feature encoding, batching, GN blocks and the full model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EncodeProcessDecode,
    batch_graphs,
    cell_to_graph,
)
from repro.core.graph_net import GraphNetBlock, IndependentBlock
from repro.core.layers import MLP, LayerNorm, Linear, truncated_normal
from repro.errors import ModelError
from repro.nasbench import (
    BEST_ACCURACY_CELL,
    CONV1X1,
    CONV3X3,
    Cell,
    INPUT,
    MAXPOOL3X3,
    OUTPUT,
    sample_unique_cells,
)


class TestFeatures:
    def test_node_feature_encoding_follows_figure4(self):
        cell = Cell(
            [
                [0, 1, 1, 1, 0],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 0],
            ],
            [INPUT, CONV3X3, MAXPOOL3X3, CONV1X1, OUTPUT],
        )
        graph = cell_to_graph(cell)
        assert graph.nodes.reshape(-1).tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert np.all(graph.edges == 1.0)
        assert graph.globals_.shape == (1, 1) and graph.globals_[0, 0] == 1.0

    def test_edges_match_cell(self):
        graph = cell_to_graph(BEST_ACCURACY_CELL)
        assert graph.num_edges == BEST_ACCURACY_CELL.num_edges
        assert graph.num_nodes == BEST_ACCURACY_CELL.num_vertices
        assert np.all(graph.senders < graph.receivers)  # upper-triangular DAG

    def test_graph_uses_pruned_cell(self):
        # A dangling vertex disappears from the graph encoding.
        cell = Cell(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
                [0, 0, 0, 0],
            ],
            [INPUT, CONV3X3, CONV1X1, OUTPUT],
        )
        assert cell_to_graph(cell).num_nodes == 3


class TestBatching:
    def test_batch_offsets_are_applied(self):
        cells = sample_unique_cells(5, seed=0)
        graphs = [cell_to_graph(cell) for cell in cells]
        batched = batch_graphs(graphs)
        assert batched.num_graphs == 5
        assert batched.nodes.shape[0] == sum(graph.num_nodes for graph in graphs)
        assert batched.edges.shape[0] == sum(graph.num_edges for graph in graphs)
        # Sender indices of the second graph start after the first graph's nodes.
        first_nodes = graphs[0].num_nodes
        second_slice = slice(graphs[0].num_edges, graphs[0].num_edges + graphs[1].num_edges)
        assert batched.senders[second_slice].min() >= first_nodes

    def test_graph_ids_partition_rows(self):
        graphs = [cell_to_graph(cell) for cell in sample_unique_cells(3, seed=1)]
        batched = batch_graphs(graphs)
        for index, graph in enumerate(graphs):
            assert int((batched.node_graph_ids == index).sum()) == graph.num_nodes
            assert int((batched.edge_graph_ids == index).sum()) == graph.num_edges

    def test_empty_batch_rejected(self):
        with pytest.raises(ModelError):
            batch_graphs([])


class TestLayers:
    def test_linear_shapes(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 8, rng)
        from repro.core.autodiff import Tensor

        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 8)

    def test_truncated_normal_bounds(self):
        rng = np.random.default_rng(0)
        samples = truncated_normal(rng, (1000,), stddev=0.5)
        assert np.all(np.abs(samples) <= 1.0 + 1e-12)

    def test_mlp_parameter_count(self):
        rng = np.random.default_rng(0)
        mlp = MLP(4, 16, 16, rng, use_layer_norm=True)
        # (4*16 + 16) + (16*16 + 16) + (16 + 16) layer norm
        assert mlp.num_parameters() == 4 * 16 + 16 + 16 * 16 + 16 + 32

    def test_module_zero_grad(self):
        rng = np.random.default_rng(0)
        layer = Linear(2, 2, rng)
        from repro.core.autodiff import Tensor, tensor_sum

        tensor_sum(layer(Tensor(np.ones((1, 2))))).backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_layer_norm_module_shapes(self):
        norm = LayerNorm(6)
        from repro.core.autodiff import Tensor

        out = norm(Tensor(np.random.default_rng(1).normal(size=(3, 6))))
        assert out.shape == (3, 6)


class TestBlocks:
    def test_independent_block_preserves_structure(self):
        rng = np.random.default_rng(0)
        graphs = batch_graphs([cell_to_graph(c) for c in sample_unique_cells(3, seed=2)])
        block = IndependentBlock((1, 8), (1, 8), (1, 8), hidden_size=8, rng=rng)
        out = block(graphs)
        assert out.nodes.shape == (graphs.nodes.shape[0], 8)
        assert out.edges.shape == (graphs.edges.shape[0], 8)
        assert out.globals_.shape == (3, 8)
        assert out.senders is graphs.senders

    def test_graph_net_block_output_shapes(self):
        rng = np.random.default_rng(0)
        graphs = batch_graphs([cell_to_graph(c) for c in sample_unique_cells(4, seed=3)])
        encoder = IndependentBlock((1, 8), (1, 8), (1, 8), hidden_size=8, rng=rng)
        block = GraphNetBlock(8, 8, 8, latent_size=8, hidden_size=8, rng=rng)
        out = block(encoder(graphs))
        assert out.nodes.shape[1] == 8
        assert out.edges.shape[1] == 8
        assert out.globals_.shape == (4, 8)

    def test_message_passing_is_permutation_insensitive(self):
        """Isomorphic cells produce identical predictions."""
        from repro.nasbench import permute_cell

        cell = Cell(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
            ],
            [INPUT, CONV3X3, MAXPOOL3X3, OUTPUT],
        )
        permuted = permute_cell(cell, [0, 2, 1, 3])
        model = EncodeProcessDecode(seed=0)
        a = model.predict(batch_graphs([cell_to_graph(cell)]))
        b = model.predict(batch_graphs([cell_to_graph(permuted)]))
        assert a == pytest.approx(b)


class TestEncodeProcessDecode:
    def test_returns_one_prediction_per_step(self):
        model = EncodeProcessDecode(num_message_passing_steps=4, seed=0)
        graphs = batch_graphs([cell_to_graph(c) for c in sample_unique_cells(6, seed=4)])
        predictions = model(graphs)
        assert len(predictions) == 4
        assert all(p.shape == (6, 1) for p in predictions)

    def test_invalid_step_count_rejected(self):
        with pytest.raises(ModelError):
            EncodeProcessDecode(num_message_passing_steps=0)

    def test_different_graphs_get_different_predictions(self):
        model = EncodeProcessDecode(seed=0)
        cells = sample_unique_cells(8, seed=5)
        predictions = model.predict(batch_graphs([cell_to_graph(c) for c in cells]))
        assert len(np.unique(np.round(predictions, 10))) > 1

    def test_prediction_is_batch_invariant(self):
        model = EncodeProcessDecode(seed=0)
        cells = sample_unique_cells(5, seed=6)
        graphs = [cell_to_graph(c) for c in cells]
        together = model.predict(batch_graphs(graphs))
        separate = np.array([model.predict(batch_graphs([g]))[0] for g in graphs])
        assert np.allclose(together, separate, atol=1e-9)
