"""Tests for macro architecture spaces: specs, mutations, search, plumbing.

The acceptance anchors: a single-cell ``MacroSpec`` must be bit-for-bit
identical to the legacy ``build_network`` expansion (layers, parameters,
latency and energy, in both caching modes) for every famous cell; the
``NetworkConfig`` validator must name the offending field; macro evolution
must beat macro random sampling at an equal simulation budget on the pinned
seed; and macro records must flow through datasets, archives and the
co-search exactly like cells do.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import ParetoArchive
from repro.arch import get_config
from repro.errors import DatasetError, InvalidCellError, SearchError
from repro.hwspace import AcceleratorSpace, CoSearchEngine, CoSearchSpec
from repro.nasbench import (
    CONV1X1,
    CONV3X3,
    FAMOUS_CELLS,
    INPUT,
    MAX_STAGE_DEPTH,
    MAX_STAGES,
    MAXPOOL3X3,
    OUTPUT,
    WIDTH_MULTIPLIERS,
    Cell,
    MacroSpec,
    NASBenchDataset,
    NetworkConfig,
    StageSpec,
    architecture_from_dict,
    architecture_to_dict,
    build_network,
    expand_architecture,
    mutate_macro,
    mutate_macro_unique,
    random_cell,
    random_macro,
)
from repro.search import SearchEngine, SearchSpec
from repro.simulator import BatchSimulator

CELL_A = Cell(
    [[0, 1, 1, 0], [0, 0, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0]],
    [INPUT, CONV3X3, CONV1X1, OUTPUT],
)
CELL_B = Cell(
    [[0, 1, 0, 1], [0, 0, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0]],
    [INPUT, MAXPOOL3X3, CONV3X3, OUTPUT],
)


def two_stage_macro() -> MacroSpec:
    return MacroSpec(
        (
            StageSpec(CELL_A, depth=2, width_multiplier=1.0),
            StageSpec(CELL_B, depth=1, width_multiplier=2.0),
        )
    )


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
class TestStageSpecValidation:
    def test_depth_bounds(self):
        with pytest.raises(InvalidCellError, match="depth"):
            StageSpec(CELL_A, depth=0)
        with pytest.raises(InvalidCellError, match="depth"):
            StageSpec(CELL_A, depth=MAX_STAGE_DEPTH + 1)
        with pytest.raises(InvalidCellError, match="depth"):
            StageSpec(CELL_A, depth=True)

    def test_multiplier_bounds(self):
        with pytest.raises(InvalidCellError, match="width_multiplier"):
            StageSpec(CELL_A, width_multiplier=0.0)
        with pytest.raises(InvalidCellError, match="width_multiplier"):
            StageSpec(CELL_A, width_multiplier=-1.5)
        with pytest.raises(InvalidCellError, match="width_multiplier"):
            StageSpec(CELL_A, width_multiplier=float("nan"))


class TestMacroSpecValidation:
    def test_needs_at_least_one_stage(self):
        with pytest.raises(InvalidCellError, match="stage"):
            MacroSpec(())

    def test_stage_count_cap(self):
        stages = tuple(StageSpec(CELL_A) for _ in range(MAX_STAGES + 1))
        with pytest.raises(InvalidCellError, match="stages"):
            MacroSpec(stages, image_size=1024)

    def test_image_size_must_survive_downsampling(self):
        stages = tuple(StageSpec(CELL_A) for _ in range(4))
        with pytest.raises(InvalidCellError, match="image size"):
            MacroSpec(stages, image_size=4)

    def test_named_field_errors(self):
        for field_name in ("stem_channels", "image_size", "image_channels", "num_classes"):
            with pytest.raises(InvalidCellError, match=field_name):
                MacroSpec((StageSpec(CELL_A),), **{field_name: 0})


class TestNetworkConfigValidation:
    """Satellite regression: every non-positive field is named in the error."""

    FIELDS = (
        "stem_channels",
        "num_stacks",
        "cells_per_stack",
        "image_size",
        "image_channels",
        "num_classes",
    )

    @pytest.mark.parametrize("field_name", FIELDS)
    def test_non_positive_is_rejected_by_name(self, field_name):
        with pytest.raises(InvalidCellError, match=field_name):
            NetworkConfig(**{field_name: 0})
        with pytest.raises(InvalidCellError, match=field_name):
            NetworkConfig(**{field_name: -3})

    @pytest.mark.parametrize("field_name", FIELDS)
    def test_non_integer_is_rejected_by_name(self, field_name):
        with pytest.raises(InvalidCellError, match=field_name):
            NetworkConfig(**{field_name: 1.5})


# --------------------------------------------------------------------------- #
# Fingerprints and identity
# --------------------------------------------------------------------------- #
class TestMacroFingerprint:
    def test_isomorphic_stage_cells_share_a_fingerprint(self):
        # A dangling vertex prunes away, so both forms are the same model.
        dangling = Cell(
            [[0, 1, 1, 0], [0, 0, 0, 1], [0, 0, 0, 0], [0, 0, 0, 0]],
            [INPUT, CONV3X3, CONV1X1, OUTPUT],
        )
        pruned = dangling.prune()
        assert dangling.fingerprint == pruned.fingerprint

        macro = MacroSpec((StageSpec(dangling, depth=2),))
        twin = MacroSpec((StageSpec(pruned, depth=2),))
        assert twin.fingerprint == macro.fingerprint
        assert twin == macro
        assert len({twin, macro}) == 1

    def test_depth_width_and_shape_change_the_fingerprint(self):
        base = two_stage_macro()
        deeper = MacroSpec(
            (base.stages[0], dataclasses.replace(base.stages[1], depth=2)),
        )
        wider = MacroSpec(
            (base.stages[0], dataclasses.replace(base.stages[1], width_multiplier=3.0)),
        )
        bigger_stem = MacroSpec(base.stages, stem_channels=base.stem_channels * 2)
        prints = {base.fingerprint, deeper.fingerprint, wider.fingerprint,
                  bigger_stem.fingerprint}
        assert len(prints) == 4

    def test_macro_never_equals_a_cell(self):
        single = MacroSpec((StageSpec(CELL_A),))
        assert single != CELL_A
        assert single.fingerprint != CELL_A.fingerprint


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
class TestSerialization:
    def test_macro_round_trip(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            macro = random_macro(rng)
            clone = MacroSpec.from_dict(macro.to_dict())
            assert clone == macro
            assert clone.fingerprint == macro.fingerprint

    def test_tagged_dispatch_round_trip(self):
        macro = two_stage_macro()
        assert architecture_to_dict(macro)["kind"] == "macro"
        assert architecture_from_dict(architecture_to_dict(macro)) == macro
        assert architecture_to_dict(CELL_A)["kind"] == "cell"
        assert architecture_from_dict(architecture_to_dict(CELL_A)) == CELL_A

    def test_untagged_payloads_are_cells(self):
        # Pre-macro serialization format: a bare cell dict with no tag.
        assert architecture_from_dict(CELL_A.to_dict()) == CELL_A

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidCellError, match="kind"):
            architecture_from_dict({"kind": "transformer"})


# --------------------------------------------------------------------------- #
# The acceptance anchor: single-cell macro == legacy expansion, bit for bit
# --------------------------------------------------------------------------- #
class TestLegacyEquivalence:
    @pytest.mark.parametrize("cell_name", sorted(FAMOUS_CELLS))
    @pytest.mark.parametrize("caching", [True, False])
    def test_famous_cells_simulate_identically(self, cell_name, caching):
        cell = FAMOUS_CELLS[cell_name]
        config = NetworkConfig()
        legacy = build_network(cell, config)
        macro = MacroSpec.from_network_config(cell, config)
        staged = macro.build_network()

        assert [dataclasses.astuple(layer) for layer in staged.layers] == [
            dataclasses.astuple(layer) for layer in legacy.layers
        ]
        assert staged.trainable_parameters == legacy.trainable_parameters

        simulator = BatchSimulator(enable_parameter_caching=caching)
        for accel in (get_config("V1"), get_config("V2")):
            legacy_lat, legacy_energy = simulator.evaluate_networks([legacy], accel)
            macro_lat, macro_energy = simulator.evaluate_networks([staged], accel)
            np.testing.assert_array_equal(macro_lat, legacy_lat)
            np.testing.assert_array_equal(macro_energy, legacy_energy)

    def test_non_default_backbones_match_too(self):
        config = NetworkConfig(stem_channels=64, num_stacks=2, cells_per_stack=1)
        for cell in FAMOUS_CELLS.values():
            legacy = build_network(cell, config)
            staged = MacroSpec.from_network_config(cell, config).build_network()
            assert [layer.name for layer in staged.layers] == [
                layer.name for layer in legacy.layers
            ]
            assert staged.trainable_parameters == legacy.trainable_parameters

    def test_expand_architecture_dispatch(self):
        config = NetworkConfig()
        macro = two_stage_macro()
        assert (
            expand_architecture(CELL_A, config).trainable_parameters
            == build_network(CELL_A, config).trainable_parameters
        )
        assert (
            expand_architecture(macro, config).trainable_parameters
            == macro.build_network().trainable_parameters
        )


# --------------------------------------------------------------------------- #
# Structure of the staged expansion
# --------------------------------------------------------------------------- #
class TestStagedExpansion:
    def test_per_stage_cells_and_depths_appear_in_layer_names(self):
        network = two_stage_macro().build_network()
        names = [layer.name for layer in network.layers]
        assert any(name.startswith("stack0/cell0/") for name in names)
        assert any(name.startswith("stack0/cell1/") for name in names)
        assert any(name.startswith("stack1/cell0/") for name in names)
        assert not any(name.startswith("stack1/cell1/") for name in names)
        assert "stack1/downsample" in names
        assert "stack0/downsample" not in names

    def test_width_schedule(self):
        macro = MacroSpec(
            (
                StageSpec(CELL_A, depth=1, width_multiplier=0.5),
                StageSpec(CELL_A, depth=1, width_multiplier=3.0),
            ),
            stem_channels=64,
        )
        assert macro.stage_channels == [32, 96]
        assert macro.total_cells == 2
        assert macro.num_stages == 2

    def test_heterogeneous_stages_differ_from_homogeneous(self):
        homogeneous = MacroSpec(
            (StageSpec(CELL_A, depth=1), StageSpec(CELL_A, depth=1))
        )
        heterogeneous = MacroSpec(
            (StageSpec(CELL_A, depth=1), StageSpec(CELL_B, depth=1))
        )
        assert (
            homogeneous.build_network().trainable_parameters
            != heterogeneous.build_network().trainable_parameters
        )


# --------------------------------------------------------------------------- #
# Macro mutations
# --------------------------------------------------------------------------- #
class TestMacroMutation:
    def test_mutants_are_valid_and_distinct(self):
        rng = np.random.default_rng(2)
        macro = random_macro(rng)
        for _ in range(100):
            child = mutate_macro(macro, rng)
            assert child.fingerprint != macro.fingerprint
            assert child.num_stages == macro.num_stages
            assert all(1 <= stage.depth <= MAX_STAGE_DEPTH for stage in child.stages)
            macro = child

    def test_width_steps_stay_on_the_ladder(self):
        rng = np.random.default_rng(3)
        macro = random_macro(rng)
        for _ in range(60):
            macro = mutate_macro(macro, rng, kinds=("stage_width",))
            assert all(
                stage.width_multiplier in WIDTH_MULTIPLIERS for stage in macro.stages
            )

    def test_depth_only_mutation_changes_exactly_one_stage_depth(self):
        rng = np.random.default_rng(4)
        macro = two_stage_macro()
        child = mutate_macro(macro, rng, kinds=("stage_depth",))
        depth_deltas = [
            abs(child.stages[i].depth - macro.stages[i].depth)
            for i in range(macro.num_stages)
        ]
        assert sorted(depth_deltas) == [0, 1]
        assert [stage.cell.fingerprint for stage in child.stages] == [
            stage.cell.fingerprint for stage in macro.stages
        ]

    def test_mutate_unique_respects_the_seen_set(self):
        rng = np.random.default_rng(5)
        macro = random_macro(rng)
        seen = {macro}
        for _ in range(30):
            child = mutate_macro_unique(macro, rng, seen)
            assert child not in seen
            seen.add(child)
            macro = child

    def test_exhausted_neighborhood_raises(self):
        rng = np.random.default_rng(6)
        macro = two_stage_macro()

        class Everything:
            def __contains__(self, item):
                return True

        with pytest.raises(DatasetError):
            mutate_macro_unique(macro, rng, Everything(), max_attempts=5)


# --------------------------------------------------------------------------- #
# Datasets of macro records
# --------------------------------------------------------------------------- #
class TestMacroDataset:
    def test_from_macros_dedups_and_dispatches(self):
        rng = np.random.default_rng(7)
        macros = [random_macro(rng) for _ in range(5)]
        dataset = NASBenchDataset.from_macros(macros + [macros[0]])
        assert len(dataset) == 5
        for record, macro in zip(dataset, macros):
            assert record.architecture is macro
            assert record.fingerprint == macro.fingerprint
            assert record.macro is macro
            assert (
                record.build_network().trainable_parameters
                == macro.build_network().trainable_parameters
            )
            assert macro in dataset

    def test_accuracy_keys_on_the_macro_fingerprint(self):
        # Same first-stage cell, different depth → different fingerprints →
        # independent surrogate noise draws (with the same structural terms).
        shallow = MacroSpec((StageSpec(CELL_A, depth=1),))
        deep = MacroSpec((StageSpec(CELL_A, depth=3),))
        dataset = NASBenchDataset.from_macros([shallow, deep])
        assert dataset[0].mean_validation_accuracy != dataset[1].mean_validation_accuracy

    def test_empty_input_rejected(self):
        with pytest.raises(DatasetError, match="macro"):
            NASBenchDataset.from_macros([])


# --------------------------------------------------------------------------- #
# Pareto archive round trip
# --------------------------------------------------------------------------- #
class TestMacroArchive:
    def test_save_load_round_trip_with_mixed_entries(self, tmp_path):
        archive = ParetoArchive(ref_cost=10.0)
        macro = two_stage_macro()
        assert archive.update(macro, 2.0, 0.9)
        assert archive.update(CELL_A, 1.0, 0.8)
        archive.checkpoint()
        path = tmp_path / "archive.npz"
        archive.save(path)

        loaded = ParetoArchive.load(path)
        by_print = {entry.fingerprint: entry for entry in loaded.entries}
        assert isinstance(by_print[macro.fingerprint].cell, MacroSpec)
        assert isinstance(by_print[CELL_A.fingerprint].cell, Cell)
        assert by_print[macro.fingerprint].cell == macro
        assert by_print[CELL_A.fingerprint].cell == CELL_A


# --------------------------------------------------------------------------- #
# Search over the macro space
# --------------------------------------------------------------------------- #
def macro_spec(strategy: str, **overrides) -> SearchSpec:
    """The pinned micro-budget macro search shared by the engine tests."""
    parameters = dict(
        strategy=strategy,
        arch_space="macro",
        population_size=8,
        generations=4,
        seed=1,
        tournament_size=4,
        min_accuracy=0.92,
    )
    parameters.update(overrides)
    return SearchSpec(**parameters)


class TestMacroSearch:
    def test_arch_space_is_validated(self):
        with pytest.raises(SearchError, match="architecture space"):
            SearchSpec(arch_space="mesh")

    def test_predictor_strategy_is_cell_only(self):
        with pytest.raises(SearchError, match="predictor"):
            SearchSpec(strategy="predictor", arch_space="macro")

    def test_macro_runs_are_deterministic(self):
        a = SearchEngine(macro_spec("evolution")).run()
        b = SearchEngine(macro_spec("evolution")).run()
        assert a.best_objective == b.best_objective
        assert [r.fingerprint for r in a.dataset] == [r.fingerprint for r in b.dataset]

    def test_population_is_macro_and_unique(self):
        result = SearchEngine(macro_spec("random")).run()
        assert all(record.macro is not None for record in result.dataset)
        fingerprints = [record.fingerprint for record in result.dataset]
        assert len(fingerprints) == len(set(fingerprints))
        assert result.num_evaluated == result.spec.simulation_budget

    def test_macro_evolution_beats_macro_random_at_equal_budget(self):
        """The acceptance regression, pinned on seed 1."""
        best = {
            strategy: SearchEngine(macro_spec(strategy)).run().best_objective
            for strategy in ("random", "evolution")
        }
        assert np.isfinite(best["random"])
        assert best["evolution"] < best["random"]

    def test_macro_search_resumes_from_a_store(self, tmp_path):
        from repro.service import MeasurementStore

        spec = macro_spec("evolution")
        partial = dataclasses.replace(spec, generations=2)
        SearchEngine(
            partial, store=MeasurementStore(tmp_path, shard_size=spec.population_size)
        ).run()
        store = MeasurementStore(tmp_path, shard_size=spec.population_size)
        resumed = SearchEngine(spec, store=store).run()
        assert store.stats.pairs_simulated == spec.generations - 2
        assert resumed.best_objective == SearchEngine(spec).run().best_objective


# --------------------------------------------------------------------------- #
# Co-search over macro × hardware pairs
# --------------------------------------------------------------------------- #
class TestMacroCoSearch:
    def test_macro_pairs_flow_through_the_joint_search(self):
        space = AcceleratorSpace({"pes_x": (4, 8), "batch_size": (1, 2)})
        spec = CoSearchSpec(
            population_size=4, generations=2, seed=1, arch_space="macro"
        )
        result = CoSearchEngine(spec, space).run()
        assert len(result.pairs) == spec.simulation_budget
        assert all(isinstance(pair.cell, MacroSpec) for pair in result.pairs)
        for pair in result.pairs:
            fingerprint, _, digest = pair.key.partition("@")
            assert fingerprint == pair.cell.fingerprint
            assert digest

    def test_cosearch_arch_space_is_validated(self):
        with pytest.raises(SearchError, match="architecture space"):
            CoSearchSpec(arch_space="mesh")
