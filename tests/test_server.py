"""Tests of the asyncio query server (protocol, cache, batching, app)."""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.core import TrainingSettings
from repro.nasbench import NASBenchDataset, sample_unique_cells
from repro.server import (
    QueryCache,
    ServerBusy,
    ServerConfig,
    ServiceClient,
    SweepServer,
    build_service,
    encode_response,
    read_request,
)
from repro.server.protocol import MAX_HEAD_BYTES, ProtocolError
from repro.service import MeasurementStore, SweepService
from repro.service.api import QueryResponse, TopKRequest

SHARD = 8
CONFIGS = ("V1", "V3")


@pytest.fixture(scope="module")
def server_dataset():
    return NASBenchDataset.generate(num_models=24, seed=31)


@pytest.fixture(scope="module")
def warm_root(tmp_path_factory, server_dataset):
    root = tmp_path_factory.mktemp("server-store")
    store = MeasurementStore(root, shard_size=SHARD)
    store.sweep(server_dataset, configs=CONFIGS)
    store.publish_manifest(server_dataset, configs=CONFIGS)
    return root


@pytest.fixture(scope="module")
def service(warm_root, server_dataset):
    return SweepService(
        MeasurementStore(warm_root, shard_size=SHARD),
        server_dataset,
        configs=CONFIGS,
        settings=TrainingSettings(epochs=2, seed=0),
    )


def run(coroutine):
    return asyncio.run(coroutine)


async def serve(service, **overrides):
    """A started server on an ephemeral port."""
    options = dict(port=0, window_ms=5.0, cache_size=32)
    options.update(overrides)
    server = SweepServer(service, ServerConfig(**options))
    await server.start()
    return server


# --------------------------------------------------------------------------- #
# Protocol unit tests
# --------------------------------------------------------------------------- #
def feed(payload: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader(limit=MAX_HEAD_BYTES)
    reader.feed_data(payload)
    reader.feed_eof()
    return reader


class TestProtocol:
    def test_parses_target_query_and_body(self):
        async def scenario():
            body = b'{"k": 3}'
            raw = (
                b"POST /v1/query?trace=1&label=a%20b HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            request = await read_request(feed(raw))
            assert request.method == "POST"
            assert request.path == "/v1/query"
            assert request.query == {"trace": "1", "label": "a b"}
            assert request.json() == {"k": 3}
            assert not request.keep_alive
            assert await read_request(feed(b"")) is None

        run(scenario())

    def test_malformed_input_raises_protocol_error(self):
        async def scenario():
            with pytest.raises(ProtocolError, match="request line"):
                await read_request(feed(b"NOT-HTTP\r\n\r\n"))
            with pytest.raises(ProtocolError, match="Content-Length"):
                await read_request(
                    feed(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                )
            with pytest.raises(ProtocolError, match="mid-body"):
                await read_request(
                    feed(b"GET / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort")
                )

        run(scenario())

    def test_encode_response_is_parseable_json(self):
        raw = encode_response(200, {"b": 2, "a": 1}, extra_headers={"Retry-After": "1"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Retry-After: 1" in head
        assert json.loads(body) == {"a": 1, "b": 2}
        assert int(dict(
            line.split(b": ", 1) for line in head.split(b"\r\n")[1:]
        )[b"Content-Length"]) == len(body)


class TestQueryCache:
    def response(self, tag: str) -> QueryResponse:
        return QueryResponse(
            kind="top_k", result={"tag": tag}, store_digest="d", served_from="store"
        )

    def test_hits_are_retagged_and_lru_evicts(self):
        cache = QueryCache(capacity=2)
        cache.put("a", self.response("a"))
        cache.put("b", self.response("b"))
        hit = cache.get("a")  # refreshes "a"; "b" is now least recent
        assert hit.served_from == "cache" and hit.result == {"tag": "a"}
        cache.put("c", self.response("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["hits"] == 2 and stats["misses"] == 1

    def test_capacity_zero_disables(self):
        cache = QueryCache(capacity=0)
        cache.put("a", self.response("a"))
        assert cache.get("a") is None
        assert len(cache) == 0


# --------------------------------------------------------------------------- #
# End-to-end: wire answers vs direct service calls
# --------------------------------------------------------------------------- #
class TestServerEquivalence:
    @pytest.mark.parametrize("cache_size", [0, 32])
    def test_store_endpoints_match_direct_calls(self, service, server_dataset, cache_size):
        fingerprint = server_dataset[0].fingerprint

        async def scenario():
            server = await serve(service, cache_size=cache_size)
            try:
                async with ServiceClient(port=server.port) as client:
                    assert (await client.health())["store_digest"] == service.store_digest

                    wire = await client.top_k(3)
                    direct = service.query(TopKRequest(k=3))
                    assert wire.result == direct.result
                    assert wire.store_digest == direct.store_digest

                    wire = await client.pareto("V1", 0.6)
                    from repro.service.api import ParetoRequest

                    assert wire.result == service.query(ParetoRequest("V1", 0.6)).result

                    assert (await client.latency_of(fingerprint, "V1")) == (
                        service.latency_of(fingerprint, "V1")
                    )
                    assert (await client.energy_of(fingerprint, "V1")) == (
                        service.energy_of(fingerprint, "V1")
                    )
                    assert (await client.energy_of(fingerprint, "V3")) is None
                    assert (await client.metric_of(fingerprint, "V1", "latency")) == (
                        service.metric_of(fingerprint, "V1", "latency")
                    )
            finally:
                await server.stop()

        run(scenario())

    def test_get_routes_match_post_query(self, service, server_dataset):
        fingerprint = server_dataset[0].fingerprint

        async def scenario():
            server = await serve(service)
            try:
                async with ServiceClient(port=server.port) as client:
                    status, _, via_get = await client.request(
                        "GET", f"/v1/latency?fingerprint={fingerprint}&config=V1"
                    )
                    assert status == 200
                    via_post = await client.latency_of(fingerprint, "V1")
                    assert via_get["result"]["value"] == via_post

                    status, _, top = await client.request("GET", "/v1/top_k?k=2")
                    assert status == 200
                    # Same canonical request via POST: identical payload, and
                    # the shared cache key makes the second answer a hit.
                    via_post = (await client.top_k(2)).to_dict()
                    assert top["result"] == via_post["result"]
                    assert top["store_digest"] == via_post["store_digest"]
                    assert via_post["served_from"] == "cache"
            finally:
                await server.stop()

        run(scenario())

    def test_cache_provenance_and_identical_payload(self, service):
        async def scenario():
            server = await serve(service, cache_size=8)
            try:
                async with ServiceClient(port=server.port) as client:
                    first = await client.top_k(4)
                    second = await client.top_k(4)
                    assert first.served_from == "store"
                    assert second.served_from == "cache"
                    assert second.result == first.result
                    stats = await client.stats()
                    assert stats["cache"]["hits"] >= 1
            finally:
                await server.stop()

        run(scenario())


class TestMicroBatching:
    def test_concurrent_predicts_coalesce_bit_identically(self, service, server_dataset):
        cells = [record.cell for record in server_dataset.records[:6]]
        merged_direct = service.predict(cells, "V1", "latency")

        async def scenario():
            server = await serve(service, window_ms=50.0, cache_size=0)
            try:
                clients = [ServiceClient(port=server.port) for _ in cells]
                responses = await asyncio.gather(
                    *[c.predict([cell], "V1") for c, cell in zip(clients, cells)]
                )
                for client in clients:
                    await client.close()
                values = np.array([r.result["values"][0] for r in responses])
                stats = server.batcher.stats()
                # One merged forward pass, sliced back bit-identically.
                assert stats["batches"] == 1
                assert stats["requests"] == len(cells)
                assert np.array_equal(values, merged_direct)
                assert all(r.served_from == "model" for r in responses)
            finally:
                await server.stop()

        run(scenario())

    def test_window_disabled_is_bit_identical_per_request(self, service):
        cells = sample_unique_cells(3, seed=123)

        async def scenario():
            server = await serve(service, window_ms=0.0, cache_size=0)
            try:
                async with ServiceClient(port=server.port) as client:
                    for cell in cells:
                        wire = (await client.predict([cell], "V1")).result["values"][0]
                        direct = float(service.predict([cell], "V1", "latency")[0])
                        assert wire == direct
                assert server.batcher.stats()["batches"] == len(cells)
            finally:
                await server.stop()

        run(scenario())

    def test_batches_never_mix_configs_or_metrics(self, service, server_dataset):
        cell = server_dataset[0].cell

        async def scenario():
            server = await serve(service, window_ms=50.0, cache_size=0)
            try:
                clients = [ServiceClient(port=server.port) for _ in range(3)]
                v1, v3, energy = await asyncio.gather(
                    clients[0].predict([cell], "V1"),
                    clients[1].predict([cell], "V3"),
                    clients[2].predict([cell], "V1", metric="energy"),
                )
                for client in clients:
                    await client.close()
                # Three distinct (config, metric) groups → three batches.
                assert server.batcher.stats()["batches"] == 3
                assert v1.result["values"] != v3.result["values"]
                assert energy.result["values"] != v1.result["values"]
            finally:
                await server.stop()

        run(scenario())


# --------------------------------------------------------------------------- #
# Backpressure and error mapping
# --------------------------------------------------------------------------- #
class _SlowService:
    """Wraps a real service, stretching each query to an eternity (~0.2 s)."""

    def __init__(self, inner, delay=0.2):
        self._inner = inner
        self._delay = delay
        self.store_digest = inner.store_digest
        self.config_names = inner.config_names
        self.dataset = inner.dataset

    def query(self, request):
        time.sleep(self._delay)
        return self._inner.query(request)


class TestBackpressure:
    def test_saturated_server_answers_429_with_retry_after(self, service):
        async def scenario():
            server = await serve(
                _SlowService(service), max_inflight=1, cache_size=0, window_ms=0.0
            )
            try:
                clients = [ServiceClient(port=server.port) for _ in range(5)]
                outcomes = await asyncio.gather(
                    *[client.top_k(k + 1) for k, client in enumerate(clients)],
                    return_exceptions=True,
                )
                for client in clients:
                    await client.close()
                served = [r for r in outcomes if isinstance(r, QueryResponse)]
                rejected = [r for r in outcomes if isinstance(r, ServerBusy)]
                assert served, "at least one request must get through"
                assert rejected, "saturation must reject, not queue"
                assert all(r.status == 429 for r in rejected)
                assert all(r.retry_after >= 1.0 for r in rejected)
                # The loop stayed alive: a follow-up request succeeds.
                async with ServiceClient(port=server.port) as client:
                    assert (await client.health())["status"] == "ok"
            finally:
                await server.stop()

        run(scenario())

    def test_full_predict_queue_answers_429(self, service, server_dataset):
        cells = [record.cell for record in server_dataset.records[:8]]

        async def scenario():
            server = await serve(
                service, window_ms=200.0, max_pending=4, max_batch=1024, cache_size=0
            )
            try:
                first = ServiceClient(port=server.port)
                second = ServiceClient(port=server.port)
                task = asyncio.ensure_future(first.predict(cells[:4], "V1"))
                await asyncio.sleep(0.05)  # first request parks in the window
                with pytest.raises(ServerBusy) as excinfo:
                    await second.predict(cells[4:], "V1")
                assert excinfo.value.status == 429
                response = await task  # the parked batch still completes
                assert len(response.result["values"]) == 4
                await first.close()
                await second.close()
            finally:
                await server.stop()

        run(scenario())

    def test_draining_server_answers_503_and_completes_inflight(self, service):
        async def scenario():
            server = await serve(service, cache_size=0)
            try:
                async with ServiceClient(port=server.port) as client:
                    assert (await client.health())["status"] == "ok"
                    server._draining = True  # enter the drain state
                    with pytest.raises(ServerBusy) as excinfo:
                        await client.top_k(2)
                    assert excinfo.value.status == 503
                    assert excinfo.value.retry_after >= 1.0
            finally:
                await server.stop()

        run(scenario())


class TestErrorMapping:
    def test_status_codes(self, service, server_dataset):
        async def scenario():
            server = await serve(service, cache_size=0)
            try:
                client = ServiceClient(port=server.port)
                # Unknown fingerprint → 404 (DatasetError).
                status, _, body = await client.request(
                    "GET", "/v1/latency?fingerprint=nope&config=V1"
                )
                assert status == 404 and "nope" in body["error"]
                # Config not served → 400 (ServiceError).
                fingerprint = server_dataset[0].fingerprint
                status, _, _ = await client.request(
                    "GET", f"/v1/latency?fingerprint={fingerprint}&config=V9"
                )
                assert status == 400
                # Bad metric name → 400 before any lookup.
                status, _, body = await client.request(
                    "GET", f"/v1/metric?fingerprint={fingerprint}&config=V1&metric=flops"
                )
                assert status == 400 and "flops" in body["error"]
                # Missing required parameter → 400.
                status, _, _ = await client.request("GET", "/v1/pareto")
                assert status == 400
                # Unknown route → 404; wrong method → 405.
                status, _, _ = await client.request("GET", "/v1/nothing")
                assert status == 404
                status, _, _ = await client.request("GET", "/v1/query")
                assert status == 405
                # Unknown request kind over POST → 400.
                status, _, _ = await client.request(
                    "POST", "/v1/query", {"kind": "frontier"}
                )
                assert status == 400
                # The connection survived every error above (keep-alive).
                assert (await client.health())["status"] == "ok"
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_invalid_json_body_is_400(self, service):
        async def scenario():
            server = await serve(service, cache_size=0)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                body = b"{not json"
                writer.write(
                    b"POST /v1/query HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\nConnection: close\r\n\r\n"
                    + body
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert b"400 Bad Request" in head
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(scenario())


# --------------------------------------------------------------------------- #
# Standalone bring-up from a bare store directory
# --------------------------------------------------------------------------- #
class TestBuildService:
    def test_manifest_store_rebuilds_an_equivalent_service(self, warm_root, service):
        rebuilt = build_service(warm_root)
        assert rebuilt.config_names == list(CONFIGS)
        assert rebuilt.store_digest == service.store_digest
        assert [e.record.fingerprint for e in rebuilt.top_k(3)] == [
            e.record.fingerprint for e in service.top_k(3)
        ]

    def test_manifest_less_store_needs_models_argument(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="--models"):
            build_service(tmp_path)
