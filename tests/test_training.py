"""Tests for the optimizer, target normalization, training loop and predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Adam,
    EncodeProcessDecode,
    LearnedPerformanceModel,
    TargetNormalizer,
    TrainingSettings,
    cell_to_graph,
    estimation_accuracy,
    evaluate_predictions,
    pearson_correlation,
    spearman_correlation,
    split_dataset,
    train_model,
)
from repro.core.autodiff import Tensor, mse_loss
from repro.core.trainer import evaluate_loss, predict
from repro.errors import ModelError
from repro.nasbench import sample_unique_cells


class TestAdam:
    def test_minimizes_a_quadratic(self):
        x = Tensor(np.array([[5.0]]), requires_grad=True)
        optimizer = Adam([x], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(x, Tensor(np.array([[2.0]])))
            loss.backward()
            optimizer.step()
        assert x.data[0, 0] == pytest.approx(2.0, abs=1e-2)

    def test_requires_parameters(self):
        with pytest.raises(ModelError):
            Adam([])

    def test_requires_positive_learning_rate(self):
        with pytest.raises(ModelError):
            Adam([Tensor([[1.0]], requires_grad=True)], learning_rate=0.0)

    def test_step_without_gradients_is_a_noop(self):
        x = Tensor(np.array([[1.0]]), requires_grad=True)
        optimizer = Adam([x])
        optimizer.step()
        assert x.data[0, 0] == 1.0


class TestTargetNormalizer:
    def test_round_trip(self):
        values = np.array([0.1, 0.5, 2.0, 5.0])
        normalizer = TargetNormalizer(log_transform=True).fit(values)
        recovered = normalizer.inverse_transform(normalizer.transform(values))
        assert np.allclose(recovered, values)

    def test_normalized_targets_are_standardized(self):
        values = np.array([0.1, 0.2, 1.0, 3.0, 6.0])
        normalized = TargetNormalizer(log_transform=True).fit(values).transform(values)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-9)
        assert normalized.std() == pytest.approx(1.0, abs=1e-9)

    def test_linear_mode(self):
        values = np.array([-1.0, 0.0, 1.0])
        normalizer = TargetNormalizer(log_transform=False).fit(values)
        assert np.allclose(normalizer.inverse_transform(normalizer.transform(values)), values)

    def test_log_mode_rejects_non_positive(self):
        with pytest.raises(ModelError):
            TargetNormalizer(log_transform=True).fit(np.array([0.0, 1.0]))

    def test_use_before_fit_rejected(self):
        with pytest.raises(ModelError):
            TargetNormalizer().transform(np.array([1.0]))


class TestSplit:
    def test_split_is_a_partition(self):
        split = split_dataset(100, seed=1)
        combined = np.concatenate([split.train, split.validation, split.test])
        assert sorted(combined.tolist()) == list(range(100))
        assert split.sizes == (60, 20, 20)

    def test_split_is_deterministic(self):
        a = split_dataset(50, seed=2)
        b = split_dataset(50, seed=2)
        assert np.array_equal(a.train, b.train)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ModelError):
            split_dataset(10, train_fraction=0.9, validation_fraction=0.2)
        with pytest.raises(ModelError):
            split_dataset(2)


class TestTrainingLoop:
    def test_training_reduces_loss_on_learnable_target(self):
        cells = sample_unique_cells(120, seed=9)
        graphs = [cell_to_graph(cell) for cell in cells]
        raw = np.array([cell.op_count("conv3x3-bn-relu") for cell in cells], dtype=float)
        targets = (raw - raw.mean()) / (raw.std() + 1e-9)
        model = EncodeProcessDecode(seed=2)
        history = train_model(
            model, graphs, targets, epochs=25, batch_size=16, learning_rate=3e-3, seed=0
        )
        assert history.num_epochs == 25
        assert history.train_losses[-1] < history.train_losses[0]
        assert history.train_losses[-1] < 0.4

    def test_validation_losses_recorded(self):
        cells = sample_unique_cells(40, seed=10)
        graphs = [cell_to_graph(cell) for cell in cells]
        targets = np.linspace(-1, 1, len(cells))
        model = EncodeProcessDecode(seed=0)
        history = train_model(model, graphs[:30], targets[:30], graphs[30:], targets[30:], epochs=2)
        assert len(history.validation_losses) == 2

    def test_mismatched_lengths_rejected(self):
        cells = sample_unique_cells(5, seed=1)
        graphs = [cell_to_graph(cell) for cell in cells]
        with pytest.raises(ModelError):
            train_model(EncodeProcessDecode(seed=0), graphs, np.zeros(3), epochs=1)

    def test_evaluate_loss_and_predict_shapes(self):
        cells = sample_unique_cells(20, seed=12)
        graphs = [cell_to_graph(cell) for cell in cells]
        targets = np.zeros(len(cells))
        model = EncodeProcessDecode(seed=0)
        assert evaluate_loss(model, graphs, targets) >= 0.0
        assert predict(model, graphs).shape == (20,)


class TestMetrics:
    def test_perfect_predictions(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert estimation_accuracy(targets, targets) == pytest.approx(1.0)
        assert spearman_correlation(targets, targets) == pytest.approx(1.0)
        assert pearson_correlation(targets, targets) == pytest.approx(1.0)

    def test_accuracy_penalizes_relative_error(self):
        targets = np.array([1.0, 2.0])
        predictions = np.array([1.1, 1.8])
        assert estimation_accuracy(predictions, targets) == pytest.approx(0.9)

    def test_rank_correlation_ignores_scale(self):
        targets = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = np.array([10.0, 20.0, 30.0, 40.0])
        assert spearman_correlation(predictions, targets) == pytest.approx(1.0)

    def test_report_as_row(self):
        report = evaluate_predictions(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 10)
        row = report.as_row()
        assert row["training_set_size"] == 10
        assert row["test_set_size"] == 2
        assert row["average_accuracy"] == pytest.approx(1.0)

    def test_zero_targets_rejected(self):
        with pytest.raises(ModelError):
            estimation_accuracy(np.array([1.0, 2.0]), np.array([0.0, 2.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            pearson_correlation(np.array([1.0]), np.array([1.0, 2.0]))


class TestLearnedPerformanceModel:
    def test_fit_predict_evaluate_cycle(self):
        cells = sample_unique_cells(80, seed=21)
        # Synthetic but structure-dependent target: proportional to conv3x3 count.
        targets = np.array([0.2 + 0.5 * cell.op_count("conv3x3-bn-relu") for cell in cells])
        model = LearnedPerformanceModel("V1", TrainingSettings(epochs=15, seed=0, batch_size=16))
        history = model.fit(cells, targets)
        assert history.num_epochs == 15
        report = model.evaluate("test")
        assert report.training_set_size == 48
        assert 0.0 < report.average_accuracy <= 1.0
        predictions = model.predict_cells(cells[:5])
        assert predictions.shape == (5,)
        assert np.all(predictions > 0)  # log-space training keeps outputs positive
        assert model.predict_cell(cells[0]) == pytest.approx(predictions[0])

    def test_unfitted_model_rejects_queries(self):
        model = LearnedPerformanceModel("V1")
        with pytest.raises(ModelError):
            model.predict_cell(sample_unique_cells(1, seed=0)[0])
        with pytest.raises(ModelError):
            model.evaluate()

    def test_fit_validates_inputs(self):
        cells = sample_unique_cells(12, seed=1)
        model = LearnedPerformanceModel("V1", TrainingSettings(epochs=1))
        with pytest.raises(ModelError):
            model.fit(cells, np.ones(5))
        with pytest.raises(ModelError):
            model.fit(cells[:4], np.ones(4))

    def test_unknown_subset_rejected(self):
        cells = sample_unique_cells(30, seed=2)
        model = LearnedPerformanceModel("V1", TrainingSettings(epochs=1, seed=0))
        model.fit(cells, np.linspace(0.1, 1.0, 30))
        with pytest.raises(ModelError):
            model.evaluate("holdout")
