"""Tests of the resumable measurement store and the sweep query service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainingSettings
from repro.errors import DatasetError, ServiceError, SimulationError
from repro.nasbench import NASBenchDataset, sample_unique_cells
from repro.service import MeasurementStore, SweepService
from repro.simulator import BatchSimulator, evaluate_dataset

SHARD = 16
CONFIGS = ("V1", "V2", "V3")


@pytest.fixture(scope="module")
def store_dataset():
    """A population of 60 models → four shards of 16/16/16/12 at SHARD=16."""
    return NASBenchDataset.generate(num_models=60, seed=31)


@pytest.fixture(scope="module")
def direct_measurements(store_dataset):
    """Reference sweep straight through the batch engine (no store)."""
    return BatchSimulator().evaluate(store_dataset)


def make_store(root, **overrides) -> MeasurementStore:
    options = dict(shard_size=SHARD)
    options.update(overrides)
    return MeasurementStore(root, **options)


def assert_matches_reference(measurements, reference, configs=CONFIGS):
    for name in configs:
        np.testing.assert_allclose(
            measurements.latencies(name), reference.latencies(name), rtol=1e-9
        )
        np.testing.assert_allclose(measurements.energies(name), reference.energies(name), rtol=1e-9)


class TestMeasurementStore:
    def test_cold_sweep_simulates_every_pair(self, tmp_path, store_dataset, direct_measurements):
        store = make_store(tmp_path)
        measurements = store.sweep(store_dataset, configs=CONFIGS)
        n_shards = len(store.shard_ranges(len(store_dataset)))
        assert n_shards == 4
        assert store.stats.pairs_simulated == n_shards * len(CONFIGS)
        assert store.stats.pairs_loaded == 0
        assert store.stats.models_simulated == len(store_dataset) * len(CONFIGS)
        assert_matches_reference(measurements, direct_measurements)

    def test_warm_store_serves_without_simulation(
        self, tmp_path, store_dataset, direct_measurements
    ):
        make_store(tmp_path).sweep(store_dataset, configs=CONFIGS)
        warm = make_store(tmp_path)
        measurements = warm.sweep(store_dataset, configs=CONFIGS)
        assert warm.stats.pairs_simulated == 0
        assert warm.stats.pairs_loaded == 4 * len(CONFIGS)
        assert_matches_reference(measurements, direct_measurements)

    def test_interrupted_sweep_resumes_with_exactly_missing_shards(
        self, tmp_path, store_dataset, direct_measurements
    ):
        # BaseException, not Exception: progress callbacks are non-fatal by
        # design (obs.guarded_progress swallows ordinary exceptions), so the
        # interruption is modeled the way real ones arrive — KeyboardInterrupt
        # / SIGTERM — which the guard deliberately lets propagate.
        class Interrupted(BaseException):
            pass

        store = make_store(tmp_path)
        completed_shards = 0

        def interrupt_after_two_shards(config_name, done, total):
            nonlocal completed_shards
            if config_name == CONFIGS[-1]:  # last config of the shard ticked
                completed_shards += 1
                if completed_shards == 2:
                    raise Interrupted

        with pytest.raises(Interrupted):
            store.sweep(
                store_dataset, configs=CONFIGS,
                progress_callback=interrupt_after_two_shards,
            )
        assert store.stats.pairs_simulated == 2 * len(CONFIGS)

        # The acceptance criterion: k of n shards done, the re-run completes
        # with exactly (n - k) shard simulations per configuration.
        resumed = make_store(tmp_path)
        measurements = resumed.sweep(store_dataset, configs=CONFIGS)
        assert resumed.stats.pairs_simulated == (4 - 2) * len(CONFIGS)
        assert resumed.stats.pairs_loaded == 2 * len(CONFIGS)
        assert_matches_reference(measurements, direct_measurements)

    def test_extend_with_new_config_simulates_only_that_config(
        self, tmp_path, store_dataset, direct_measurements
    ):
        make_store(tmp_path).sweep(store_dataset, configs=("V1",))
        store = make_store(tmp_path)
        measurements = store.extend(store_dataset, configs=("V1", "V2"))
        assert store.stats.pairs_loaded == 4  # every V1 shard
        assert store.stats.pairs_simulated == 4  # every V2 shard
        assert_matches_reference(measurements, direct_measurements, configs=("V1", "V2"))

    def test_extend_with_new_cells_keeps_full_prefix_shards(
        self, tmp_path, store_dataset, direct_measurements
    ):
        # Shards are keyed by cell-fingerprint content, so sweeping a prefix
        # population produces exactly the files the grown population reuses.
        prefix = NASBenchDataset(store_dataset.records[: 2 * SHARD], store_dataset.network_config)
        make_store(tmp_path).sweep(prefix, configs=("V1",))
        store = make_store(tmp_path)
        measurements = store.extend(store_dataset, configs=("V1",))
        assert store.stats.pairs_loaded == 2
        assert store.stats.pairs_simulated == 2
        np.testing.assert_allclose(
            measurements.latencies("V1"), direct_measurements.latencies("V1"), rtol=1e-9
        )

    def test_parallel_extend_matches_and_persists(
        self, tmp_path, store_dataset, direct_measurements
    ):
        store = make_store(tmp_path)
        ticks = []
        measurements = store.extend(
            store_dataset, configs=CONFIGS, n_jobs=2,
            progress_callback=lambda name, done, total: ticks.append((name, done, total)),
        )
        assert store.stats.pairs_simulated == 4 * len(CONFIGS)
        assert_matches_reference(measurements, direct_measurements)
        for name in CONFIGS:
            counts = [done for tick_name, done, _ in ticks if tick_name == name]
            assert counts == sorted(counts)
            assert counts[-1] == len(store_dataset)
        # ... and a second parallel run is pure loading.
        warm = make_store(tmp_path)
        warm.extend(store_dataset, configs=CONFIGS, n_jobs=2)
        assert warm.stats.pairs_simulated == 0

    def test_load_refuses_cold_store(self, tmp_path, store_dataset):
        with pytest.raises(ServiceError, match="missing"):
            make_store(tmp_path).load(store_dataset, configs=CONFIGS)

    def test_missing_pairs_and_available_configs(self, tmp_path, store_dataset):
        store = make_store(tmp_path)
        assert store.available_configs() == []
        assert len(store.missing_pairs(store_dataset, configs=CONFIGS)) == 4 * 3
        store.sweep(store_dataset, configs=("V2",))
        assert store.available_configs() == ["V2"]
        missing = store.missing_pairs(store_dataset, configs=CONFIGS)
        assert len(missing) == 8
        assert all(name in ("V1", "V3") for _, name in missing)

    def test_corrupt_shard_degrades_to_resimulation(self, tmp_path, store_dataset):
        make_store(tmp_path).sweep(store_dataset, configs=("V1",))
        victim = sorted(tmp_path.glob("shard-V1-*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:40])
        store = make_store(tmp_path)
        store.sweep(store_dataset, configs=("V1",))
        assert store.stats.pairs_simulated == 1
        assert store.stats.pairs_loaded == 3

    def test_corrupt_shard_is_quarantined_not_reread(self, tmp_path, store_dataset):
        # Regression: a truncated npz used to stay at its final name, so every
        # reader re-parsed (and re-failed on) the same broken bytes.  read_npz
        # must move it aside so the miss is durable and the rewrite is clean.
        make_store(tmp_path).sweep(store_dataset, configs=("V1",))
        victim = sorted(tmp_path.glob("shard-V1-*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:40])
        store = make_store(tmp_path)
        store.sweep(store_dataset, configs=("V1",))
        quarantined = victim.with_name(victim.name + ".corrupt")
        assert quarantined.exists()
        assert len(quarantined.read_bytes()) == 40  # the broken bytes, moved aside
        assert victim.exists()  # re-simulated and re-published at the real name
        clean = make_store(tmp_path)
        clean.sweep(store_dataset, configs=("V1",))
        assert clean.stats.pairs_simulated == 0

    def test_parameter_caching_mode_is_part_of_the_key(self, tmp_path, store_dataset):
        make_store(tmp_path).sweep(store_dataset, configs=("V1",))
        other_mode = make_store(tmp_path, enable_parameter_caching=False)
        other_mode.sweep(store_dataset, configs=("V1",))
        assert other_mode.stats.pairs_loaded == 0
        assert other_mode.stats.pairs_simulated == 4

    def test_store_simulator_mode_mismatch_rejected(self, tmp_path, store_dataset):
        store = make_store(tmp_path, enable_parameter_caching=False)
        with pytest.raises(SimulationError, match="parameter"):
            BatchSimulator(enable_parameter_caching=True).evaluate(store_dataset, store=store)
        with pytest.raises(ServiceError, match="parameter"):
            MeasurementStore(
                tmp_path,
                enable_parameter_caching=True,
                simulator=BatchSimulator(enable_parameter_caching=False),
            )

    def test_invalid_arguments_rejected(self, tmp_path, store_dataset):
        with pytest.raises(ServiceError):
            MeasurementStore(tmp_path, shard_size=0)
        with pytest.raises(ServiceError):
            make_store(tmp_path).sweep(store_dataset, configs=())
        with pytest.raises(SimulationError, match="scalar"):
            evaluate_dataset(store_dataset, strategy="scalar", store=make_store(tmp_path))

    def test_evaluate_dataset_store_passthrough(self, tmp_path, store_dataset, direct_measurements):
        store = make_store(tmp_path)
        measurements = evaluate_dataset(store_dataset, store=store)
        assert store.stats.pairs_simulated == 4 * len(CONFIGS)
        assert_matches_reference(measurements, direct_measurements)


class TestCompaction:
    def warm_store(self, root, dataset, configs=CONFIGS):
        make_store(root).sweep(dataset, configs=configs)
        return make_store(root)

    def test_compact_produces_one_mmapped_file(self, tmp_path, store_dataset):
        store = self.warm_store(tmp_path, store_dataset)
        result = store.compact(store_dataset, configs=CONFIGS)
        assert result.pairs == 4 * len(CONFIGS)
        assert result.rows == len(store_dataset) * len(CONFIGS)
        assert result.loose_removed == 4 * len(CONFIGS)
        assert result.data_path.exists() and result.index_path.exists()
        assert not list(tmp_path.glob("shard-V*-*.npz"))  # loose files merged away
        data = np.load(result.data_path, mmap_mode="r")
        assert data.shape == (2, result.rows)

    def test_compacted_load_is_byte_identical(self, tmp_path, store_dataset, direct_measurements):
        store = self.warm_store(tmp_path, store_dataset)
        loose = store.load(store_dataset, configs=CONFIGS)
        store.compact(store_dataset, configs=CONFIGS)
        compacted_store = make_store(tmp_path)
        compacted = compacted_store.load(store_dataset, configs=CONFIGS)
        for name in CONFIGS:
            np.testing.assert_array_equal(compacted.latencies(name), loose.latencies(name))
            np.testing.assert_array_equal(compacted.energies(name), loose.energies(name))
            # V3 energies are NaN throughout; array_equal treats aligned NaNs
            # as equal, so the no-energy-model marker survives compaction.
            np.testing.assert_array_equal(
                compacted.latencies(name), direct_measurements.latencies(name)
            )
        stats = compacted_store.stats
        assert stats.pairs_loaded == 4 * len(CONFIGS)
        assert stats.pairs_compacted == 4 * len(CONFIGS)  # every pair via the mmap
        assert stats.pairs_simulated == 0

    def test_compact_refuses_an_unfinished_sweep(self, tmp_path, store_dataset):
        store = self.warm_store(tmp_path, store_dataset, configs=("V1",))
        with pytest.raises(ServiceError, match="finished sweep"):
            store.compact(store_dataset, configs=CONFIGS)

    def test_extend_after_compaction_appends_loose_files(
        self, tmp_path, store_dataset, direct_measurements
    ):
        store = self.warm_store(tmp_path, store_dataset, configs=("V1", "V2"))
        store.compact(store_dataset, configs=("V1", "V2"))
        grown = make_store(tmp_path)
        measurements = grown.extend(store_dataset, configs=CONFIGS)
        assert grown.stats.pairs_compacted == 8  # V1/V2 from the mmap
        assert grown.stats.pairs_simulated == 4  # V3 simulated fresh
        assert sorted(path.name for path in tmp_path.glob("shard-*.npz")) == sorted(
            path.name for path in tmp_path.glob("shard-V3-*.npz")
        )
        assert_matches_reference(measurements, direct_measurements)

    def test_recompaction_folds_loose_files_in(self, tmp_path, store_dataset):
        store = self.warm_store(tmp_path, store_dataset, configs=("V1", "V2"))
        first = store.compact(store_dataset, configs=("V1", "V2"))
        grown = make_store(tmp_path)
        grown.extend(store_dataset, configs=CONFIGS)
        second = grown.compact(store_dataset, configs=CONFIGS)
        assert second.pairs == 4 * len(CONFIGS)
        assert not first.data_path.exists()  # superseded generation removed
        assert not list(tmp_path.glob("shard-V*-*.npz"))
        assert sorted(tmp_path.glob("shard-compact-*.npy")) == [second.data_path]
        final = make_store(tmp_path)
        final.load(store_dataset, configs=CONFIGS)
        assert final.stats.pairs_compacted == 4 * len(CONFIGS)

    def test_fully_compacted_store_reports_its_configs(self, tmp_path, store_dataset):
        store = self.warm_store(tmp_path, store_dataset)
        store.compact(store_dataset, configs=CONFIGS)
        assert make_store(tmp_path).available_configs() == sorted(CONFIGS)
        missing = make_store(tmp_path).missing_pairs(store_dataset, configs=CONFIGS)
        assert missing == []

    def test_parameter_caching_mode_isolates_compacted_files(self, tmp_path, store_dataset):
        store = self.warm_store(tmp_path, store_dataset, configs=("V1",))
        store.compact(store_dataset, configs=("V1",))
        other_mode = make_store(tmp_path, enable_parameter_caching=False)
        assert other_mode.missing_pairs(store_dataset, configs=("V1",)) != []

    def test_compacted_rows_are_copies_not_mmap_views(self, tmp_path, store_dataset):
        # Callers mutate measurement arrays (analysis normalizes in place);
        # handing out read-only mmap slices would crash them.
        store = self.warm_store(tmp_path, store_dataset, configs=("V1",))
        store.compact(store_dataset, configs=("V1",))
        loaded = make_store(tmp_path).load(store_dataset, configs=("V1",))
        latencies = loaded.latencies("V1")
        latencies[0] = -1.0  # must not raise (and must not touch the file)
        again = make_store(tmp_path).load(store_dataset, configs=("V1",))
        assert again.latencies("V1")[0] != -1.0


class TestSweepService:
    @pytest.fixture()
    def warm_root(self, tmp_path, store_dataset):
        make_store(tmp_path).sweep(store_dataset, configs=CONFIGS)
        return tmp_path

    @pytest.fixture()
    def no_simulation(self, monkeypatch):
        """Any BatchSimulator kernel invocation fails the test."""

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("SweepService must not invoke the simulator")

        monkeypatch.setattr(BatchSimulator, "evaluate", forbidden)
        monkeypatch.setattr(BatchSimulator, "evaluate_table", forbidden)

    def test_queries_answered_from_disk_without_simulation(
        self, warm_root, store_dataset, direct_measurements, no_simulation
    ):
        service = SweepService(make_store(warm_root), store_dataset, configs=CONFIGS)
        assert service.config_names == list(CONFIGS)

        top = service.top_k(3)
        expected = store_dataset.top_k_by_accuracy(3)
        assert [entry.record.fingerprint for entry in top] == [
            record.fingerprint for record in expected
        ]

        front = service.pareto_front("V1")
        assert front, "frontier should not be empty"
        latencies = [point.latency_ms for point in front]
        accuracies = [point.accuracy for point in front]
        assert latencies == sorted(latencies)
        assert accuracies == sorted(accuracies)
        indices = service.pareto_front_indices("V1")
        assert [point.model_index for point in front] == list(indices)

        record = expected[0]
        assert service.latency_of(record.fingerprint, "V2") == pytest.approx(
            direct_measurements.latency_of(record, "V2")
        )
        assert service.energy_of(record.fingerprint, "V1") == pytest.approx(
            direct_measurements.energy_of(record, "V1")
        )
        assert service.energy_of(record.fingerprint, "V3") is None

    def test_unknown_fingerprint_and_config_raise(self, warm_root, store_dataset, no_simulation):
        service = SweepService(make_store(warm_root), store_dataset, configs=CONFIGS)
        with pytest.raises(DatasetError):
            service.latency_of("not-a-fingerprint", "V1")
        with pytest.raises(ServiceError, match="not served"):
            service.latency_of(store_dataset[0].fingerprint, "V9")

    def test_cold_store_is_an_error_not_a_sweep(self, tmp_path, store_dataset, no_simulation):
        with pytest.raises(ServiceError, match="missing"):
            SweepService(make_store(tmp_path), store_dataset, configs=CONFIGS)

    def test_preloaded_measurements_skip_the_disk_load(
        self, tmp_path, store_dataset, direct_measurements, no_simulation
    ):
        # A *cold* store is fine when the caller hands over the measurements:
        # nothing is loaded, nothing is simulated.
        service = SweepService(
            make_store(tmp_path),
            store_dataset,
            configs=CONFIGS,
            measurements=direct_measurements,
        )
        assert service.measurements is direct_measurements
        assert service.top_k(1)[0].record.fingerprint == (
            store_dataset.top_k_by_accuracy(1)[0].fingerprint
        )

    def test_preloaded_measurements_are_validated(
        self, tmp_path, store_dataset, direct_measurements, no_simulation
    ):
        other = NASBenchDataset(store_dataset.records[:SHARD], store_dataset.network_config)
        with pytest.raises(ServiceError, match="different dataset"):
            SweepService(
                make_store(tmp_path),
                other,
                configs=CONFIGS,
                measurements=direct_measurements,
            )
        with pytest.raises(ServiceError, match="lacks configurations"):
            SweepService(
                make_store(tmp_path),
                store_dataset,
                configs=("V1", "V9"),
                measurements=direct_measurements,
            )

    def test_preloaded_measurements_accept_fingerprint_equal_dataset(
        self, tmp_path, store_dataset, direct_measurements, no_simulation
    ):
        # Regression: the preloaded path used to compare datasets by object
        # identity (`is not`), rejecting a worker-rebuilt dataset of the same
        # population; content (fingerprints + network config) is what matters.
        rebuilt = NASBenchDataset(list(store_dataset.records), store_dataset.network_config)
        assert rebuilt is not store_dataset
        service = SweepService(
            make_store(tmp_path),
            rebuilt,
            configs=CONFIGS,
            measurements=direct_measurements,
        )
        assert service.top_k(1)[0].record.fingerprint == (
            store_dataset.top_k_by_accuracy(1)[0].fingerprint
        )

    def test_predictions_for_unseen_cells_are_cached_on_disk(
        self, warm_root, store_dataset, monkeypatch
    ):
        settings = TrainingSettings(epochs=2, seed=0)
        service = SweepService(
            make_store(warm_root), store_dataset, configs=CONFIGS, settings=settings
        )
        unseen = sample_unique_cells(3, seed=9001)
        first = service.predict(unseen, "V1")
        assert first.shape == (3,)
        assert np.isfinite(first).all()
        assert service.model_state_path("V1").exists()

        # A fresh service over the same store must restore, never refit.
        from repro.core.predictor import LearnedPerformanceModel

        def no_refit(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("cached weights should have been restored")

        monkeypatch.setattr(LearnedPerformanceModel, "fit_table", no_refit)
        restored = SweepService(
            make_store(warm_root), store_dataset, configs=CONFIGS, settings=settings
        )
        np.testing.assert_allclose(restored.predict(unseen, "V1"), first)
        assert restored.predict_cell(unseen[0], "V1") == pytest.approx(first[0])

    def test_model_cache_does_not_pollute_shard_namespace(self, warm_root, store_dataset):
        # Regression: cached weights used to land next to the shard files and
        # match the shard filename pattern, surfacing a phantom "model"
        # configuration that poisoned available_configs()-driven loads.
        service = SweepService(
            make_store(warm_root), store_dataset, configs=CONFIGS,
            settings=TrainingSettings(epochs=2, seed=0),
        )
        service.predict(sample_unique_cells(2, seed=77), "V1")
        store = make_store(warm_root)
        assert store.available_configs() == sorted(CONFIGS)
        loaded = store.load(store_dataset, configs=store.available_configs())
        assert set(loaded.config_names) == set(CONFIGS)
