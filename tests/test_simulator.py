"""Tests for the performance simulator: latency, energy and batch evaluation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import EDGE_TPU_V1, EDGE_TPU_V2, EDGE_TPU_V3, STUDIED_CONFIGS
from repro.errors import SimulationError
from repro.nasbench import (
    BEST_ACCURACY_CELL,
    NASBenchDataset,
    SHALLOW_CONV_HEAVY_CELL,
    build_network,
    random_cell,
)
from repro.simulator import (
    MeasurementSet,
    PerformanceSimulator,
    evaluate_dataset,
    simulate_records,
)


@pytest.fixture(scope="module")
def best_network():
    return build_network(BEST_ACCURACY_CELL)


@pytest.fixture(scope="module")
def small_network():
    return build_network(SHALLOW_CONV_HEAVY_CELL)


class TestSingleModelSimulation:
    def test_latency_and_energy_are_positive(self, best_network):
        for config in STUDIED_CONFIGS.values():
            result = PerformanceSimulator(config).simulate(best_network)
            assert result.latency_ms > 0
            assert result.total_cycles > 0
            if result.energy_mj is not None:
                assert result.energy_mj > 0

    def test_v3_has_no_energy_model(self, small_network):
        result = PerformanceSimulator(EDGE_TPU_V3).simulate(small_network)
        assert result.energy_mj is None
        assert not result.energy_available

    def test_larger_model_takes_longer_and_more_energy(self, best_network, small_network):
        simulator = PerformanceSimulator(EDGE_TPU_V1)
        big = simulator.simulate(best_network)
        small = simulator.simulate(small_network)
        assert big.latency_ms > small.latency_ms
        assert big.energy_mj > small.energy_mj

    def test_layer_results_collected_on_demand(self, small_network):
        detailed = PerformanceSimulator(EDGE_TPU_V2, collect_layer_results=True).simulate(
            small_network
        )
        assert len(detailed.layer_results) == small_network.num_layers
        assert sum(layer.energy_mj for layer in detailed.layer_results) <= detailed.energy_mj
        summary_only = PerformanceSimulator(EDGE_TPU_V2).simulate(small_network)
        assert summary_only.layer_results == ()
        assert summary_only.latency_ms == pytest.approx(detailed.latency_ms)

    def test_simulate_cell_matches_simulate_network(self):
        simulator = PerformanceSimulator(EDGE_TPU_V2)
        via_cell = simulator.simulate_cell(SHALLOW_CONV_HEAVY_CELL)
        via_network = simulator.simulate(build_network(SHALLOW_CONV_HEAVY_CELL))
        assert via_cell.latency_ms == pytest.approx(via_network.latency_ms)

    def test_mismatched_compiled_model_rejected(self, small_network):
        from repro.compiler import compile_model

        compiled_for_v1 = compile_model(small_network, EDGE_TPU_V1)
        with pytest.raises(SimulationError):
            PerformanceSimulator(EDGE_TPU_V2).simulate_compiled(compiled_for_v1)


class TestModelingTrends:
    """First-order behaviours the paper's conclusions rely on."""

    def test_parameter_caching_never_hurts(self, best_network, small_network):
        for config in STUDIED_CONFIGS.values():
            for network in (best_network, small_network):
                cached = PerformanceSimulator(config, enable_parameter_caching=True)
                streamed = PerformanceSimulator(config, enable_parameter_caching=False)
                assert (
                    cached.simulate(network).latency_ms
                    <= streamed.simulate(network).latency_ms + 1e-9
                )

    def test_more_bandwidth_never_hurts(self, best_network):
        slow = EDGE_TPU_V2.with_overrides(name="V2-slow", io_bandwidth_gbps=8.0)
        fast = EDGE_TPU_V2.with_overrides(name="V2-fast", io_bandwidth_gbps=64.0)
        assert (
            PerformanceSimulator(fast).simulate(best_network).latency_ms
            <= PerformanceSimulator(slow).simulate(best_network).latency_ms
        )

    def test_higher_clock_reduces_latency(self, small_network):
        slow = EDGE_TPU_V2.with_overrides(name="V2-600", clock_mhz=600.0)
        fast = EDGE_TPU_V2.with_overrides(name="V2-1600", clock_mhz=1600.0)
        assert (
            PerformanceSimulator(fast).simulate(small_network).latency_ms
            < PerformanceSimulator(slow).simulate(small_network).latency_ms
        )

    def test_small_model_fully_cached_everywhere(self, small_network):
        for config in STUDIED_CONFIGS.values():
            result = PerformanceSimulator(config).simulate(small_network)
            assert result.fully_cached

    def test_large_model_streams_weights_on_v2(self, best_network):
        result = PerformanceSimulator(EDGE_TPU_V2).simulate(best_network)
        assert not result.fully_cached
        assert result.streamed_weight_bytes > 0.5 * result.total_weight_bytes

    def test_best_model_ordering_matches_table4(self, best_network):
        latencies = {
            name: PerformanceSimulator(config).simulate(best_network).latency_ms
            for name, config in STUDIED_CONFIGS.items()
        }
        # Paper Table 4: V2 fastest, then V3, then V1 for the best-accuracy model.
        assert latencies["V2"] < latencies["V3"] < latencies["V1"]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_energy_exceeds_static_floor(self, seed):
        network = build_network(random_cell(np.random.default_rng(seed)))
        result = PerformanceSimulator(EDGE_TPU_V1).simulate(network)
        assert result.energy_mj > 0
        assert result.latency_ms > 0


class TestBatchEvaluation:
    def test_measurement_set_alignment(self, dataset, measurements):
        assert isinstance(measurements, MeasurementSet)
        assert set(measurements.config_names) == {"V1", "V2", "V3"}
        for name in measurements.config_names:
            assert len(measurements.latencies(name)) == len(dataset)

    def test_energy_availability_per_config(self, measurements):
        assert measurements.has_energy("V1")
        assert measurements.has_energy("V2")
        assert not measurements.has_energy("V3")

    def test_record_accessors(self, dataset, measurements):
        record = dataset[0]
        assert measurements.latency_of(record, "V1") == measurements.latencies("V1")[0]
        assert measurements.energy_of(record, "V3") is None

    def test_best_config_per_model(self, measurements):
        winners = measurements.best_config_per_model()
        assert len(winners) == len(measurements.dataset)
        assert set(winners) <= {"V1", "V2", "V3"}

    def test_subset_masking(self, measurements):
        mask = measurements.accuracy_mask(0.70)
        subset = measurements.subset(mask)
        assert subset.size == int(mask.sum())
        assert len(subset.latencies("V1")) == subset.size
        assert len(subset.records()) == subset.size

    def test_subset_shape_mismatch_rejected(self, measurements):
        with pytest.raises(SimulationError):
            measurements.subset(np.ones(3, dtype=bool))

    def test_empty_config_list_rejected(self, dataset):
        with pytest.raises(SimulationError):
            evaluate_dataset(dataset, configs=[])

    def test_simulate_records_returns_details(self, dataset):
        results = simulate_records(dataset.records[:2], EDGE_TPU_V1)
        assert len(results) == 2
        assert all(result.layer_results for result in results)

    def test_caching_ablation_changes_results(self):
        small = NASBenchDataset.generate(num_models=10, seed=2)
        with_cache = evaluate_dataset(small, configs=[EDGE_TPU_V1])
        without_cache = evaluate_dataset(
            small, configs=[EDGE_TPU_V1], enable_parameter_caching=False
        )
        assert without_cache.latencies("V1").mean() >= with_cache.latencies("V1").mean()


class TestMeasurementSetValidation:
    """Regression: both array dicts are validated, not just latencies."""

    def _arrays(self, dataset):
        n = len(dataset)
        return (
            {"V1": np.ones(n), "V2": np.ones(n)},
            {"V1": np.ones(n), "V2": np.full(n, np.nan)},
        )

    def test_consistent_arrays_accepted(self, dataset):
        latencies, energies = self._arrays(dataset)
        measurements = MeasurementSet(dataset, latencies, energies)
        assert set(measurements.config_names) == {"V1", "V2"}

    def test_mismatched_latency_length_rejected(self, dataset):
        latencies, energies = self._arrays(dataset)
        latencies["V1"] = latencies["V1"][:-1]
        with pytest.raises(SimulationError, match="latency array for V1"):
            MeasurementSet(dataset, latencies, energies)

    def test_mismatched_energy_length_rejected(self, dataset):
        # Previously passed silently and exploded later during masking.
        latencies, energies = self._arrays(dataset)
        energies["V2"] = energies["V2"][:-1]
        with pytest.raises(SimulationError, match="energy array for V2"):
            MeasurementSet(dataset, latencies, energies)

    def test_missing_energy_config_rejected(self, dataset):
        latencies, energies = self._arrays(dataset)
        del energies["V2"]
        with pytest.raises(SimulationError, match="different configurations"):
            MeasurementSet(dataset, latencies, energies)

    def test_extra_energy_config_rejected(self, dataset):
        latencies, energies = self._arrays(dataset)
        energies["V3"] = np.full(len(dataset), np.nan)
        with pytest.raises(SimulationError, match="different configurations"):
            MeasurementSet(dataset, latencies, energies)


class RecordingCallback:
    """Collects ``(config_name, done, total)`` progress ticks."""

    def __init__(self):
        self.ticks = []

    def __call__(self, config_name, done, total):
        self.ticks.append((config_name, done, total))

    def per_config(self, config_name):
        return [done for name, done, _ in self.ticks if name == config_name]


class TestProgressReporting:
    @pytest.fixture(scope="class")
    def tiny(self):
        return NASBenchDataset.generate(num_models=12, seed=6)

    def test_scalar_strategy_emits_final_tick(self, tiny):
        # Regression: with total % 500 != 0 the scalar walk previously never
        # reported completion at all for small populations.
        recorder = RecordingCallback()
        evaluate_dataset(
            tiny, configs=[EDGE_TPU_V1, EDGE_TPU_V2],
            strategy="scalar", progress_callback=recorder,
        )
        assert recorder.ticks == [("V1", 12, 12), ("V2", 12, 12)]

    def test_vectorized_strategy_emits_final_tick(self, tiny):
        recorder = RecordingCallback()
        evaluate_dataset(
            tiny, configs=[EDGE_TPU_V1], strategy="vectorized",
            progress_callback=recorder,
        )
        assert recorder.ticks == [("V1", 12, 12)]

    def test_scalar_and_vectorized_agree_on_completion(self, tiny):
        scalar, vectorized = RecordingCallback(), RecordingCallback()
        evaluate_dataset(tiny, configs=[EDGE_TPU_V1], strategy="scalar", progress_callback=scalar)
        evaluate_dataset(tiny, configs=[EDGE_TPU_V1], strategy="vectorized",
                         progress_callback=vectorized)
        assert scalar.ticks[-1] == vectorized.ticks[-1] == ("V1", 12, 12)

    def test_sharded_sweep_reports_per_shard(self, tiny):
        # Regression: n_jobs > 1 previously fired every tick only after all
        # shards had completed; now each resolving future ticks.
        recorder = RecordingCallback()
        evaluate_dataset(
            tiny, configs=[EDGE_TPU_V1, EDGE_TPU_V3], n_jobs=3,
            progress_callback=recorder,
        )
        for name in ("V1", "V3"):
            counts = recorder.per_config(name)
            assert len(counts) == 3  # one tick per shard
            assert counts == sorted(counts)
            assert counts[-1] == 12
            assert counts[0] < 12  # progress was reported before the end
