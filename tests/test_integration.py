"""End-to-end integration tests: the paper's qualitative findings hold.

These tests exercise the whole pipeline (dataset generation -> compilation ->
simulation -> analysis -> learned model) and assert the qualitative results
the paper reports, rather than unit-level behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EDGE_TPU_V1,
    NASBenchDataset,
    PerformanceSimulator,
    build_network,
)
from repro.analysis import (
    crossover_analysis,
    summarize_all,
    winner_buckets,
)
from repro.core import LearnedPerformanceModel, TrainingSettings
from repro.nasbench import (
    BEST_ACCURACY_CELL,
    DEEP_CONV_HEAVY_CELL,
    SECOND_BEST_ACCURACY_CELL,
    SHALLOW_CONV_HEAVY_CELL,
)


class TestPaperFindings:
    def test_table3_average_latency_ordering(self, measurements):
        """Paper Table 3: V1 has the lowest average latency, V3 the highest."""
        summaries = summarize_all(measurements)
        assert (
            summaries["V1"].avg_latency_ms
            < summaries["V2"].avg_latency_ms
            <= summaries["V3"].avg_latency_ms
        )

    def test_table3_minimum_latency_on_high_clock_configs(self, measurements):
        """Paper Table 3: the smallest models run fastest on V2/V3, not V1."""
        summaries = summarize_all(measurements)
        assert summaries["V2"].min_latency.value <= summaries["V1"].min_latency.value

    def test_table5_v1_wins_most_models(self, measurements):
        """Paper Table 5: the V1 bucket holds the large majority of models."""
        buckets = winner_buckets(measurements)
        assert buckets["V1"].num_models > 0.7 * len(measurements.dataset)

    def test_table5_v2_bucket_holds_large_models(self, measurements):
        """Paper Table 5/6: the V2-won models are the large, slow ones."""
        buckets = winner_buckets(measurements)
        if buckets["V2"].num_models == 0:
            pytest.skip("sample contains no V2-won models")
        v1_bucket_latency = buckets["V1"].avg_latency_ms["V1"]
        v2_bucket_latency = buckets["V2"].avg_latency_ms["V2"]
        assert v2_bucket_latency > v1_bucket_latency

    def test_figure14_crossover(self, measurements):
        """Paper Figure 14: V1 wins the mid-size band, V2 wins the largest band."""
        bands = crossover_analysis(measurements, band_edges=(0.0, 2e6, 5e6, 30e6, 1e9))
        by_band = {band.lower_parameters: band for band in bands}
        mid_band = by_band.get(5e6)
        large_band = by_band.get(30e6)
        if mid_band is not None:
            assert mid_band.fastest_config == "V1"
        if large_band is not None:
            assert large_band.fastest_config == "V2"

    def test_figure6_energy_crossover(self, measurements):
        """Paper Figure 6: V2 is the more energy-efficient class on small models."""
        parameters = measurements.dataset.parameter_counts()
        small = parameters < 3e6
        v1_energy = np.nanmean(measurements.energies("V1")[small])
        v2_energy = np.nanmean(measurements.energies("V2")[small])
        assert v2_energy < v1_energy

    def test_figure7_and_8_latency_trends(self):
        """Paper Figures 7/8: V2 wins the best-accuracy model, V1 the runner-up."""
        latencies = {}
        for name in ("V1", "V2", "V3"):
            from repro import get_config

            simulator = PerformanceSimulator(get_config(name))
            latencies[name] = {
                "best": simulator.simulate(build_network(BEST_ACCURACY_CELL)).latency_ms,
                "second": simulator.simulate(
                    build_network(SECOND_BEST_ACCURACY_CELL)
                ).latency_ms,
            }
        # Figure 7: V2 yields the lowest latency for the highest-accuracy model.
        assert latencies["V2"]["best"] < latencies["V1"]["best"]
        assert latencies["V2"]["best"] < latencies["V3"]["best"]
        # Figure 8: the runner-up favours V1 and is much faster than the best model.
        assert latencies["V1"]["second"] < latencies["V2"]["second"]
        assert latencies["V1"]["second"] < 0.6 * latencies["V1"]["best"]

    def test_figure13_shallow_vs_deep_conv_heavy_cells(self):
        """Paper Figure 13: same op multiset, very different latency by depth."""
        simulator = PerformanceSimulator(EDGE_TPU_V1)
        shallow = simulator.simulate(build_network(SHALLOW_CONV_HEAVY_CELL)).latency_ms
        deep = simulator.simulate(build_network(DEEP_CONV_HEAVY_CELL)).latency_ms
        assert deep > 5 * shallow

    def test_parameter_caching_is_the_v1_advantage(self, measurements):
        """Disabling parameter caching erases V1's average-latency lead."""
        dataset = NASBenchDataset.generate(num_models=40, seed=77)
        from repro.simulator import evaluate_dataset

        cached = evaluate_dataset(dataset)
        uncached = evaluate_dataset(dataset, enable_parameter_caching=False)
        cached_gap = cached.latencies("V2").mean() - cached.latencies("V1").mean()
        uncached_gap = uncached.latencies("V2").mean() - uncached.latencies("V1").mean()
        assert cached_gap > uncached_gap

    def test_learned_model_end_to_end(self, dataset, measurements):
        """A small learned model reaches useful rank correlation on held-out data."""
        cells = [record.cell for record in dataset.records]
        latencies = measurements.latencies("V1")
        model = LearnedPerformanceModel(
            "V1",
            TrainingSettings(epochs=40, batch_size=16, learning_rate=3e-3, seed=1),
        )
        model.fit(cells, latencies)
        report = model.evaluate("test")
        assert report.spearman > 0.55
        assert report.average_accuracy > 0.4
        # Prediction is orders of magnitude faster than simulation and positive.
        prediction = model.predict_cell(BEST_ACCURACY_CELL)
        assert prediction > 0
