"""Tests for the hardware-aware architecture search subsystem.

Covers the mutation layer (validity, budgets, dedup), the Pareto archive
(dominance, hypervolume, persistence), the search engine (determinism, the
evolution/predictor > random regression at fixed budget, store-backed
resumption) and the cached pipeline entry point.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis import ParetoArchive, hypervolume_2d
from repro.core import TrainingSettings
from repro.errors import DatasetError, SearchError
from repro.nasbench import (
    MAX_EDGES,
    MAX_VERTICES,
    Cell,
    CONV1X1,
    CONV3X3,
    INPUT,
    OUTPUT,
    mutate_cell,
    mutate_unique,
    random_cell,
    swap_op,
)
from repro.pipeline import (
    SearchExperiment,
    load_search_archive,
    run_search_experiment,
)
from repro.search import STRATEGIES, SearchEngine, SearchSpec
from repro.service import MeasurementStore


def small_spec(strategy: str, **overrides) -> SearchSpec:
    """The pinned micro-budget spec shared by the engine tests.

    The 0.92 accuracy floor makes the objective discriminative (at the
    paper's 0.70 floor a latency-minimal feasible cell is found by random
    sampling almost immediately) while staying well below the 0.9485 generic
    accuracy ceiling.
    """
    parameters = dict(
        strategy=strategy,
        population_size=12,
        generations=5,
        seed=7,
        tournament_size=4,
        pool_factor=3,
        min_accuracy=0.92,
        predictor_settings=TrainingSettings(epochs=4),
    )
    parameters.update(overrides)
    return SearchSpec(**parameters)


# --------------------------------------------------------------------------- #
# Mutation layer
# --------------------------------------------------------------------------- #
class TestMutation:
    def test_mutants_are_valid_pruned_and_in_budget(self):
        rng = np.random.default_rng(0)
        cell = random_cell(rng)
        for _ in range(200):
            cell = mutate_cell(cell, rng)
            assert cell.is_valid()
            assert cell.num_vertices <= MAX_VERTICES
            assert cell.num_edges <= MAX_EDGES
            assert cell.prune().num_vertices == cell.num_vertices

    def test_mutation_always_changes_the_model(self):
        rng = np.random.default_rng(1)
        cell = random_cell(rng)
        for _ in range(50):
            assert mutate_cell(cell, rng) != cell

    def test_mutation_respects_tighter_budgets(self):
        rng = np.random.default_rng(2)
        cell = random_cell(rng, max_vertices=5, max_edges=6)
        for _ in range(100):
            cell = mutate_cell(cell, rng, max_vertices=5, max_edges=6)
            assert cell.num_vertices <= 5
            assert cell.num_edges <= 6

    def test_swap_op_relabels_one_interior_vertex(self):
        cell = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV3X3, OUTPUT])
        swapped = swap_op(cell, np.random.default_rng(0))
        assert swapped.matrix == cell.matrix
        assert swapped.interior_ops != cell.interior_ops

    def test_trivial_cell_has_no_swap_or_removal(self):
        trivial = Cell([[0, 1], [0, 0]], [INPUT, OUTPUT])
        # Only edge_flip (invalid: removes the sole edge) applies among these
        # two kinds, so the driver must give up cleanly.
        with pytest.raises(DatasetError):
            mutate_cell(
                trivial,
                np.random.default_rng(0),
                kinds=("op_swap", "vertex_remove"),
            )

    def test_mutate_unique_rejects_seen_models(self):
        rng = np.random.default_rng(3)
        cell = random_cell(rng)
        seen = {cell}
        for _ in range(30):
            mutant = mutate_unique(cell, rng, seen)
            assert mutant not in seen
            seen.add(mutant)

    def test_mutate_unique_raises_when_neighborhood_is_exhausted(self):
        chain = Cell([[0, 1, 0], [0, 0, 1], [0, 0, 0]], [INPUT, CONV1X1, OUTPUT])
        rng = np.random.default_rng(4)
        # Only op swaps are allowed, so the neighborhood has two models.
        seen = {chain, swap_op(chain, rng), swap_op(chain, rng)}
        for _ in range(10):
            seen.add(swap_op(chain, rng))
        with pytest.raises(DatasetError, match="already seen"):
            mutate_unique(chain, rng, seen, kinds=("op_swap",), max_attempts=10)


# --------------------------------------------------------------------------- #
# Pareto archive
# --------------------------------------------------------------------------- #
def _cell_for(op: str, *more_ops: str) -> Cell:
    ops = (op, *more_ops)
    n = len(ops) + 2
    matrix = np.zeros((n, n), dtype=int)
    for i in range(n - 1):
        matrix[i, i + 1] = 1
    return Cell(matrix, (INPUT, *ops, OUTPUT))


class TestParetoArchive:
    def test_hypervolume_2d_exact_value(self):
        costs = np.array([1.0, 2.0])
        accuracies = np.array([0.5, 0.8])
        # Boxes: (3-1)*(0.5-0) + (3-2)*(0.8-0.5) = 1.0 + 0.3
        assert hypervolume_2d(costs, accuracies, 3.0, 0.0) == pytest.approx(1.3)

    def test_hypervolume_ignores_dominated_and_out_of_box_points(self):
        costs = np.array([1.0, 2.0, 1.5, 10.0])
        accuracies = np.array([0.5, 0.8, 0.4, 0.1])  # third dominated, fourth out
        assert hypervolume_2d(costs, accuracies, 3.0, 0.0) == pytest.approx(1.3)

    def test_update_keeps_only_the_non_dominated_set(self):
        archive = ParetoArchive(ref_cost=10.0)
        a, b, c = _cell_for(CONV3X3), _cell_for(CONV1X1), _cell_for(CONV3X3, CONV1X1)
        assert archive.update(a, cost=2.0, accuracy=0.8)
        assert archive.update(b, cost=1.0, accuracy=0.7)  # trade-off: kept
        assert not archive.update(c, cost=2.5, accuracy=0.75)  # dominated by a
        assert len(archive) == 2
        # A point dominating `a` evicts it.
        assert archive.update(c, cost=1.5, accuracy=0.9)
        assert len(archive) == 2
        assert a not in archive and b in archive and c in archive

    def test_duplicate_and_non_finite_points_are_rejected(self):
        archive = ParetoArchive(ref_cost=10.0)
        cell = _cell_for(CONV3X3)
        assert archive.update(cell, cost=1.0, accuracy=0.8)
        assert not archive.update(cell, cost=0.5, accuracy=0.9)  # same model
        assert not archive.update(_cell_for(CONV1X1), cost=np.inf, accuracy=0.9)

    def test_checkpoint_history_is_monotone(self):
        rng = np.random.default_rng(5)
        archive = ParetoArchive(ref_cost=5.0)
        for generation in range(6):
            cell = random_cell(rng)
            archive.update(
                cell,
                cost=float(rng.uniform(0.1, 4.9)),
                accuracy=float(rng.uniform(0.5, 0.95)),
                generation=generation,
            )
            archive.checkpoint()
        history = archive.hypervolume_history
        assert len(history) == 6
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_save_load_round_trip(self, tmp_path):
        archive = ParetoArchive(ref_cost=10.0, ref_accuracy=0.1)
        archive.update(_cell_for(CONV3X3), cost=2.0, accuracy=0.8, generation=1)
        archive.update(_cell_for(CONV1X1), cost=1.0, accuracy=0.7, generation=2)
        archive.checkpoint()
        path = archive.save(tmp_path / "archive.npz")
        loaded = ParetoArchive.load(path)
        assert loaded.ref_cost == archive.ref_cost
        assert loaded.ref_accuracy == archive.ref_accuracy
        assert loaded.hypervolume_history == archive.hypervolume_history
        assert [e.fingerprint for e in loaded.entries] == [e.fingerprint for e in archive.entries]
        assert [e.cell for e in loaded.entries] == [e.cell for e in archive.entries]
        assert loaded.hypervolume() == pytest.approx(archive.hypervolume())

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="no archive file"):
            ParetoArchive.load(tmp_path / "absent.npz")

    def test_update_many_validates_lengths(self):
        archive = ParetoArchive(ref_cost=1.0)
        with pytest.raises(DatasetError):
            archive.update_many([_cell_for(CONV3X3)], np.array([1.0, 2.0]), np.array([0.5]))


# --------------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------------- #
class TestSearchSpec:
    def test_rejects_unknown_strategy_and_metric(self):
        with pytest.raises(SearchError):
            SearchSpec(strategy="annealing")
        with pytest.raises(SearchError):
            SearchSpec(metric="area")

    def test_rejects_degenerate_budgets(self):
        with pytest.raises(SearchError):
            SearchSpec(population_size=1)
        with pytest.raises(SearchError):
            SearchSpec(generations=0)
        with pytest.raises(SearchError):
            SearchSpec(pool_factor=1)
        with pytest.raises(SearchError):
            SearchSpec(strategy="predictor", population_size=8)

    def test_energy_objective_requires_an_energy_model(self):
        with pytest.raises(SearchError, match="no energy model"):
            SearchEngine(small_spec("evolution", metric="energy", config_name="V3"))

    def test_simulation_budget(self):
        assert small_spec("random").simulation_budget == 60


# --------------------------------------------------------------------------- #
# Engine behavior
# --------------------------------------------------------------------------- #
class TestSearchEngine:
    def test_runs_are_deterministic(self):
        a = SearchEngine(small_spec("evolution", generations=3)).run()
        b = SearchEngine(small_spec("evolution", generations=3)).run()
        assert a.best_objective == b.best_objective
        assert [r.fingerprint for r in a.dataset] == [r.fingerprint for r in b.dataset]
        assert [g.hypervolume for g in a.generations] == [g.hypervolume for g in b.generations]

    def test_budget_is_respected_and_history_unique(self):
        result = SearchEngine(small_spec("random")).run()
        assert result.num_evaluated == result.spec.simulation_budget
        fingerprints = [record.fingerprint for record in result.dataset]
        assert len(fingerprints) == len(set(fingerprints))
        assert len(result.generations) == result.spec.generations

    def test_best_objective_meets_the_accuracy_floor(self):
        result = SearchEngine(small_spec("evolution")).run()
        assert np.isfinite(result.best_objective)
        assert result.best_accuracy >= result.spec.min_accuracy
        assert result.best_objective == result.measurements.latencies("V1")[result.best_index]

    def test_hypervolume_trajectory_is_monotone(self):
        result = SearchEngine(small_spec("evolution")).run()
        history = [row.hypervolume for row in result.generations]
        assert history == result.archive.hypervolume_history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_evolution_and_predictor_beat_random_at_equal_budget(self):
        """The acceptance regression: same seed, same simulation budget,
        same accuracy floor — both informed strategies must find a strictly
        faster feasible model than the random baseline."""
        best = {
            strategy: SearchEngine(small_spec(strategy)).run().best_objective
            for strategy in STRATEGIES
        }
        assert np.isfinite(best["random"])
        assert best["evolution"] < best["random"]
        assert best["predictor"] < best["random"]

    def test_killed_search_resumes_with_only_missing_generations(self, tmp_path):
        spec = small_spec("evolution")
        partial = dataclasses.replace(spec, generations=2)
        SearchEngine(
            partial, store=MeasurementStore(tmp_path, shard_size=spec.population_size)
        ).run()

        resumed_store = MeasurementStore(tmp_path, shard_size=spec.population_size)
        resumed = SearchEngine(spec, store=resumed_store).run()
        # Exactly the generations the killed run never reached are simulated.
        assert resumed_store.stats.pairs_simulated == spec.generations - 2

        fresh = SearchEngine(spec).run()
        assert resumed.best_objective == fresh.best_objective
        assert [r.fingerprint for r in resumed.dataset] == [r.fingerprint for r in fresh.dataset]

        # A second full run over the warm store is a pure replay.
        replay_store = MeasurementStore(tmp_path, shard_size=spec.population_size)
        replay = SearchEngine(spec, store=replay_store).run()
        assert replay_store.stats.pairs_simulated == 0
        assert replay.best_objective == fresh.best_objective

    def test_predictor_search_resumes_too(self, tmp_path):
        spec = small_spec("predictor", generations=4)
        partial = dataclasses.replace(spec, generations=3)
        SearchEngine(
            partial, store=MeasurementStore(tmp_path, shard_size=spec.population_size)
        ).run()
        store = MeasurementStore(tmp_path, shard_size=spec.population_size)
        resumed = SearchEngine(spec, store=store).run()
        assert store.stats.pairs_simulated == 1
        assert resumed.best_objective == SearchEngine(spec).run().best_objective

    def test_misaligned_store_shards_are_rejected(self, tmp_path):
        store = MeasurementStore(tmp_path, shard_size=5)
        with pytest.raises(SearchError, match="shard size"):
            SearchEngine(small_spec("evolution"), store=store)

    def test_parameter_caching_mismatch_is_rejected(self, tmp_path):
        store = MeasurementStore(tmp_path, shard_size=12, enable_parameter_caching=False)
        with pytest.raises(SearchError, match="parameter"):
            SearchEngine(small_spec("evolution"), store=store)

    def test_summary_lines_render(self):
        result = SearchEngine(small_spec("random", generations=2)).run()
        lines = result.summary_lines()
        assert len(lines) == 2 + result.spec.generations
        assert "random" in lines[0]


# --------------------------------------------------------------------------- #
# Pipeline entry point
# --------------------------------------------------------------------------- #
class TestSearchExperiment:
    def test_run_then_replay(self, tmp_path):
        experiment = SearchExperiment(name="unit", spec=small_spec("evolution", generations=3))
        first = run_search_experiment(experiment, cache_dir=tmp_path)
        second = run_search_experiment(experiment, cache_dir=tmp_path)
        assert not first.replayed
        assert second.replayed
        assert first.result.best_objective == second.result.best_objective

        archive = load_search_archive(experiment, tmp_path)
        assert len(archive) == len(first.result.archive)
        assert archive.hypervolume_history == first.result.archive.hypervolume_history

    def test_key_ignores_the_name_but_not_the_spec(self):
        spec = small_spec("evolution")
        assert (
            SearchExperiment("a", spec).search_key()
            == SearchExperiment("b", spec).search_key()
        )
        assert (
            SearchExperiment("a", spec).search_key()
            != SearchExperiment("a", dataclasses.replace(spec, seed=8)).search_key()
        )

    def test_runs_without_a_cache_directory(self):
        experiment = SearchExperiment(name="ephemeral", spec=small_spec("random", generations=2))
        outcome = run_search_experiment(experiment)
        assert not outcome.replayed
        assert outcome.archive_path is None
        assert np.isfinite(outcome.result.best_objective)
