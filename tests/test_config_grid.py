"""Equivalence tests for the config-axis vectorized sweep.

The grid path (:meth:`BatchSimulator.evaluate_table_grid`, one
``(num_configs, num_layers)`` pass) must be **bit-for-bit** the per-config
loop (:meth:`BatchSimulator.evaluate_table`, the equivalence oracle kept
from PR 1): both run the same kernels over the same float64/int64 values,
only with the configuration scalars broadcast as columns, so exact equality
— not a tolerance — is asserted throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import (
    EDGE_TPU_V1,
    EDGE_TPU_V2,
    STUDIED_CONFIGS,
    ConfigTable,
)
from repro.compiler.param_cache import greedy_cache_assign
from repro.errors import InvalidConfigError
from repro.nasbench import NASBenchDataset
from repro.nasbench.layer_table import LayerTable
from repro.service import MeasurementStore
from repro.simulator import BatchSimulator

#: Three studied classes plus three mutated designs covering the clock,
#: geometry, lane and cache-fraction axes (>= 3 mutated configurations).
MUTATED_CONFIGS = [
    EDGE_TPU_V1.with_overrides(name="hw-fast-clock", clock_mhz=1250.0),
    EDGE_TPU_V1.with_overrides(
        name="hw-wide-grid", pes_x=8, pes_y=2, compute_lanes=32
    ),
    EDGE_TPU_V2.with_overrides(
        name="hw-small-cache", pe_memory_cache_fraction=0.25, cores_per_pe=2
    ),
]
GRID_CONFIGS = list(STUDIED_CONFIGS.values()) + MUTATED_CONFIGS


@pytest.fixture(scope="module")
def grid_dataset():
    return NASBenchDataset.generate(num_models=36, seed=11)


@pytest.fixture(scope="module")
def grid_table(grid_dataset):
    networks = [record.build_network(grid_dataset.network_config) for record in grid_dataset]
    return LayerTable.from_networks(networks)


class TestConfigTable:
    def test_columns_are_broadcastable(self):
        table = ConfigTable(GRID_CONFIGS)
        assert len(table) == len(GRID_CONFIGS)
        assert table.num_pes.shape == (len(GRID_CONFIGS), 1)
        assert table.macs_per_cycle.shape == (len(GRID_CONFIGS), 1)
        assert table.clock_hz.shape == (len(GRID_CONFIGS), 1)

    def test_derived_columns_match_scalar_properties(self):
        table = ConfigTable(GRID_CONFIGS)
        for index, config in enumerate(GRID_CONFIGS):
            assert table.row(index) is config
            assert int(table.num_pes[index, 0]) == config.num_pes
            assert int(table.macs_per_cycle[index, 0]) == config.macs_per_cycle
            assert float(table.peak_tops[index, 0]) == config.peak_tops
            assert (
                int(table.total_on_chip_memory_bytes[index, 0])
                == config.total_on_chip_memory_bytes
            )

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(InvalidConfigError):
            ConfigTable([])
        with pytest.raises(InvalidConfigError, match="V1"):
            ConfigTable([EDGE_TPU_V1, EDGE_TPU_V1])

    def test_from_configs_passes_through_tables(self):
        table = ConfigTable(GRID_CONFIGS)
        assert ConfigTable.from_configs(table) is table


class TestGridEquivalence:
    """Config-axis pass vs. the per-config loop: exact, both caching modes."""

    @pytest.mark.parametrize("caching", [True, False])
    def test_grid_matches_per_config_loop_bit_for_bit(self, grid_table, caching):
        simulator = BatchSimulator(enable_parameter_caching=caching)
        grid_latency, grid_energy = simulator.evaluate_table_grid(grid_table, GRID_CONFIGS)
        assert grid_latency.shape == (len(GRID_CONFIGS), grid_table.num_models)
        for index, config in enumerate(GRID_CONFIGS):
            latency, energy = simulator.evaluate_table(grid_table, config)
            np.testing.assert_array_equal(grid_latency[index], latency)
            np.testing.assert_array_equal(grid_energy[index], energy)

    def test_energy_rows_without_model_are_nan(self, grid_table):
        simulator = BatchSimulator()
        _, energy = simulator.evaluate_table_grid(grid_table, GRID_CONFIGS)
        names = [config.name for config in GRID_CONFIGS]
        v3 = names.index("V3")
        assert np.isnan(energy[v3]).all()
        for index, name in enumerate(names):
            if name != "V3":
                assert np.isfinite(energy[index]).all()

    @pytest.mark.parametrize("caching", [True, False])
    def test_evaluate_measurement_set_uses_grid_results(self, grid_dataset, caching):
        simulator = BatchSimulator(enable_parameter_caching=caching)
        measurements = simulator.evaluate(grid_dataset, configs=GRID_CONFIGS)
        networks = [record.build_network(grid_dataset.network_config) for record in grid_dataset]
        table = LayerTable.from_networks(networks)
        for config in GRID_CONFIGS:
            latency, energy = simulator.evaluate_table(table, config)
            np.testing.assert_array_equal(measurements.latencies(config.name), latency)
            np.testing.assert_array_equal(measurements.energies(config.name), energy)

    def test_store_extend_persists_grid_results(self, grid_dataset, grid_table, tmp_path):
        store = MeasurementStore(tmp_path, shard_size=12)
        simulator = BatchSimulator()
        measurements = store.extend(grid_dataset, configs=GRID_CONFIGS)
        assert store.stats.pairs_simulated == 3 * len(GRID_CONFIGS)
        for config in GRID_CONFIGS:
            latency, energy = simulator.evaluate_table(grid_table, config)
            np.testing.assert_array_equal(measurements.latencies(config.name), latency)
            np.testing.assert_array_equal(measurements.energies(config.name), energy)
        # A rerun over the warm store loads every pair and simulates nothing.
        warm = MeasurementStore(tmp_path, shard_size=12)
        warm.extend(grid_dataset, configs=GRID_CONFIGS)
        assert warm.stats.pairs_simulated == 0
        assert warm.stats.pairs_loaded == 3 * len(GRID_CONFIGS)


class TestBatchedGreedyCacheAssign:
    def test_batched_capacity_matches_per_row_scans(self, grid_table):
        capacities = np.array(
            [
                [0] * grid_table.num_models,
                [64 * 1024] * grid_table.num_models,
                [10**7] * grid_table.num_models,
            ],
            dtype=np.int64,
        )
        batched = greedy_cache_assign(grid_table.weight_bytes, grid_table.model_offsets, capacities)
        assert batched.shape == (3, len(grid_table))
        for row in range(3):
            single = greedy_cache_assign(
                grid_table.weight_bytes, grid_table.model_offsets, capacities[row]
            )
            np.testing.assert_array_equal(batched[row], single)
        assert not batched[0].any()
        assert batched[2].sum() > batched[1].sum()
