"""Tests for the analysis package (tables and figures helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    accuracy_annotations,
    accuracy_by_structure,
    accuracy_latency_scatter,
    best_model_report,
    bucket_characteristics,
    bucket_records,
    bucket_speedups,
    crossover_analysis,
    energy_latency_linear_fit,
    latency_accuracy_frontier,
    latency_by_structure,
    latency_energy_scatter,
    latency_extremes_for_conv_count,
    latency_parameter_correlation,
    operation_count_vs_latency,
    operation_swap_matrix,
    pareto_front_indices,
    pareto_front_mask,
    parameters_by_depth,
    parameters_vs_latency,
    summarize_all,
    summarize_configuration,
    swap_operations,
    top_models_by_accuracy,
    winner_buckets,
)
from repro.arch import EDGE_TPU_V2
from repro.errors import DatasetError
from repro.nasbench import CONV1X1, CONV3X3, MAXPOOL3X3
from repro.nasbench.famous_cells import BEST_ACCURACY_CELL


class TestSummary:
    def test_table3_summary_structure(self, measurements):
        summaries = summarize_all(measurements)
        assert set(summaries) == {"V1", "V2", "V3"}
        for name, summary in summaries.items():
            assert summary.min_latency.value <= summary.avg_latency_ms <= summary.max_latency.value
            assert 0.0 < summary.min_latency.accuracy <= 1.0
            assert (summary.avg_energy_mj is not None) == (name != "V3")

    def test_accuracy_filter_reduces_population(self, measurements):
        full = summarize_configuration(measurements, "V1", min_accuracy=0.0)
        filtered = summarize_configuration(measurements, "V1", min_accuracy=0.70)
        assert filtered.num_models <= full.num_models

    def test_impossible_filter_raises(self, measurements):
        with pytest.raises(DatasetError):
            summarize_configuration(measurements, "V1", min_accuracy=2.0)

    def test_table4_best_model(self, measurements):
        report = best_model_report(measurements)
        # The dataset always contains the paper's Figure 7 cell, which the
        # surrogate accuracy model pins at 95.055%.
        assert report.accuracy == pytest.approx(0.95055)
        assert set(report.latency_ms) == {"V1", "V2", "V3"}
        assert report.energy_mj["V3"] is None
        assert report.latency_ms["V2"] < report.latency_ms["V1"]

    def test_figure6_scatter_and_fit(self, measurements):
        points = latency_energy_scatter(measurements, "V1")
        assert all(point.energy_mj > 0 for point in points)
        slope, intercept = energy_latency_linear_fit(points)
        assert slope > 0  # energy grows with latency (Figure 6 linearity)

    def test_fit_requires_two_points(self):
        with pytest.raises(DatasetError):
            energy_latency_linear_fit([])


class TestBuckets:
    def test_buckets_partition_the_population(self, measurements):
        buckets = winner_buckets(measurements)
        assert sum(bucket.num_models for bucket in buckets.values()) == len(measurements.dataset)
        v1_bucket = buckets["V1"]
        assert v1_bucket.num_models > 0
        assert v1_bucket.avg_latency_ms["V1"] <= v1_bucket.avg_latency_ms["V2"]

    def test_bucket_characteristics(self, measurements):
        buckets = winner_buckets(measurements)
        characteristics = bucket_characteristics(measurements, buckets["V1"])
        assert characteristics.num_models == buckets["V1"].num_models
        assert characteristics.avg_trainable_parameters > 0
        assert 0 <= characteristics.avg_conv3x3 <= 5

    def test_bucket_records_roundtrip(self, measurements):
        buckets = winner_buckets(measurements)
        records = bucket_records(measurements, buckets["V1"])
        assert len(records) == buckets["V1"].num_models

    def test_bucket_speedups_reference_winner(self, measurements):
        buckets = winner_buckets(measurements)
        speedups = bucket_speedups(buckets["V1"])
        assert speedups["V1"] == pytest.approx(1.0)
        assert all(value >= 1.0 - 1e-9 for value in speedups.values())

    def test_empty_bucket_characteristics_raise(self, measurements):
        buckets = winner_buckets(measurements)
        empty = [b for b in buckets.values() if b.num_models == 0]
        for bucket in empty:
            with pytest.raises(DatasetError):
                bucket_characteristics(measurements, bucket)


class TestStructure:
    def test_accuracy_by_depth_covers_population(self, dataset):
        stats = accuracy_by_structure(dataset, "depth")
        assert sum(group.count for group in stats) == len(dataset)
        assert all(0.0 <= group.mean <= 1.0 for group in stats)

    def test_latency_by_width(self, measurements):
        stats = latency_by_structure(measurements, "V2", "width")
        assert all(group.minimum <= group.median <= group.maximum for group in stats)

    def test_table7_parameters_by_depth(self, dataset):
        rows = parameters_by_depth(dataset)
        assert sum(row.num_models for row in rows) == len(dataset)
        assert all(row.avg_trainable_parameters > 0 for row in rows)
        depths = [row.depth for row in rows]
        assert depths == sorted(depths)


class TestOperations:
    def test_figure12_groups(self, measurements):
        groups = operation_count_vs_latency(measurements, "V1", "conv3x3")
        assert sum(group.num_models for group in groups) == len(measurements.dataset)
        assert all(group.min_latency_ms <= group.avg_latency_ms for group in groups)
        with pytest.raises(DatasetError):
            operation_count_vs_latency(measurements, "V1", "conv5x5")

    def test_figure12_annotations(self, measurements):
        best, worst = accuracy_annotations(measurements, "conv3x3")
        assert best.accuracy >= worst.accuracy
        assert best.accuracy == pytest.approx(0.95055)

    def test_figure13_latency_extremes(self, measurements):
        fastest, slowest = latency_extremes_for_conv_count(measurements, "V2", 5)
        assert fastest.latency_ms <= slowest.latency_ms
        assert fastest.record.metrics.num_conv3x3 == 5
        assert slowest.record.metrics.num_conv3x3 == 5

    def test_figure14_series_and_correlation(self, measurements):
        parameters, latencies = parameters_vs_latency(measurements, "V1")
        assert parameters.shape == latencies.shape
        correlation = latency_parameter_correlation(measurements, "V1")
        # The paper: latency is mostly proportional to trainable parameters.
        assert correlation > 0.75

    def test_figure14_crossover_bands(self, measurements):
        bands = crossover_analysis(measurements)
        assert sum(band.num_models for band in bands) == len(measurements.dataset)
        for band in bands:
            assert band.fastest_config == min(band.avg_latency_ms, key=band.avg_latency_ms.get)


class TestPareto:
    def test_figure5_scatter(self, measurements):
        points = accuracy_latency_scatter(measurements, "V3")
        assert all(point.accuracy >= 0.70 for point in points)
        assert len(points) <= len(measurements.dataset)

    def test_figure9_top5(self, measurements):
        entries = top_models_by_accuracy(measurements, k=5)
        assert len(entries) == 5
        accuracies = [entry.accuracy for entry in entries]
        assert accuracies == sorted(accuracies, reverse=True)
        assert entries[0].accuracy == pytest.approx(0.95055)
        assert entries[0].speedup_over_best_model["V1"] == pytest.approx(1.0)
        for entry in entries:
            assert entry.fastest_config == min(entry.latency_ms, key=entry.latency_ms.get)

    def test_frontier_is_monotone(self, measurements):
        frontier = latency_accuracy_frontier(measurements, "V1")
        accuracies = [point.accuracy for point in frontier]
        assert accuracies == sorted(accuracies)

    def test_topk_requires_positive_k(self, measurements):
        with pytest.raises(DatasetError):
            top_models_by_accuracy(measurements, k=0)


class TestParetoFrontMask:
    def test_simple_frontier(self):
        latencies = np.array([1.0, 2.0, 3.0, 4.0])
        accuracies = np.array([0.5, 0.7, 0.6, 0.8])
        mask = pareto_front_mask(latencies, accuracies)
        assert mask.tolist() == [True, True, False, True]

    def test_latency_tie_keeps_only_most_accurate(self):
        # Regression: a dominated equal-latency point used to survive when it
        # appeared before the better point in input order.
        latencies = np.array([2.0, 2.0, 3.0])
        accuracies = np.array([0.6, 0.9, 0.95])
        mask = pareto_front_mask(latencies, accuracies)
        assert mask.tolist() == [False, True, True]
        # ... and regardless of input order.
        mask_reversed = pareto_front_mask(latencies[::-1].copy(), accuracies[::-1].copy())
        assert mask_reversed.tolist() == [True, True, False]

    def test_exact_duplicates_keep_first_occurrence(self):
        latencies = np.array([1.0, 1.0, 2.0])
        accuracies = np.array([0.8, 0.8, 0.9])
        mask = pareto_front_mask(latencies, accuracies)
        assert mask.tolist() == [True, False, True]

    def test_all_tied_latency_single_survivor(self):
        latencies = np.full(5, 3.0)
        accuracies = np.array([0.1, 0.5, 0.9, 0.4, 0.2])
        mask = pareto_front_mask(latencies, accuracies)
        assert mask.tolist() == [False, False, True, False, False]

    def test_empty_and_shape_validation(self):
        assert pareto_front_mask(np.zeros(0), np.zeros(0)).tolist() == []
        with pytest.raises(DatasetError):
            pareto_front_mask(np.zeros(3), np.zeros(4))
        with pytest.raises(DatasetError):
            pareto_front_mask(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_front_never_contains_dominated_pairs(self, measurements):
        latencies = measurements.latencies("V2")
        accuracies = measurements.dataset.accuracies()
        front_latency = latencies[pareto_front_mask(latencies, accuracies)]
        front_accuracy = accuracies[pareto_front_mask(latencies, accuracies)]
        for i in range(len(front_latency)):
            dominated = (
                (front_latency <= front_latency[i])
                & (front_accuracy >= front_accuracy[i])
                & ((front_latency < front_latency[i]) | (front_accuracy > front_accuracy[i]))
            )
            assert not dominated.any()

    def test_pareto_front_indices_sorted_by_latency(self, measurements):
        indices = pareto_front_indices(measurements, "V1")
        frontier = latency_accuracy_frontier(measurements, "V1")
        assert [point.model_index for point in frontier] == list(indices)
        latencies = measurements.latencies("V1")[indices]
        assert latencies.tolist() == sorted(latencies.tolist())


class TestMeasurementSubsetRoundTrip:
    """mask/records/latencies of a subset stay aligned with the parent set."""

    def test_subset_alignment(self, measurements):
        mask = measurements.accuracy_mask(0.70)
        subset = measurements.subset(mask)
        records = subset.records()
        assert subset.size == len(records) == int(mask.sum())
        assert np.array_equal(subset.mask, mask)
        for name in measurements.config_names:
            latencies = subset.latencies(name)
            energies = subset.energies(name)
            assert len(latencies) == subset.size == len(energies)
            for position, record in enumerate(records):
                assert latencies[position] == measurements.latencies(name)[record.index]
                np.testing.assert_equal(
                    energies[position], measurements.energies(name)[record.index]
                )
        accuracies = subset.accuracies()
        for position, record in enumerate(records):
            assert accuracies[position] == record.mean_validation_accuracy
            assert record.mean_validation_accuracy >= 0.70

    def test_empty_and_full_masks(self, measurements):
        total = len(measurements.dataset)
        empty = measurements.subset(np.zeros(total, dtype=bool))
        assert empty.size == 0 and empty.records() == []
        full = measurements.subset(np.ones(total, dtype=bool))
        assert full.size == total
        np.testing.assert_array_equal(full.latencies("V1"), measurements.latencies("V1"))


class TestSwaps:
    def test_swap_operations_relabels_vertices(self):
        swapped = swap_operations(BEST_ACCURACY_CELL, CONV3X3, CONV1X1)
        assert swapped is not None
        assert swapped.op_count(CONV3X3) == 0
        assert swapped.op_count(CONV1X1) == BEST_ACCURACY_CELL.op_count(CONV3X3)

    def test_swap_without_occurrence_returns_none(self):
        assert swap_operations(BEST_ACCURACY_CELL, MAXPOOL3X3, CONV1X1) is None
        assert swap_operations(BEST_ACCURACY_CELL, CONV3X3, CONV3X3) is None

    def test_swap_rejects_non_interior_ops(self):
        with pytest.raises(ValueError):
            swap_operations(BEST_ACCURACY_CELL, "input", CONV1X1)

    def test_figure15_matrix_signs(self, dataset):
        records = dataset.records[:40]
        matrix = operation_swap_matrix(records, EDGE_TPU_V2, max_models=40)
        # Replacing a 1x1 convolution by a 3x3 convolution increases latency...
        assert matrix.change_ms(CONV1X1, CONV3X3) > 0
        assert matrix.change_percent(CONV1X1, CONV3X3) > 0
        # ... and the reverse replacement decreases it.
        assert matrix.change_ms(CONV3X3, CONV1X1) < 0
        # Max-pool to 3x3 convolution also increases latency.
        assert matrix.change_ms(MAXPOOL3X3, CONV3X3) > 0
        # The diagonal is zero by definition.
        assert matrix.change_ms(CONV3X3, CONV3X3) == 0.0

    def test_figure15_subsampling_is_deterministic(self, dataset):
        records = dataset.records[:30]
        a = operation_swap_matrix(records, EDGE_TPU_V2, max_models=10, seed=3)
        b = operation_swap_matrix(records, EDGE_TPU_V2, max_models=10, seed=3)
        assert a.change_ms(CONV1X1, CONV3X3) == pytest.approx(b.change_ms(CONV1X1, CONV3X3))

    def test_figure15_vectorized_matches_scalar_reference(self, dataset):
        records = dataset.records[:15]
        vectorized = operation_swap_matrix(records, EDGE_TPU_V2)
        scalar = operation_swap_matrix(records, EDGE_TPU_V2, strategy="scalar")
        assert set(vectorized.impacts) == set(scalar.impacts)
        for pair, impact in vectorized.impacts.items():
            reference = scalar.impacts[pair]
            assert impact.num_swaps == reference.num_swaps, pair
            assert impact.avg_change_ms == pytest.approx(
                reference.avg_change_ms, rel=1e-9, abs=1e-12
            ), pair
            assert impact.avg_change_percent == pytest.approx(
                reference.avg_change_percent, rel=1e-9, abs=1e-12
            ), pair

    def test_figure15_unknown_strategy_rejected(self, dataset):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            operation_swap_matrix(dataset.records[:5], EDGE_TPU_V2, strategy="turbo")
