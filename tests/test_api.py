"""Tests of the typed query API (requests, envelope, keys, dispatch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import EDGE_TPU_V2, STUDIED_CONFIGS
from repro.core import TrainingSettings
from repro.errors import ServiceError
from repro.nasbench import NASBenchDataset, sample_unique_cells
from repro.service import MeasurementStore, SweepService
from repro.service.api import (
    EnergyRequest,
    LatencyRequest,
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryResponse,
    TopKRequest,
    cache_key,
    canonical_request_key,
    request_from_dict,
    resolve_configs,
)

SHARD = 8
CONFIGS = ("V1", "V3")


@pytest.fixture(scope="module")
def api_dataset():
    return NASBenchDataset.generate(num_models=24, seed=31)


@pytest.fixture(scope="module")
def warm_root(tmp_path_factory, api_dataset):
    root = tmp_path_factory.mktemp("api-store")
    MeasurementStore(root, shard_size=SHARD).sweep(api_dataset, configs=CONFIGS)
    return root


@pytest.fixture(scope="module")
def service(warm_root, api_dataset):
    return SweepService(
        MeasurementStore(warm_root, shard_size=SHARD),
        api_dataset,
        configs=CONFIGS,
        settings=TrainingSettings(epochs=2, seed=0),
    )


class TestRequestRoundTrips:
    def variants(self):
        cells = tuple(sample_unique_cells(2, seed=5))
        return [
            TopKRequest(k=3),
            ParetoRequest("V1", 0.65),
            LatencyRequest("fp-a", "V1"),
            EnergyRequest("fp-b", "V2"),
            MetricRequest("fp-c", "V3", metric="energy"),
            PredictRequest(cells, "V1", "latency"),
        ]

    def test_every_variant_round_trips_through_the_wire_form(self):
        for request in self.variants():
            decoded = request_from_dict(request.to_dict())
            assert decoded == request
            assert decoded.to_dict() == request.to_dict()

    def test_round_trip_preserves_canonical_key(self):
        for request in self.variants():
            decoded = request_from_dict(request.to_dict())
            assert canonical_request_key(decoded) == canonical_request_key(request)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ServiceError, match="unknown query request kind"):
            request_from_dict({"kind": "frontier", "k": 3})
        with pytest.raises(ServiceError, match="JSON object"):
            request_from_dict(["top_k"])

    def test_malformed_fields_are_rejected(self):
        with pytest.raises(ServiceError, match="malformed 'top_k'"):
            request_from_dict({"kind": "top_k", "count": 3})
        with pytest.raises(ServiceError, match="cells"):
            request_from_dict({"kind": "predict", "config_name": "V1"})

    def test_eager_validation(self):
        with pytest.raises(ServiceError, match="positive integer"):
            TopKRequest(k=0)
        with pytest.raises(ServiceError, match="positive integer"):
            TopKRequest(k=True)
        with pytest.raises(ServiceError, match=r"min_accuracy must be in \[0, 1\]"):
            ParetoRequest("V1", 1.5)
        with pytest.raises(ServiceError, match="unknown metric"):
            MetricRequest("fp", "V1", metric="throughput")
        with pytest.raises(ServiceError, match="at least one cell"):
            PredictRequest((), "V1")
        with pytest.raises(ServiceError, match="non-empty fingerprint"):
            LatencyRequest("", "V1")


class TestCanonicalKeys:
    def test_key_is_dict_order_invariant(self):
        forward = {"kind": "metric", "fingerprint": "fp", "config_name": "V1", "metric": "energy"}
        backward = dict(reversed(list(forward.items())))
        assert list(forward) != list(backward)  # genuinely different orderings
        key_a = canonical_request_key(request_from_dict(forward))
        key_b = canonical_request_key(request_from_dict(backward))
        assert key_a == key_b

    def test_distinct_requests_get_distinct_keys(self):
        keys = {
            canonical_request_key(request)
            for request in (
                TopKRequest(k=3),
                TopKRequest(k=4),
                ParetoRequest("V1"),
                ParetoRequest("V2"),
                LatencyRequest("fp", "V1"),
                EnergyRequest("fp", "V1"),
            )
        }
        assert len(keys) == 6

    def test_cache_key_scopes_by_store_digest(self):
        request = TopKRequest(k=3)
        assert cache_key("store-a", request) != cache_key("store-b", request)
        assert cache_key("store-a", request) == cache_key("store-a", TopKRequest(k=3))


class TestQueryResponse:
    def test_round_trip(self):
        response = QueryResponse(
            kind="top_k", result={"entries": []}, store_digest="abc123", served_from="store"
        )
        assert QueryResponse.from_dict(response.to_dict()) == response

    def test_validation(self):
        with pytest.raises(ServiceError, match="unknown response kind"):
            QueryResponse(kind="nope", result={}, store_digest="d", served_from="store")
        with pytest.raises(ServiceError, match="served_from"):
            QueryResponse(kind="top_k", result={}, store_digest="d", served_from="disk")
        with pytest.raises(ServiceError, match="missing field"):
            QueryResponse.from_dict({"kind": "top_k", "result": {}})


class TestResolveConfigs:
    def test_none_means_the_studied_configs(self):
        assert resolve_configs(None) == [c.name for c in STUDIED_CONFIGS.values()]

    def test_studied_names_are_case_normalized(self):
        assert resolve_configs(["v1", "V2"]) == ["V1", "V2"]

    def test_config_objects_contribute_their_own_name(self):
        assert resolve_configs([EDGE_TPU_V2, "v1"]) == ["V2", "V1"]

    def test_config_objects_are_always_resolvable(self):
        # An object carries its definition, so it need not be in `available`.
        assert resolve_configs([EDGE_TPU_V2], available=["V1"]) == ["V2"]

    def test_unknown_names_raise_naming_every_offender(self):
        with pytest.raises(ServiceError, match=r"\['V8', 'V9'\]"):
            resolve_configs(["V1", "V9", "V8"], available=["V1"])

    def test_empty_argument_is_rejected(self):
        with pytest.raises(ServiceError, match="no accelerator configurations"):
            resolve_configs([])


class TestQueryDispatch:
    """query() must be numerically indistinguishable from the legacy methods."""

    def test_top_k_equivalence(self, service):
        response = service.query(TopKRequest(k=3))
        assert response.served_from == "store"
        assert response.store_digest == service.store_digest
        legacy = service.top_k(3)
        assert [e["fingerprint"] for e in response.result["entries"]] == [
            entry.record.fingerprint for entry in legacy
        ]
        for encoded, entry in zip(response.result["entries"], legacy):
            assert encoded["rank"] == entry.rank
            assert encoded["accuracy"] == entry.accuracy
            assert encoded["latency_ms"] == pytest.approx(entry.latency_ms)
            assert encoded["fastest_config"] == entry.fastest_config

    def test_pareto_equivalence(self, service):
        response = service.query(ParetoRequest("V1", 0.6))
        legacy = service.pareto_front("V1", 0.6)
        assert len(response.result["points"]) == len(legacy)
        for encoded, point in zip(response.result["points"], legacy):
            assert encoded["latency_ms"] == point.latency_ms
            assert encoded["accuracy"] == point.accuracy
            assert encoded["model_index"] == point.model_index

    def test_metric_equivalence_and_symmetry(self, service, api_dataset):
        fingerprint = api_dataset[0].fingerprint
        latency = service.query(LatencyRequest(fingerprint, "V1")).result["value"]
        assert latency == service.latency_of(fingerprint, "V1")
        assert latency == service.metric_of(fingerprint, "V1", "latency")
        energy = service.query(EnergyRequest(fingerprint, "V1")).result["value"]
        assert energy == service.energy_of(fingerprint, "V1")
        # V3 has no energy model: the wrapper and the core agree on None.
        assert service.query(EnergyRequest(fingerprint, "V3")).result["value"] is None
        assert service.energy_of(fingerprint, "V3") is None
        with pytest.raises(ServiceError, match="unknown metric"):
            service.metric_of(fingerprint, "V1", "throughput")

    def test_predict_equivalence(self, service):
        cells = sample_unique_cells(3, seed=77)
        response = service.query(PredictRequest(tuple(cells), "V1", "latency"))
        assert response.served_from == "model"
        direct = service.predict(cells, "V1", "latency")
        assert response.result["values"] == [float(v) for v in direct]

    def test_results_are_json_serializable(self, service):
        import json

        for request in (TopKRequest(k=2), ParetoRequest("V1", 0.6)):
            payload = service.query(request).to_dict()
            assert json.loads(json.dumps(payload)) == payload


class TestServiceConstruction:
    def test_positional_configs_are_deprecated_but_work(self, warm_root, api_dataset):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        with pytest.warns(DeprecationWarning, match="configs positionally"):
            service = SweepService(store, api_dataset, CONFIGS)
        assert service.config_names == list(CONFIGS)

    def test_positional_and_keyword_configs_conflict(self, warm_root, api_dataset):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        with pytest.raises(TypeError, match="at most one configs argument"):
            SweepService(store, api_dataset, CONFIGS, configs=CONFIGS)

    def test_unknown_config_names_fail_eagerly_naming_offenders(
        self, warm_root, api_dataset
    ):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        with pytest.raises(ServiceError, match=r"\['V9'\]"):
            SweepService(store, api_dataset, configs=("V1", "V9"))

    def test_store_digest_is_stable_and_config_sensitive(self, warm_root, api_dataset):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        full = SweepService(store, api_dataset, configs=CONFIGS)
        again = SweepService(store, api_dataset, configs=CONFIGS)
        assert full.store_digest == again.store_digest
        narrower = SweepService(store, api_dataset, configs=("V1",))
        assert narrower.store_digest != full.store_digest


class TestPreloadedMeasurements:
    def test_fingerprint_equal_dataset_is_accepted(self, warm_root, api_dataset):
        # Regression: the preloaded path used to compare datasets by object
        # identity, rejecting a worker-rebuilt dataset of the same population.
        store = MeasurementStore(warm_root, shard_size=SHARD)
        measurements = store.load(api_dataset, configs=CONFIGS)
        rebuilt = NASBenchDataset.from_cells(
            [record.cell for record in api_dataset], api_dataset.network_config
        )
        assert rebuilt is not api_dataset
        service = SweepService(
            store, rebuilt, configs=CONFIGS, measurements=measurements
        )
        assert service.top_k(1)[0].record.fingerprint == (
            api_dataset.top_k_by_accuracy(1)[0].fingerprint
        )

    def test_reordered_population_is_still_rejected(self, warm_root, api_dataset):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        measurements = store.load(api_dataset, configs=CONFIGS)
        reordered = NASBenchDataset.from_cells(
            [record.cell for record in reversed(api_dataset.records)],
            api_dataset.network_config,
        )
        with pytest.raises(ServiceError, match="different dataset"):
            SweepService(store, reordered, configs=CONFIGS, measurements=measurements)

    def test_preloaded_configs_are_normalized(self, warm_root, api_dataset):
        store = MeasurementStore(warm_root, shard_size=SHARD)
        measurements = store.load(api_dataset, configs=CONFIGS)
        service = SweepService(
            store, api_dataset, configs=("v1", "v3"), measurements=measurements
        )
        assert service.config_names == list(CONFIGS)
