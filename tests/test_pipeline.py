"""Tests of the experiment pipeline: grid runs, caching, determinism."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import TrainingSettings
from repro.errors import PipelineError
from repro.pipeline import (
    CacheStats,
    Experiment,
    ExperimentCache,
    PopulationSpec,
    run_experiment,
    stable_key,
)


def small_experiment(**overrides) -> Experiment:
    defaults = dict(
        name="test-experiment",
        population=PopulationSpec(num_models=40, seed=11),
        config_names=("V1",),
        metrics=("latency",),
        settings=TrainingSettings(epochs=2, seed=0),
    )
    defaults.update(overrides)
    return Experiment(**defaults)


class TestExperimentSpec:
    def test_keys_are_stable_and_sensitive(self):
        a = small_experiment()
        b = small_experiment()
        assert a.measurement_key() == b.measurement_key()
        assert a.model_key("V1", "latency") == b.model_key("V1", "latency")
        # A population change invalidates everything ...
        c = small_experiment(population=PopulationSpec(num_models=40, seed=12))
        assert c.measurement_key() != a.measurement_key()
        assert c.model_key("V1", "latency") != a.model_key("V1", "latency")
        # ... a training change invalidates only the model artifacts ...
        d = small_experiment(settings=TrainingSettings(epochs=3, seed=0))
        assert d.measurement_key() == a.measurement_key()
        assert d.model_key("V1", "latency") != a.model_key("V1", "latency")
        # ... and the experiment name invalidates nothing.
        e = small_experiment(name="renamed")
        assert e.measurement_key() == a.measurement_key()
        assert e.model_key("V1", "latency") == a.model_key("V1", "latency")

    def test_invalid_grids_rejected(self):
        with pytest.raises(PipelineError):
            small_experiment(metrics=())
        with pytest.raises(PipelineError):
            small_experiment(config_names=())
        with pytest.raises(PipelineError):
            small_experiment(metrics=("throughput",))

    def test_stable_key_is_deterministic(self):
        payload = {"b": 2, "a": [1, 2, 3]}
        assert stable_key(payload) == stable_key({"a": [1, 2, 3], "b": 2})
        assert stable_key(payload) != stable_key({"a": [1, 2, 3], "b": 3})


class TestRunExperiment:
    def test_end_to_end_grid(self, pipeline_cache_dir):
        experiment = small_experiment(config_names=("V1", "V3"), metrics=("latency", "energy"))
        result = run_experiment(experiment, cache_dir=pipeline_cache_dir)
        # V3 has no energy model: three trained cells, one recorded skip.
        assert set(result.models) == {
            ("V1", "latency"), ("V1", "energy"), ("V3", "latency"),
        }
        assert [entry[:2] for entry in result.skipped] == [("V3", "energy")]
        report = result.report("V1", "latency")
        assert report.test_set_size > 0
        assert result.model("V1", "latency").history is not None
        assert len(result.measurements.latencies("V1")) == len(result.dataset)
        assert any("V1" in line for line in result.summary_lines())
        with pytest.raises(PipelineError):
            result.report("V2", "latency")

    def test_runs_are_deterministic(self):
        experiment = small_experiment()
        first = run_experiment(experiment)
        second = run_experiment(experiment)
        assert first.report("V1") == second.report("V1")
        assert np.array_equal(
            first.measurements.latencies("V1"), second.measurements.latencies("V1")
        )

    def test_cache_hit_reproduces_and_speeds_up_second_run(self, pipeline_cache_dir):
        experiment = small_experiment(
            population=PopulationSpec(num_models=60, seed=5),
            settings=TrainingSettings(epochs=4, seed=0),
        )
        start = time.perf_counter()
        cold = run_experiment(experiment, cache_dir=pipeline_cache_dir)
        cold_elapsed = time.perf_counter() - start
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.misses == 2  # one measurement set + one model

        start = time.perf_counter()
        warm = run_experiment(experiment, cache_dir=pipeline_cache_dir)
        warm_elapsed = time.perf_counter() - start
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == 2
        assert all(cell.from_cache for cell in warm.models.values())

        # Identical results, measurably faster than simulate+train.
        assert warm.report("V1") == cold.report("V1")
        assert np.array_equal(warm.measurements.latencies("V1"), cold.measurements.latencies("V1"))
        assert warm_elapsed < cold_elapsed

    def test_spec_change_misses_cache(self, pipeline_cache_dir):
        run_experiment(small_experiment(), cache_dir=pipeline_cache_dir)
        changed = small_experiment(settings=TrainingSettings(epochs=3, seed=0))
        result = run_experiment(changed, cache_dir=pipeline_cache_dir)
        # Measurements are reused; the trained model is not.
        assert result.cache_stats.measurement_hits == 1
        assert result.cache_stats.model_misses == 1

    def test_without_cache_dir_nothing_is_written(self, tmp_path):
        result = run_experiment(small_experiment())
        assert result.cache_stats == CacheStats()
        assert list(tmp_path.iterdir()) == []

    def test_compact_merges_the_labeling_sweep(self, pipeline_cache_dir):
        experiment = small_experiment()
        cold = run_experiment(experiment, cache_dir=pipeline_cache_dir, compact=True)
        assert list(pipeline_cache_dir.rglob("*-compact-*.npy"))
        assert not list(pipeline_cache_dir.rglob("measurements-*-V1-*.npz"))
        warm = run_experiment(experiment, cache_dir=pipeline_cache_dir, compact=True)
        assert warm.cache_stats.measurement_hits == 1
        assert np.array_equal(
            warm.measurements.latencies("V1"), cold.measurements.latencies("V1")
        )

    def test_compact_without_cache_dir_rejected(self):
        with pytest.raises(PipelineError, match="cache_dir"):
            run_experiment(small_experiment(), compact=True)


class TestExperimentCache:
    def test_mismatched_population_is_a_miss(self, pipeline_cache_dir, measurements):
        cache = ExperimentCache(pipeline_cache_dir)
        cache.save_measurements("key", measurements)
        loaded = cache.load_measurements("key", measurements.dataset)
        assert loaded is not None
        assert np.array_equal(loaded.latencies("V1"), measurements.latencies("V1"))
        assert np.array_equal(loaded.energies("V3"), measurements.energies("V3"), equal_nan=True)

        shrunk = type(measurements.dataset)(
            measurements.dataset.records[:10], measurements.dataset.network_config
        )
        assert cache.load_measurements("key", shrunk) is None
        assert cache.stats.measurement_hits == 1
        assert cache.stats.measurement_misses == 1

    def test_absent_artifacts_are_misses(self, pipeline_cache_dir):
        cache = ExperimentCache(pipeline_cache_dir)
        assert cache.load_model_state("nope") is None
        assert cache.stats.model_misses == 1

    def test_parameter_caching_mode_keys_measurement_artifacts(
        self, pipeline_cache_dir, measurements
    ):
        # Shard keys embed the compiler mode: measurements saved under one
        # mode are invisible to the other instead of silently mislabeled.
        cache = ExperimentCache(pipeline_cache_dir)
        cache.save_measurements("key", measurements, enable_parameter_caching=False)
        assert (
            cache.load_measurements("key", measurements.dataset) is None
        )  # default True mode
        loaded = cache.load_measurements(
            "key", measurements.dataset, enable_parameter_caching=False
        )
        assert loaded is not None
        assert np.array_equal(loaded.latencies("V1"), measurements.latencies("V1"))

    def test_corrupt_artifacts_degrade_to_misses(self, pipeline_cache_dir):
        experiment = small_experiment()
        run_experiment(experiment, cache_dir=pipeline_cache_dir)
        for artifact in pipeline_cache_dir.glob("*.npz"):
            artifact.write_bytes(artifact.read_bytes()[:50])  # truncate
        result = run_experiment(experiment, cache_dir=pipeline_cache_dir)
        assert result.cache_stats.hits == 0
        assert result.cache_stats.misses == 2
        # ... and the rewritten artifacts serve the next run again.
        healed = run_experiment(experiment, cache_dir=pipeline_cache_dir)
        assert healed.cache_stats.misses == 0

    def test_tiny_population_rejected_with_clear_error(self):
        from repro.errors import ModelError

        experiment = small_experiment(population=PopulationSpec(num_models=3, seed=0))
        with pytest.raises(ModelError, match="at least 10 samples"):
            run_experiment(experiment)
