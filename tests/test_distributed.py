"""Tests of the distributed sweep queue: manifest, leases, workers, coordinator.

The crash-tolerance matrix (worker dies before claiming / holding a lease /
mid-write / after the write) is exercised both inline — by forging lease
files into the states a dead worker leaves behind — and for real, by running
three ``python -m repro.service.worker`` processes against one store and
``SIGKILL``-ing one of them mid-sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.arch import get_config
from repro.errors import ServiceError
from repro.nasbench import MacroSpec, NASBenchDataset, random_macro
from repro.service import (
    MeasurementStore,
    SweepCoordinator,
    SweepManifest,
    SweepWorker,
    WorkQueue,
)
from repro.service.queue import iter_pairs_rotated
from repro.simulator import BatchSimulator

SRC = Path(__file__).resolve().parent.parent / "src"
SHARD = 8
CONFIGS = ("V1", "V2")


@pytest.fixture(scope="module")
def queue_dataset():
    """24 models → three shards of 8 at SHARD=8; × 2 configs → 6 pairs."""
    return NASBenchDataset.generate(num_models=24, seed=11)


@pytest.fixture(scope="module")
def reference(queue_dataset):
    """The sweep straight through the batch engine (no store, no queue)."""
    return BatchSimulator().evaluate(
        queue_dataset, configs=[get_config(name) for name in CONFIGS]
    )


def publish(root, dataset, configs=CONFIGS, shard_size=SHARD):
    store = MeasurementStore(root, shard_size=shard_size)
    manifest = store.publish_manifest(dataset, configs=configs)
    return store, manifest


def assert_store_matches_reference(root, dataset, reference, shard_size=SHARD):
    """The drained store must be *byte-identical* to the direct sweep."""
    warm = MeasurementStore(root, shard_size=shard_size)
    loaded = warm.load(dataset, configs=CONFIGS)
    for name in CONFIGS:
        np.testing.assert_array_equal(loaded.latencies(name), reference.latencies(name))
        np.testing.assert_array_equal(loaded.energies(name), reference.energies(name))


def forge_lease(queue, pair, owner, heartbeat):
    """Write a lease file as a (possibly dead) worker would have left it."""
    path = queue.lease_path(pair)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "kind": "pair-lease",
                "version": 1,
                "pair": pair.pair_id,
                "owner": owner,
                "claimed_at": heartbeat,
                "heartbeat": heartbeat,
                "expiry_seconds": queue.expiry_seconds,
            }
        )
    )
    return path


class TestSweepManifest:
    def test_build_save_find_roundtrip(self, tmp_path, queue_dataset):
        store, manifest = publish(tmp_path, queue_dataset)
        assert manifest.num_shards == 3
        assert len(manifest.pairs) == 3 * len(CONFIGS)
        assert (tmp_path / f"manifest-{manifest.digest}.json").exists()

        found = SweepManifest.find(tmp_path)
        assert found.digest == manifest.digest
        assert found.prefix == store.prefix
        assert found.shard_size == SHARD
        assert found.config_names() == list(CONFIGS)
        # Configurations and the network config round-trip exactly.
        for name in CONFIGS:
            assert found.config(name) == get_config(name)
        assert found.network_config() == queue_dataset.network_config

    def test_pair_keys_match_the_store_layout(self, tmp_path, queue_dataset):
        store, manifest = publish(tmp_path, queue_dataset)
        ranges = store.shard_ranges(len(queue_dataset))
        for pair in manifest.pairs:
            start, stop = ranges[pair.shard_index]
            prints = [record.fingerprint for record in queue_dataset.records[start:stop]]
            assert pair.key == store.shard_key(prints, pair.config_name)
            assert manifest.pair_path(tmp_path, pair) == store.shard_path(
                pair.config_name, pair.key
            )

    def test_shard_cells_rebuild_the_population(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        cells = manifest.shard_cells(1)
        originals = [record.cell for record in queue_dataset.records[SHARD : 2 * SHARD]]
        assert [cell.to_dict() for cell in cells] == [cell.to_dict() for cell in originals]

    def test_digest_covers_the_pair_list(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        other = SweepManifest.build(
            queue_dataset,
            [get_config("V1")],  # different grid → different sweep
            shard_size=SHARD,
        )
        assert other.digest != manifest.digest

    def test_find_requires_exactly_one_manifest(self, tmp_path, queue_dataset):
        with pytest.raises(ServiceError, match="no sweep manifest"):
            SweepManifest.find(tmp_path)
        _, first = publish(tmp_path, queue_dataset)
        second = SweepManifest.build(queue_dataset, [get_config("V1")], shard_size=SHARD)
        second.save(tmp_path)
        with pytest.raises(ServiceError, match="multiple sweep manifests"):
            SweepManifest.find(tmp_path)
        assert SweepManifest.find(tmp_path, digest=first.digest).digest == first.digest

    def test_build_rejects_empty_grid(self, queue_dataset):
        with pytest.raises(ServiceError, match="at least one configuration"):
            SweepManifest.build(queue_dataset, [], shard_size=SHARD)


class TestWorkQueue:
    @pytest.fixture()
    def queue(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        return WorkQueue(tmp_path, manifest, expiry_seconds=30.0)

    def test_claim_is_exclusive(self, queue):
        pair = queue.manifest.pairs[0]
        lease = queue.try_claim(pair, "alice")
        assert lease is not None and not lease.stolen
        assert queue.lease_path(pair).exists()
        assert queue.lease_state(pair) == "leased"
        assert queue.try_claim(pair, "bob") is None

    def test_release_frees_the_pair(self, queue):
        pair = queue.manifest.pairs[0]
        lease = queue.try_claim(pair, "alice")
        queue.release(lease)
        assert queue.lease_state(pair) == "free"
        assert queue.try_claim(pair, "bob") is not None

    def test_orphaned_lease_is_stolen(self, queue):
        # A dead worker's lease: heartbeat far in the past.
        pair = queue.manifest.pairs[0]
        forge_lease(queue, pair, "dead-worker", heartbeat=time.time() - 1000.0)
        assert queue.lease_state(pair) == "orphaned"
        lease = queue.try_claim(pair, "bob")
        assert lease is not None and lease.stolen
        assert queue.lease_state(pair) == "leased"

    def test_live_lease_is_not_stolen(self, queue):
        pair = queue.manifest.pairs[0]
        forge_lease(queue, pair, "alive-worker", heartbeat=time.time())
        assert queue.lease_state(pair) == "leased"
        assert queue.try_claim(pair, "bob") is None

    def test_renew_detects_theft(self, queue):
        pair = queue.manifest.pairs[0]
        lease = queue.try_claim(pair, "alice")
        assert queue.renew(lease) and not lease.lost
        forge_lease(queue, pair, "thief", heartbeat=time.time())
        assert not queue.renew(lease)
        assert lease.lost

    def test_release_never_drops_a_thiefs_lease(self, queue):
        pair = queue.manifest.pairs[0]
        lease = queue.try_claim(pair, "alice")
        forge_lease(queue, pair, "thief", heartbeat=time.time())
        queue.release(lease)
        assert queue.lease_path(pair).exists()  # the thief's claim survives
        assert json.loads(queue.lease_path(pair).read_text())["owner"] == "thief"

    def test_truncated_lease_becomes_stealable_by_age(self, queue):
        # A worker killed inside the non-atomic fallback writer leaves a
        # partial file; it must not wedge the pair forever.
        pair = queue.manifest.pairs[0]
        path = queue.lease_path(pair)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"kind": "pair-le')
        assert queue.lease_state(pair) == "leased"  # fresh: benefit of the doubt
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        assert queue.lease_state(pair) == "orphaned"
        assert queue.try_claim(pair, "bob") is not None

    def test_done_pairs_are_detected_from_shard_files(self, queue, tmp_path):
        pair = queue.manifest.pairs[0]
        assert not queue.is_done(pair)
        queue.manifest.pair_path(tmp_path, pair).write_bytes(b"placeholder")
        assert queue.is_done(pair)

    def test_rotation_covers_every_pair_once(self, queue):
        pairs = queue.manifest.pairs
        for owner in ("alice", "bob", "carol"):
            rotated = list(iter_pairs_rotated(pairs, owner))
            assert sorted(p.pair_id for p in rotated) == sorted(p.pair_id for p in pairs)
        offsets = {
            iter_pairs_rotated(pairs, owner).__next__().pair_id
            for owner in ("w0", "w1", "w2", "w3", "w4")
        }
        assert len(offsets) > 1  # different owners start at different offsets

    def test_invalid_expiry_rejected(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        with pytest.raises(ServiceError, match="expiry"):
            WorkQueue(tmp_path, manifest, expiry_seconds=0.0)


class TestSweepWorker:
    def test_single_worker_drains_the_manifest(self, tmp_path, queue_dataset, reference):
        _, manifest = publish(tmp_path, queue_dataset)
        worker = SweepWorker(tmp_path, owner="solo", poll_seconds=0.05)
        result = worker.run()
        assert result.pairs_simulated == len(manifest.pairs)
        assert sorted(result.pairs_completed) == sorted(p.pair_id for p in manifest.pairs)
        assert result.models_simulated == len(queue_dataset) * len(CONFIGS)
        assert result.leases_lost == 0
        assert_store_matches_reference(tmp_path, queue_dataset, reference)
        # No lease outlives its pair.
        assert not list((tmp_path / "queue" / manifest.digest).glob("lease-*.json"))

    def test_two_workers_split_without_duplicates(self, tmp_path, queue_dataset, reference):
        _, manifest = publish(tmp_path, queue_dataset)
        first = SweepWorker(tmp_path, owner="w-a", poll_seconds=0.05).run(max_pairs=2)
        assert first.pairs_simulated == 2
        second = SweepWorker(tmp_path, owner="w-b", poll_seconds=0.05).run()
        assert second.pairs_simulated == len(manifest.pairs) - 2
        completed = first.pairs_completed + second.pairs_completed
        assert len(completed) == len(set(completed)) == len(manifest.pairs)
        assert_store_matches_reference(tmp_path, queue_dataset, reference)

    def test_worker_steals_a_dead_peers_lease(self, tmp_path, queue_dataset, reference):
        _, manifest = publish(tmp_path, queue_dataset)
        queue = WorkQueue(tmp_path, manifest, expiry_seconds=30.0)
        forge_lease(queue, manifest.pairs[0], "kill-niner", heartbeat=time.time() - 1000.0)
        result = SweepWorker(tmp_path, owner="survivor", poll_seconds=0.05).run()
        assert result.pairs_simulated == len(manifest.pairs)
        assert result.leases_stolen == 1
        assert_store_matches_reference(tmp_path, queue_dataset, reference)

    def test_done_pairs_are_never_resimulated(self, tmp_path, queue_dataset):
        # Crash *after the write, before the release*: the shard file exists
        # and a stale lease remains.  The next worker must skip the pair.
        _, manifest = publish(tmp_path, queue_dataset)
        SweepWorker(tmp_path, owner="first", poll_seconds=0.05).run(max_pairs=1)
        queue = WorkQueue(tmp_path, manifest, expiry_seconds=30.0)
        done = [pair for pair in manifest.pairs if queue.is_done(pair)]
        assert len(done) == 1
        forge_lease(queue, done[0], "first", heartbeat=time.time() - 1000.0)
        result = SweepWorker(tmp_path, owner="second", poll_seconds=0.05).run()
        assert result.pairs_simulated == len(manifest.pairs) - 1
        assert result.leases_stolen == 0

    def test_unknown_strategy_rejected(self, tmp_path, queue_dataset):
        publish(tmp_path, queue_dataset)
        with pytest.raises(ServiceError, match="strategy"):
            SweepWorker(tmp_path, strategy="warp-drive")

    def test_traced_drain_merges_to_exact_fleet_counts(
        self, tmp_path, queue_dataset, reference
    ):
        """A traced drain yields a merged fleet view whose counters match the
        queue accounting exactly, with byte-identical numerical results."""
        _, manifest = publish(tmp_path, queue_dataset)
        traces = tmp_path / "traces"
        with obs.capture(traces):
            SweepWorker(tmp_path, owner="t-a", poll_seconds=0.05).run(max_pairs=2)
            SweepWorker(tmp_path, owner="t-b", poll_seconds=0.05).run()
        assert_store_matches_reference(tmp_path, queue_dataset, reference)

        merged = obs.trace_summary(traces)
        assert merged.counters["worker.pairs_simulated"] == len(manifest.pairs)
        assert merged.counters["worker.models_simulated"] == (
            len(queue_dataset) * len(CONFIGS)
        )
        assert merged.spans["worker.pair"].count == len(manifest.pairs)
        assert merged.histograms["worker.pair_ms"].count == len(manifest.pairs)
        assert merged.counters.get("worker.leases_lost", 0) == 0

        # Worker reports fold the telemetry stream in, and the coordinator
        # surfaces it per worker.
        coordinator = SweepCoordinator(tmp_path, manifest=manifest)
        progress = coordinator.progress()
        assert progress.workers and all(worker.trace for worker in progress.workers)

        # Loading the drained store back counts exactly what StoreStats says.
        with obs.capture(tmp_path / "traces-load") as tracer:
            warm = MeasurementStore(tmp_path, shard_size=SHARD)
            warm.load(queue_dataset, configs=CONFIGS)
        assert warm.stats.pairs_loaded == len(manifest.pairs)
        assert tracer.metrics.counter_value("store.pairs_loaded") == (
            warm.stats.pairs_loaded
        )
        assert tracer.metrics.counter_value("store.models_loaded") == (
            warm.stats.models_loaded
        )


class TestMacroManifest:
    """Macro sweeps round-trip through the manifest and rebuild standalone."""

    @pytest.fixture(scope="class")
    def macro_dataset(self):
        rng = np.random.default_rng(23)
        return NASBenchDataset.from_macros([random_macro(rng) for _ in range(8)])

    def test_shard_archs_round_trip_the_macro_specs(self, tmp_path, macro_dataset):
        _, manifest = publish(tmp_path, macro_dataset, shard_size=4)
        rebuilt = [
            arch
            for shard_index in range(manifest.num_shards)
            for arch in manifest.shard_archs(shard_index)
        ]
        assert all(isinstance(arch, MacroSpec) for arch in rebuilt)
        assert [arch.fingerprint for arch in rebuilt] == [
            record.fingerprint for record in macro_dataset
        ]

    def test_worker_rebuilds_macros_bit_identically(self, tmp_path, macro_dataset):
        reference = BatchSimulator().evaluate(
            macro_dataset, configs=[get_config(name) for name in CONFIGS]
        )
        publish(tmp_path, macro_dataset, shard_size=4)
        result = SweepWorker(tmp_path, owner="macro-solo", poll_seconds=0.05).run()
        assert result.models_simulated == len(macro_dataset) * len(CONFIGS)
        assert_store_matches_reference(
            tmp_path, macro_dataset, reference, shard_size=4
        )

    def test_legacy_manifests_without_archs_still_load(self, tmp_path, queue_dataset):
        # Manifests written before the macro release only carry "cells";
        # shard_archs must fall back to them.
        _, manifest = publish(tmp_path, queue_dataset)
        for shard in manifest._payload["shards"]:
            del shard["archs"]
        archs = manifest.shard_archs(0)
        assert [arch.to_dict() for arch in archs] == [
            record.cell.to_dict() for record in queue_dataset.records[:SHARD]
        ]


class TestSweepCoordinator:
    def test_progress_counts_every_state(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        coordinator = SweepCoordinator(tmp_path, manifest=manifest)
        fresh = coordinator.progress()
        assert fresh.pairs_total == len(manifest.pairs)
        assert fresh.pairs_done == fresh.pairs_leased == fresh.pairs_orphaned == 0
        assert not fresh.complete

        queue = coordinator.queue
        queue.try_claim(manifest.pairs[0], "alice")
        forge_lease(queue, manifest.pairs[1], "dead", heartbeat=time.time() - 1000.0)
        SweepWorker(tmp_path, owner="w", poll_seconds=0.05).run(max_pairs=1)
        progress = coordinator.progress()
        assert progress.pairs_done == 1
        assert progress.pairs_leased == 1
        assert progress.pairs_orphaned == 1
        assert progress.pairs_remaining == len(manifest.pairs) - 1
        assert any(worker.owner == "w" for worker in progress.workers)
        assert "orphaned" in progress.summary()

    def test_completion_and_wait(self, tmp_path, queue_dataset):
        _, manifest = publish(tmp_path, queue_dataset)
        coordinator = SweepCoordinator(tmp_path, manifest=manifest)
        assert not coordinator.is_complete()
        assert not coordinator.wait(timeout=0.05, poll_seconds=0.01)
        SweepWorker(tmp_path, owner="w", poll_seconds=0.05).run()
        assert coordinator.is_complete()
        assert coordinator.wait(timeout=0.05, poll_seconds=0.01)
        assert coordinator.progress().complete


class TestMultiprocessDrain:
    """The acceptance scenario: three worker processes, one killed mid-sweep."""

    def worker_command(self, root, owner):
        return [
            sys.executable, "-m", "repro.service.worker", str(root),
            "--owner", owner, "--expiry", "1.0",
            "--throttle", "0.2", "--poll-interval", "0.1",
        ]

    def test_three_workers_survive_a_kill_dash_nine(self, tmp_path):
        dataset = NASBenchDataset.generate(num_models=24, seed=11)
        store = MeasurementStore(tmp_path, shard_size=4)
        manifest = store.publish_manifest(dataset, configs=CONFIGS)
        assert len(manifest.pairs) == 12

        traces = tmp_path / "traces"
        env = dict(os.environ, PYTHONPATH=str(SRC), REPRO_TRACE=str(traces))
        procs = [
            subprocess.Popen(
                self.worker_command(tmp_path, f"w{index}"),
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for index in range(3)
        ]
        victim, survivors = procs[0], procs[1:]
        try:
            # Wait until the victim is actually draining (its report exists),
            # then give it time to be genuinely mid-pair before the SIGKILL.
            report = tmp_path / "queue" / manifest.digest / "worker-w0.json"
            deadline = time.monotonic() + 60.0
            while not report.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert report.exists(), "victim worker never started draining"
            time.sleep(0.5)
            victim.kill()  # SIGKILL: no cleanup, no lease release
            victim.wait(timeout=30)

            for proc in survivors:
                stdout, stderr = proc.communicate(timeout=120)
                assert proc.returncode == 0, f"worker failed:\n{stdout}\n{stderr}"
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()

        coordinator = SweepCoordinator(tmp_path, manifest=manifest)
        assert coordinator.is_complete()
        progress = coordinator.progress()
        assert progress.pairs_done == len(manifest.pairs)

        # Byte-identical to the direct single-process sweep.
        reference = BatchSimulator().evaluate(
            dataset, configs=[get_config(name) for name in CONFIGS]
        )
        assert_store_matches_reference(tmp_path, dataset, reference, shard_size=4)

        # Zero duplicate completions recorded across the fleet; every pair is
        # accounted for except, at most, the single pair the victim was killed
        # between writing and recording.
        recorded = [
            pair_id
            for worker_report in coordinator.queue.worker_reports()
            for pair_id in worker_report["completed"]
        ]
        assert len(recorded) == len(set(recorded)), "a pair was recorded twice"
        pair_ids = {pair.pair_id for pair in manifest.pairs}
        assert set(recorded) <= pair_ids
        assert len(recorded) >= len(pair_ids) - 1

        # The status CLI agrees and exits 0 on a complete sweep.
        status = subprocess.run(
            [sys.executable, "-m", "repro.service.queue", str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert status.returncode == 0, status.stderr
        assert "12/12" in status.stdout

        # Every worker process left a per-process JSONL trace behind, and the
        # fleet-merge CLI folds them into one summary.  The SIGKILL can lose at
        # most the victim's final unflushed snapshot, so the merged counters
        # must cover all but one completed pair (re-simulated stolen pairs may
        # push the total above pairs_done).
        trace_files = sorted(traces.glob("trace-*.jsonl"))
        assert len(trace_files) >= 2, "survivors did not write traces"
        fleet = subprocess.run(
            [sys.executable, "-m", "repro.obs", str(traces), "--json"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert fleet.returncode == 0, fleet.stderr
        summary = json.loads(fleet.stdout)
        simulated = summary["counters"].get("worker.pairs_simulated", 0)
        assert simulated >= progress.pairs_done - 1
        claims = summary["events"].get("queue.claim", 0)
        steals = summary["events"].get("queue.steal", 0)
        assert claims + steals >= simulated
        assert summary["files"] == len(trace_files)
