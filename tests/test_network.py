"""Tests for network expansion, channel inference and parameter counting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidCellError
from repro.nasbench import (
    CONV1X1,
    CONV3X3,
    Cell,
    INPUT,
    MAXPOOL3X3,
    NetworkConfig,
    OUTPUT,
    build_network,
    compute_vertex_channels,
    count_parameters,
    random_cell,
)
from repro.nasbench.famous_cells import (
    BEST_ACCURACY_CELL,
    DEEP_CONV_HEAVY_CELL,
    SECOND_BEST_ACCURACY_CELL,
    SHALLOW_CONV_HEAVY_CELL,
)
from repro.nasbench.network import KIND_CONV, KIND_DENSE, KIND_PROJECTION, LayerSpec


def chain_cell(*ops: str) -> Cell:
    n = len(ops) + 2
    matrix = np.zeros((n, n), dtype=int)
    for i in range(n - 1):
        matrix[i, i + 1] = 1
    return Cell(matrix, (INPUT, *ops, OUTPUT))


class TestVertexChannels:
    def test_trivial_cell(self):
        matrix = np.array([[0, 1], [0, 0]])
        assert compute_vertex_channels(128, 256, matrix) == [128, 256]

    def test_single_vertex_gets_output_channels(self):
        matrix = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]])
        assert compute_vertex_channels(128, 256, matrix) == [128, 256, 256]

    def test_output_channels_split_across_concat(self):
        # Two interior vertices both feed the output: channels split evenly.
        matrix = np.array(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
            ]
        )
        channels = compute_vertex_channels(128, 255, matrix)
        assert channels[0] == 128
        assert channels[3] == 255
        assert sorted(channels[1:3]) == [127, 128]  # remainder goes to vertex 1
        assert sum(channels[1:3]) == 255

    def test_interior_vertex_uses_max_of_successors(self):
        # vertex1 -> vertex2 -> output and vertex1 -> vertex3 -> output
        matrix = np.array(
            [
                [0, 1, 0, 0, 0],
                [0, 0, 1, 1, 0],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 1],
                [0, 0, 0, 0, 0],
            ]
        )
        channels = compute_vertex_channels(128, 129, matrix)
        # vertex2 gets 65 (remainder), vertex3 gets 64, vertex1 takes the max.
        assert channels[2] == 65 and channels[3] == 64
        assert channels[1] == 65


class TestLayerSpec:
    def test_conv_macs_and_params(self):
        layer = LayerSpec(
            name="conv",
            kind=KIND_CONV,
            input_height=32,
            input_width=32,
            in_channels=16,
            out_channels=32,
            kernel_size=3,
            has_batch_norm=True,
        )
        assert layer.output_height == 32 and layer.output_width == 32
        assert layer.macs == 3 * 3 * 16 * 32 * 32 * 32
        assert layer.trainable_parameters == 3 * 3 * 16 * 32 + 2 * 32
        assert layer.weight_bytes == 3 * 3 * 16 * 32 + 4 * 32
        assert layer.input_activation_bytes == 32 * 32 * 16
        assert layer.output_activation_bytes == 32 * 32 * 32

    def test_dense_layer(self):
        layer = LayerSpec(
            name="dense",
            kind=KIND_DENSE,
            input_height=1,
            input_width=1,
            in_channels=512,
            out_channels=10,
        )
        assert layer.macs == 5120
        assert layer.trainable_parameters == 512 * 10 + 10

    def test_pooling_has_no_weights(self):
        layer = LayerSpec(
            name="pool",
            kind="maxpool",
            input_height=16,
            input_width=16,
            in_channels=64,
            out_channels=64,
            kernel_size=3,
        )
        assert layer.macs == 0
        assert layer.trainable_parameters == 0
        assert layer.weight_bytes == 0

    def test_stride_two_halves_resolution(self):
        layer = LayerSpec(
            name="down",
            kind="downsample",
            input_height=32,
            input_width=32,
            in_channels=64,
            out_channels=64,
            kernel_size=2,
            stride=2,
        )
        assert layer.output_height == 16 and layer.output_width == 16


class TestBuildNetwork:
    def test_stem_and_head_are_present(self):
        network = build_network(chain_cell(CONV3X3))
        names = [layer.name for layer in network.layers]
        assert names[0] == "stem/conv3x3"
        assert names[-1] == "head/dense"
        assert "head/global_pool" in names

    def test_number_of_cell_instances(self):
        config = NetworkConfig(num_stacks=3, cells_per_stack=3)
        network = build_network(chain_cell(CONV3X3), config)
        conv_layers = [layer for layer in network.layers if "vertex1/conv3x3" in layer.name]
        assert len(conv_layers) == 9  # one per cell instance

    def test_downsampling_halves_spatial_and_doubles_channels(self):
        network = build_network(chain_cell(CONV3X3))
        last_stack_convs = [
            layer
            for layer in network.layers
            if layer.name.startswith("stack2") and layer.kind == KIND_CONV
        ]
        assert all(layer.input_height == 8 for layer in last_stack_convs)
        assert all(layer.out_channels == 512 for layer in last_stack_convs)

    def test_maxpool_only_cell_uses_projections(self):
        network = build_network(chain_cell(MAXPOOL3X3))
        kinds = {layer.kind for layer in network.layers}
        assert KIND_PROJECTION in kinds
        # The only MAC-carrying layers are stem, projections and the head.
        for layer in network.weighted_layers():
            assert layer.kind in (KIND_CONV, KIND_PROJECTION, KIND_DENSE)

    def test_invalid_network_config_rejected(self):
        with pytest.raises(InvalidCellError):
            NetworkConfig(num_stacks=0)
        with pytest.raises(InvalidCellError):
            NetworkConfig(image_size=2, num_stacks=3)


class TestParameterCounting:
    def test_parameter_range_matches_nasbench_scale(self):
        """Parameter counts land in the published NASBench-101 range (Table 1)."""
        smallest = count_parameters(chain_cell(MAXPOOL3X3))
        largest = count_parameters(DEEP_CONV_HEAVY_CELL)
        assert 2e5 < smallest < 2e6
        assert 4.0e7 < largest < 5.5e7

    def test_named_cells_match_paper_magnitudes(self):
        best = count_parameters(BEST_ACCURACY_CELL)
        second = count_parameters(SECOND_BEST_ACCURACY_CELL)
        # Paper: 41.6M and 25.0M; the reconstruction should be within ~20%.
        assert 3.3e7 < best < 4.6e7
        assert 1.9e7 < second < 2.9e7
        assert second < best

    def test_conv3x3_heavier_than_conv1x1(self):
        assert count_parameters(chain_cell(CONV3X3)) > count_parameters(chain_cell(CONV1X1))

    def test_shallow_cell_has_fewer_parameters_than_deep_chain(self):
        # Same operation multiset, but the concatenation divides the channels.
        assert count_parameters(SHALLOW_CONV_HEAVY_CELL) < count_parameters(DEEP_CONV_HEAVY_CELL)

    def test_count_matches_network_spec(self):
        cell = chain_cell(CONV3X3, CONV1X1)
        assert count_parameters(cell) == build_network(cell).trainable_parameters


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_network_invariants_hold_for_random_cells(seed):
    """Structural invariants of the expansion hold for arbitrary valid cells."""
    cell = random_cell(np.random.default_rng(seed))
    network = build_network(cell)
    assert network.trainable_parameters > 0
    assert network.total_macs > 0
    assert network.total_weight_bytes > 0
    # int8 weight bytes track trainable parameters to within the bias/norm terms.
    assert network.total_weight_bytes < network.trainable_parameters * 2.5
    assert network.layers[0].kind == KIND_CONV
    assert network.layers[-1].kind == KIND_DENSE
