"""Cached hardware design-space sweep experiments.

Gives a hardware grid sweep the same lifecycle the model grid and the
architecture searches have: the experiment hashes to a stable key (the
space's content digest × the population spec × the compiler mode), the
per-configuration measurements persist as
:class:`~repro.service.MeasurementStore` shards under ``hwsweep-<key>``, and
re-running an unchanged experiment replays entirely from disk while an
interrupted grid sweep resumes with exactly the missing configurations.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from .. import obs
from ..errors import PipelineError
from ..hwspace.frontier import COST_PROXIES, ConfigPoint, HardwareFrontier
from ..hwspace.space import AcceleratorSpace
from ..service.store import MeasurementStore, StoreStats
from ..simulator.runner import MeasurementSet
from .experiment import CACHE_FORMAT_VERSION, PopulationSpec, stable_key


@dataclass(frozen=True)
class HardwareSweepExperiment:
    """One named, cacheable hardware design-space sweep."""

    name: str
    space: AcceleratorSpace
    population: PopulationSpec = field(default_factory=PopulationSpec)
    enable_parameter_caching: bool = True
    min_accuracy: float = 0.70

    def sweep_key(self) -> str:
        """Stable digest of everything that determines the sweep's arrays.

        The experiment *name* is deliberately excluded (renaming must not
        invalidate cached shards); the space enters through its content
        digest, so rewriting the same grid differently changes nothing.
        """
        return stable_key(
            {
                "kind": "hwsweep",
                "version": CACHE_FORMAT_VERSION,
                "population": asdict(self.population),
                "space": self.space.digest,
                "parameter_caching": self.enable_parameter_caching,
            }
        )


@dataclass
class HardwareSweepResult:
    """A finished (or replayed) hardware sweep with its Pareto frontiers."""

    experiment: HardwareSweepExperiment
    points: list[ConfigPoint]
    #: One frontier per cost proxy (performance = mean latency).
    frontiers: dict[str, list[ConfigPoint]]
    measurements: MeasurementSet
    store_stats: StoreStats
    replayed: bool
    elapsed_seconds: float


def run_hardware_sweep(
    experiment: HardwareSweepExperiment,
    cache_dir: str | Path | None = None,
    n_jobs: int = 1,
    progress_callback: Callable[[str, int, int], None] | None = None,
    compact: bool = False,
) -> HardwareSweepResult:
    """Sweep the experiment's population over its whole hardware grid.

    With *cache_dir* set, measurements live under ``hwsweep-<key>`` shards in
    that directory: a repeated run with an unchanged experiment simulates
    nothing (``result.replayed`` is ``True``) and an interrupted sweep
    resumes with only the missing (shard, configuration) pairs.  The result
    carries one hardware Pareto frontier per cost proxy (peak TOPS and total
    SRAM), both measured as mean latency over the accuracy-filtered
    population.

    With *compact* (requires *cache_dir*), the finished grid sweep is merged
    into one memory-mapped consolidated file — a wide hardware grid is
    exactly the many-small-files regime compaction exists for (pairs scale
    with ``shards × grid points``), so warm replays become O(open).
    """
    start = time.perf_counter()
    store = None
    if cache_dir is not None:
        store = MeasurementStore(
            Path(cache_dir),
            enable_parameter_caching=experiment.enable_parameter_caching,
            prefix=f"hwsweep-{experiment.sweep_key()}",
        )
    with obs.span("hwsweep.build", models=experiment.population.num_models):
        dataset = experiment.population.build()
    frontier = HardwareFrontier(
        dataset,
        store=store,
        enable_parameter_caching=experiment.enable_parameter_caching,
        min_accuracy=experiment.min_accuracy,
    )
    configs = list(experiment.space.enumerate())
    with obs.span("hwsweep.sweep", configs=len(configs), models=len(dataset)):
        measurements = frontier.sweep(
            configs, n_jobs=n_jobs, progress_callback=progress_callback
        )
    if compact:
        if store is None:
            raise PipelineError("compact=True requires a cache_dir to compact into")
        with obs.span("hwsweep.compact"):
            store.compact(dataset, configs=configs)
    with obs.span("hwsweep.frontier", points=len(configs)):
        points = frontier.summarize(configs, measurements)
        frontiers = {
            cost: frontier.pareto(points, metric="mean_latency_ms", cost=cost)
            for cost in COST_PROXIES
        }
    return HardwareSweepResult(
        experiment=experiment,
        points=points,
        frontiers=frontiers,
        measurements=measurements,
        store_stats=store.stats if store is not None else StoreStats(),
        replayed=store is not None and store.stats.pairs_simulated == 0,
        elapsed_seconds=time.perf_counter() - start,
    )
