"""Experiment orchestration for the learned performance model.

This subsystem runs the paper's per-configuration × per-metric model grid as
one declarative :class:`Experiment`, with deterministic seeding and npz disk
caching of both the simulator labels and the trained weights so repeated
runs are incremental (DESIGN.md §5).  :class:`SearchExperiment` gives
architecture searches the same lifecycle: spec-keyed measurement shards,
resume after interruption, full replay over a warm cache, and a persisted
Pareto archive (DESIGN.md §7).
"""

from .cache import CacheStats, ExperimentCache
from .experiment import (
    CACHE_FORMAT_VERSION,
    Experiment,
    PopulationSpec,
    stable_key,
)
from .hwspace import (
    HardwareSweepExperiment,
    HardwareSweepResult,
    run_hardware_sweep,
)
from .runner import ExperimentResult, GridCellResult, run_experiment
from .search import (
    SearchExperiment,
    SearchExperimentResult,
    load_search_archive,
    run_search_experiment,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "Experiment",
    "ExperimentCache",
    "ExperimentResult",
    "GridCellResult",
    "HardwareSweepExperiment",
    "HardwareSweepResult",
    "PopulationSpec",
    "SearchExperiment",
    "SearchExperimentResult",
    "load_search_archive",
    "run_experiment",
    "run_hardware_sweep",
    "run_search_experiment",
    "stable_key",
]
