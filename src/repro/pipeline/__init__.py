"""Experiment orchestration for the learned performance model.

This subsystem runs the paper's per-configuration × per-metric model grid as
one declarative :class:`Experiment`, with deterministic seeding and npz disk
caching of both the simulator labels and the trained weights so repeated
runs are incremental.  See DESIGN.md §5 for the architecture.
"""

from .cache import CacheStats, ExperimentCache
from .experiment import (
    CACHE_FORMAT_VERSION,
    Experiment,
    PopulationSpec,
    stable_key,
)
from .runner import ExperimentResult, GridCellResult, run_experiment

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "Experiment",
    "ExperimentCache",
    "ExperimentResult",
    "GridCellResult",
    "PopulationSpec",
    "run_experiment",
    "stable_key",
]
