"""End-to-end experiment runner: sample → label → split → train → evaluate.

:func:`run_experiment` executes the paper's Table 8 workflow as one call:

1. **sample** the population described by the experiment's
   :class:`~repro.pipeline.experiment.PopulationSpec` (deterministic seed);
2. **label** it with the vectorized :class:`~repro.simulator.batch.BatchSimulator`
   sweep over every configuration of the grid (cached as npz);
3. **pack** the cells into one :class:`~repro.core.graph_table.GraphTable`
   shared by every model of the grid;
4. **train** one :class:`~repro.core.predictor.LearnedPerformanceModel` per
   (configuration, metric) cell of the grid — 60/20/20 split and shuffling
   seeded from the experiment settings — restoring weights from the cache
   when an identical model was trained before;
5. **evaluate** each model on its held-out test split (Table 8 metrics).

The returned :class:`ExperimentResult` carries the raw
:class:`~repro.simulator.runner.MeasurementSet`, so pipeline output flows
straight into the array-based ``repro.analysis`` entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .. import obs
from ..arch.config import get_config
from ..core.graph_table import GraphTable
from ..core.metrics import EstimationReport
from ..core.predictor import LearnedPerformanceModel, metric_targets
from ..errors import ModelError, PipelineError
from ..nasbench.dataset import NASBenchDataset
from ..simulator.batch import BatchSimulator
from ..simulator.runner import MeasurementSet
from .cache import CacheStats, ExperimentCache
from .experiment import Experiment


@dataclass(frozen=True)
class GridCellResult:
    """One (configuration, metric) cell of the experiment grid."""

    config_name: str
    metric: str
    model: LearnedPerformanceModel
    report: EstimationReport
    from_cache: bool


@dataclass
class ExperimentResult:
    """Everything one :func:`run_experiment` call produced."""

    experiment: Experiment
    dataset: NASBenchDataset
    measurements: MeasurementSet
    models: dict[tuple[str, str], GridCellResult]
    skipped: list[tuple[str, str, str]] = field(default_factory=list)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    elapsed_seconds: float = 0.0

    def model(self, config_name: str, metric: str = "latency") -> LearnedPerformanceModel:
        """The trained model of one grid cell."""
        return self._cell(config_name, metric).model

    def report(self, config_name: str, metric: str = "latency") -> EstimationReport:
        """The held-out Table 8 report of one grid cell."""
        return self._cell(config_name, metric).report

    def summary_lines(self) -> list[str]:
        """Human-readable Table 8-style summary of the whole grid."""
        lines = [
            f"Experiment {self.experiment.name!r}: "
            f"{len(self.dataset)} models, grid "
            f"{len(self.experiment.config_names)} configs x "
            f"{len(self.experiment.metrics)} metrics, "
            f"cache {self.cache_stats.hits} hits / {self.cache_stats.misses} misses, "
            f"{self.elapsed_seconds:.2f}s"
        ]
        header = (
            f"{'config':<8}{'metric':<10}{'accuracy':>10}"
            f"{'spearman':>10}{'pearson':>10}{'cached':>8}"
        )
        lines.append(header)
        for (config_name, metric), cell in sorted(self.models.items()):
            lines.append(
                f"{config_name:<8}{metric:<10}"
                f"{cell.report.average_accuracy:>10.4f}"
                f"{cell.report.spearman:>10.5f}"
                f"{cell.report.pearson:>10.5f}"
                f"{'yes' if cell.from_cache else 'no':>8}"
            )
        for config_name, metric, reason in self.skipped:
            lines.append(f"{config_name:<8}{metric:<10}  skipped: {reason}")
        return lines

    def _cell(self, config_name: str, metric: str) -> GridCellResult:
        try:
            return self.models[(config_name, metric)]
        except KeyError as exc:
            raise PipelineError(
                f"experiment has no trained model for ({config_name!r}, {metric!r})"
            ) from exc


def run_experiment(
    experiment: Experiment,
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    compact: bool = False,
) -> ExperimentResult:
    """Run *experiment* end to end, reusing cached artifacts when possible.

    With *cache_dir* set, simulator measurements and trained weights are
    stored as npz files keyed by the experiment's stable hashes; a repeated
    run with an unchanged spec then skips both the sweep and every training
    loop.  Grid cells whose metric is unavailable for a configuration (energy
    on V3) are skipped and listed in ``result.skipped``.

    With *compact* (requires *cache_dir*), the finished labeling sweep is
    additionally merged into one memory-mapped consolidated file
    (:meth:`~repro.service.store.MeasurementStore.compact`), so warm re-runs
    load the measurements in O(open) instead of one npz per (shard,
    configuration) pair.
    """
    start = time.perf_counter()
    say = progress or (lambda message: None)

    say(f"sampling population ({experiment.population.num_models} models)")
    with obs.span("pipeline.sample", models=experiment.population.num_models):
        dataset = experiment.population.build()

    cache = ExperimentCache(Path(cache_dir)) if cache_dir is not None else None
    configs = [get_config(name) for name in experiment.config_names]
    simulator = BatchSimulator(enable_parameter_caching=experiment.enable_parameter_caching)

    if cache is not None:
        # Labeling goes through the resumable shard store: shards already on
        # disk are loaded and only the missing (shard, config) pairs are
        # simulated, so an interrupted labeling sweep resumes where it
        # stopped instead of restarting.
        store = cache.measurement_store(
            experiment.measurement_key(),
            enable_parameter_caching=experiment.enable_parameter_caching,
        )
        say(f"labeling population on {len(configs)} configurations (sharded sweep)")
        with obs.span("pipeline.label", configs=len(configs), models=len(dataset)):
            measurements = simulator.evaluate(dataset, configs=configs, store=store)
        if store.stats.pairs_simulated == 0:
            cache.stats.measurement_hits += 1
            say("labeling: measurement store hit (every shard on disk)")
        else:
            cache.stats.measurement_misses += 1
            say(
                f"labeling: simulated {store.stats.pairs_simulated} and loaded "
                f"{store.stats.pairs_loaded} (shard, config) pairs"
            )
        if compact:
            with obs.span("pipeline.compact"):
                result = store.compact(dataset, configs=configs)
            say(
                f"compacted {result.pairs} (shard, config) pairs into "
                f"{result.data_path.name} ({result.loose_removed} loose files removed)"
            )
    else:
        if compact:
            raise PipelineError("compact=True requires a cache_dir to compact into")
        say(f"labeling population on {len(configs)} configurations (vectorized sweep)")
        with obs.span("pipeline.label", configs=len(configs), models=len(dataset)):
            measurements = simulator.evaluate(dataset, configs=configs)

    say("packing graph table")
    with obs.span("pipeline.pack", models=len(dataset)):
        table = GraphTable.from_cells([record.cell for record in dataset])

    models: dict[tuple[str, str], GridCellResult] = {}
    skipped: list[tuple[str, str, str]] = []
    for config_name in experiment.config_names:
        for metric in experiment.metrics:
            try:
                targets = metric_targets(measurements, config_name, metric)
            except ModelError as exc:
                say(f"skipping {config_name}/{metric}: {exc}")
                skipped.append((config_name, metric, str(exc)))
                continue
            key = experiment.model_key(config_name, metric)
            model = LearnedPerformanceModel(config_name, experiment.settings)
            state = cache.load_model_state(key) if cache is not None else None
            if state is not None:
                try:
                    model.restore_state(table, state)
                except ModelError as exc:
                    # Stale artifact (e.g. the sampler changed under an
                    # unchanged spec): recompute instead of mislabeling.
                    say(f"discarding stale cache for {config_name}/{metric}: {exc}")
                    cache.reclassify_model_hit_as_miss()
                    state = None
                    model = LearnedPerformanceModel(config_name, experiment.settings)
            if state is not None:
                say(f"restoring {config_name}/{metric} from cache")
                from_cache = True
            else:
                say(f"training {config_name}/{metric} ({experiment.settings.epochs} epochs)")
                with obs.span(
                    "pipeline.train",
                    config=config_name,
                    metric=metric,
                    epochs=experiment.settings.epochs,
                ):
                    model.fit_table(table, targets)
                if cache is not None:
                    cache.save_model_state(key, model.export_state())
                from_cache = False
            models[(config_name, metric)] = GridCellResult(
                config_name=config_name,
                metric=metric,
                model=model,
                report=model.evaluate("test"),
                from_cache=from_cache,
            )

    if not models:
        raise PipelineError("every grid cell of the experiment was skipped; nothing was trained")
    return ExperimentResult(
        experiment=experiment,
        dataset=dataset,
        measurements=measurements,
        models=models,
        skipped=skipped,
        cache_stats=cache.stats if cache is not None else CacheStats(),
        elapsed_seconds=time.perf_counter() - start,
    )
