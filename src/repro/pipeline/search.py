"""Cached search experiments: run, resume and replay architecture searches.

A :class:`SearchExperiment` gives a search the same lifecycle the learned
model grid has (:mod:`repro.pipeline.runner`): the spec hashes to a stable
key, the per-generation sweeps go through a :class:`~repro.service.MeasurementStore`
embedded in the cache directory under ``search-<key>``, and the final Pareto
archive is persisted next to the shards.  Because the engine's generation
sequence is deterministic in the spec, re-running an unchanged experiment
over a warm cache **replays** the search — every shard loads from disk,
nothing is simulated — while a run interrupted mid-search resumes with only
the missing generations simulated.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from ..analysis.archive import ParetoArchive
from ..search.engine import SearchEngine
from ..search.result import SearchResult
from ..search.spec import SearchSpec
from ..service.store import MeasurementStore
from .experiment import CACHE_FORMAT_VERSION, stable_key


@dataclass(frozen=True)
class SearchExperiment:
    """One named, cacheable architecture search."""

    name: str
    spec: SearchSpec = field(default_factory=SearchSpec)

    def search_key(self) -> str:
        """Stable digest of everything that determines the search outcome.

        The experiment *name* is deliberately excluded, exactly like the
        model grid's keys: renaming an experiment must not invalidate its
        cached sweep.
        """
        return stable_key(
            {
                "kind": "search",
                "version": CACHE_FORMAT_VERSION,
                "spec": asdict(self.spec),
            }
        )


@dataclass
class SearchExperimentResult:
    """A finished (or replayed) search experiment."""

    experiment: SearchExperiment
    result: SearchResult
    replayed: bool
    archive_path: Path | None
    elapsed_seconds: float


def run_search_experiment(
    experiment: SearchExperiment,
    cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> SearchExperimentResult:
    """Run *experiment*, reusing every cached generation sweep.

    With *cache_dir* set, the search's measurement shards live under
    ``search-<key>`` in that directory: a repeated run with an unchanged spec
    simulates nothing (``result.replayed`` is ``True``), an interrupted run
    resumes where it stopped, and the final frontier is persisted as
    ``search-<key>-archive.npz`` (reload it with
    :meth:`~repro.analysis.ParetoArchive.load`).  Without a cache directory
    the search still runs store-backed, but against a temporary directory
    that disappears with the engine.
    """
    start = time.perf_counter()
    spec = experiment.spec
    store = None
    archive_path = None
    if cache_dir is not None:
        key = experiment.search_key()
        root = Path(cache_dir)
        store = MeasurementStore(
            root,
            shard_size=spec.population_size,
            enable_parameter_caching=spec.enable_parameter_caching,
            prefix=f"search-{key}",
        )
        archive_path = root / f"search-{key}-archive.npz"

    engine = SearchEngine(spec, store=store)
    result = engine.run(progress)
    replayed = store is not None and store.stats.pairs_simulated == 0
    if archive_path is not None:
        result.archive.save(archive_path)
    return SearchExperimentResult(
        experiment=experiment,
        result=result,
        replayed=replayed,
        archive_path=archive_path,
        elapsed_seconds=time.perf_counter() - start,
    )


def load_search_archive(
    experiment: SearchExperiment, cache_dir: str | Path
) -> ParetoArchive:
    """Reload the persisted frontier of a finished search experiment."""
    key = experiment.search_key()
    return ParetoArchive.load(Path(cache_dir) / f"search-{key}-archive.npz")
