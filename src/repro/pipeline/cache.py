"""On-disk npz cache of measurements and trained model weights.

Artifacts are keyed by the stable experiment hashes of
:mod:`repro.pipeline.experiment`:

* measurements live in a sharded, resumable
  :class:`~repro.service.store.MeasurementStore` embedded under the prefix
  ``measurements-<key>`` (per-shard npz files, cell fingerprints verified on
  load) — the legacy whole-set ``load_measurements`` / ``save_measurements``
  entry points are thin adapters over it, and :func:`run_experiment` goes
  through the store directly so interrupted labeling sweeps resume instead
  of restarting;
* ``model-<key>.npz`` — the flat state dict exported by
  :meth:`LearnedPerformanceModel.export_state` (weights, normalizer stats,
  split indices, loss history, raw targets).

The cache counts hits and misses (:class:`CacheStats`) so experiment results
can report exactly how incremental a re-run was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import PipelineError, ServiceError, SimulationError
from ..nasbench.dataset import NASBenchDataset
from ..service.store import DEFAULT_SHARD_SIZE, MeasurementStore, read_npz, write_npz
from ..simulator.runner import MeasurementSet


@dataclass
class CacheStats:
    """Hit/miss counters of one pipeline run."""

    measurement_hits: int = 0
    measurement_misses: int = 0
    model_hits: int = 0
    model_misses: int = 0

    @property
    def hits(self) -> int:
        """Total artifacts served from disk."""
        return self.measurement_hits + self.model_hits

    @property
    def misses(self) -> int:
        """Total artifacts that had to be recomputed."""
        return self.measurement_misses + self.model_misses


@dataclass
class ExperimentCache:
    """npz artifact store rooted at a directory (created on first write)."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def model_path(self, key: str) -> Path:
        """File path of a cached trained-model state."""
        return self.root / f"model-{key}.npz"

    # ------------------------------------------------------------------ #
    # Measurements (adapter over the sharded measurement store)
    # ------------------------------------------------------------------ #
    def measurement_store(
        self,
        key: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        enable_parameter_caching: bool = True,
    ) -> MeasurementStore:
        """The resumable shard store holding the measurements of *key*.

        Shards share the cache's flat root directory under the prefix
        ``measurements-<key>``, so one experiment's sweep is a set of files
        rather than a monolithic archive; the experiment runner sweeps
        through this store directly and only falls back to the whole-set
        adapters below for legacy callers.
        """
        return MeasurementStore(
            self.root,
            shard_size=shard_size,
            enable_parameter_caching=enable_parameter_caching,
            prefix=f"measurements-{key}",
        )

    def load_measurements(
        self,
        key: str,
        dataset: NASBenchDataset,
        enable_parameter_caching: bool = True,
    ) -> MeasurementSet | None:
        """Load the measurement set at *key*, verifying the population.

        Returns ``None`` (a miss) when any shard is absent, corrupt, or has
        cell fingerprints not matching *dataset* exactly.  The
        *enable_parameter_caching* mode is part of every shard key and must
        match the mode the measurements were saved with.
        """
        store = self.measurement_store(key, enable_parameter_caching=enable_parameter_caching)
        config_names = store.available_configs()
        if not config_names:
            self.stats.measurement_misses += 1
            return None
        try:
            measurements = store.load(dataset, configs=config_names)
        except (ServiceError, SimulationError):
            self.stats.measurement_misses += 1
            return None
        self.stats.measurement_hits += 1
        return measurements

    def save_measurements(
        self,
        key: str,
        measurements: MeasurementSet,
        enable_parameter_caching: bool = True,
    ) -> Path:
        """Persist a measurement set under *key* (shard-by-shard).

        *enable_parameter_caching* must state the compiler mode the
        measurements were simulated with — it enters every shard key, so a
        mislabeled mode would poison later mode-checked loads.  Returns the
        directory holding the shard files.
        """
        try:
            self.measurement_store(
                key, enable_parameter_caching=enable_parameter_caching
            ).ingest(measurements)
        except ServiceError as exc:
            raise PipelineError(str(exc)) from exc
        return self.root

    # ------------------------------------------------------------------ #
    # Trained models
    # ------------------------------------------------------------------ #
    def load_model_state(self, key: str) -> dict[str, np.ndarray] | None:
        """Load a trained-model state dict, or ``None`` on a miss."""
        state = read_npz(self.model_path(key))
        if state is None:
            self.stats.model_misses += 1
            return None
        self.stats.model_hits += 1
        return state

    def save_model_state(self, key: str, state: dict[str, np.ndarray]) -> Path:
        """Persist a trained-model state dict under *key*."""
        try:
            return write_npz(self.model_path(key), state)
        except ServiceError as exc:
            raise PipelineError(str(exc)) from exc

    def reclassify_model_hit_as_miss(self) -> None:
        """Recount the last model hit as a miss.

        Called when a loaded state proves stale during restore (validation the
        cache itself cannot perform, e.g. the population feature digest); the
        bookkeeping stays in one module so the counters cannot drift.
        """
        self.stats.model_hits -= 1
        self.stats.model_misses += 1
