"""On-disk npz cache of measurements and trained model weights.

Artifacts are keyed by the stable experiment hashes of
:mod:`repro.pipeline.experiment`:

* ``measurements-<key>.npz`` — per-configuration latency/energy arrays plus
  the population's cell fingerprints (verified on load, so a stale or
  mismatched file degrades to a cache miss instead of silently mislabeling);
* ``model-<key>.npz`` — the flat state dict exported by
  :meth:`LearnedPerformanceModel.export_state` (weights, normalizer stats,
  split indices, loss history, raw targets).

The cache counts hits and misses (:class:`CacheStats`) so experiment results
can report exactly how incremental a re-run was.
"""

from __future__ import annotations

import os
import uuid
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import PipelineError
from ..nasbench.dataset import NASBenchDataset
from ..simulator.runner import MeasurementSet


@dataclass
class CacheStats:
    """Hit/miss counters of one pipeline run."""

    measurement_hits: int = 0
    measurement_misses: int = 0
    model_hits: int = 0
    model_misses: int = 0

    @property
    def hits(self) -> int:
        """Total artifacts served from disk."""
        return self.measurement_hits + self.model_hits

    @property
    def misses(self) -> int:
        """Total artifacts that had to be recomputed."""
        return self.measurement_misses + self.model_misses


@dataclass
class ExperimentCache:
    """npz artifact store rooted at a directory (created on first write)."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def measurement_path(self, key: str) -> Path:
        """File path of a cached measurement set."""
        return self.root / f"measurements-{key}.npz"

    def model_path(self, key: str) -> Path:
        """File path of a cached trained-model state."""
        return self.root / f"model-{key}.npz"

    # ------------------------------------------------------------------ #
    # Measurements
    # ------------------------------------------------------------------ #
    def load_measurements(
        self, key: str, dataset: NASBenchDataset
    ) -> MeasurementSet | None:
        """Load the measurement set at *key*, verifying the population.

        Returns ``None`` (a miss) when the file is absent or its stored cell
        fingerprints do not match *dataset* exactly.
        """
        path = self.measurement_path(key)
        stored = self._read(path)
        if stored is None:
            self.stats.measurement_misses += 1
            return None
        fingerprints = np.array([record.fingerprint for record in dataset])
        if not np.array_equal(stored.get("fingerprints"), fingerprints):
            self.stats.measurement_misses += 1
            return None
        latencies = {
            name.removeprefix("latency::"): values
            for name, values in stored.items()
            if name.startswith("latency::")
        }
        energies = {
            name.removeprefix("energy::"): values
            for name, values in stored.items()
            if name.startswith("energy::")
        }
        self.stats.measurement_hits += 1
        return MeasurementSet(dataset, latencies, energies)

    def save_measurements(self, key: str, measurements: MeasurementSet) -> Path:
        """Persist a measurement set under *key*."""
        payload: dict[str, np.ndarray] = {
            "fingerprints": np.array(
                [record.fingerprint for record in measurements.dataset]
            )
        }
        for name in measurements.config_names:
            payload[f"latency::{name}"] = measurements.latencies(name)
            payload[f"energy::{name}"] = measurements.energies(name)
        return self._write(self.measurement_path(key), payload)

    # ------------------------------------------------------------------ #
    # Trained models
    # ------------------------------------------------------------------ #
    def load_model_state(self, key: str) -> dict[str, np.ndarray] | None:
        """Load a trained-model state dict, or ``None`` on a miss."""
        state = self._read(self.model_path(key))
        if state is None:
            self.stats.model_misses += 1
            return None
        self.stats.model_hits += 1
        return state

    def save_model_state(self, key: str, state: dict[str, np.ndarray]) -> Path:
        """Persist a trained-model state dict under *key*."""
        return self._write(self.model_path(key), state)

    def reclassify_model_hit_as_miss(self) -> None:
        """Recount the last model hit as a miss.

        Called when a loaded state proves stale during restore (validation the
        cache itself cannot perform, e.g. the population feature digest); the
        bookkeeping stays in one module so the counters cannot drift.
        """
        self.stats.model_hits -= 1
        self.stats.model_misses += 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _read(self, path: Path) -> dict[str, np.ndarray] | None:
        """Load an npz artifact; a missing or corrupt file is ``None`` (miss).

        Corruption can happen when concurrent runs share a cache directory
        and interleave writes to the same temp path; degrading to a miss
        re-computes the artifact instead of crashing or mislabeling.
        """
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile):
            return None

    def _write(self, path: Path, payload: dict[str, np.ndarray]) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer: concurrent runs sharing a cache_dir
        # then race only on the atomic replace(), never on the bytes.
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}.npz")
        try:
            np.savez_compressed(tmp, **payload)
            tmp.replace(path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise PipelineError(f"failed to write cache artifact {path}: {exc}") from exc
        return path
