"""Experiment specification for the learned-model pipeline.

The paper's Section 4/5 workflow is a *grid*: one learned performance model
per accelerator configuration and per metric (latency, energy), all trained
on simulator measurements of the same sampled population.  An
:class:`Experiment` captures that grid declaratively — population spec ×
configuration names × metric names × training hyperparameters — and every
piece of it is hashable into stable cache keys so re-runs are incremental
(see :mod:`repro.pipeline.cache`).

Keys are SHA-256 digests of a canonical JSON rendering of the spec fields,
so any change to the population, the simulated configurations, the caching
mode or the training hyperparameters produces a different key, while
irrelevant changes (the experiment *name*, the metric grid for measurement
keys) do not invalidate cached artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..core.predictor import SUPPORTED_METRICS, TrainingSettings
from ..errors import PipelineError
from ..nasbench.dataset import NASBenchDataset

#: Bump to invalidate every cached artifact when the on-disk format changes.
CACHE_FORMAT_VERSION = 1


def stable_key(payload: object) -> str:
    """Short stable digest of a JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PopulationSpec:
    """Deterministic recipe for the training population.

    ``NASBenchDataset.generate`` is fully determined by these fields, so the
    spec (not the sampled cells) is what enters the cache keys; the cache
    additionally verifies the sampled fingerprints on load.
    """

    num_models: int = 400
    seed: int = 0
    include_famous_cells: bool = True

    def build(self) -> NASBenchDataset:
        """Sample the population this spec describes."""
        return NASBenchDataset.generate(
            num_models=self.num_models,
            seed=self.seed,
            include_famous_cells=self.include_famous_cells,
        )


@dataclass(frozen=True)
class Experiment:
    """One learned-model experiment: population × configs × metrics grid."""

    name: str
    population: PopulationSpec = field(default_factory=PopulationSpec)
    config_names: tuple[str, ...] = ("V1", "V2", "V3")
    metrics: tuple[str, ...] = ("latency",)
    settings: TrainingSettings = field(default_factory=TrainingSettings)
    enable_parameter_caching: bool = True

    def __post_init__(self) -> None:
        if not self.config_names:
            raise PipelineError("an experiment needs at least one configuration")
        if not self.metrics:
            raise PipelineError("an experiment needs at least one metric")
        for metric in self.metrics:
            if metric not in SUPPORTED_METRICS:
                raise PipelineError(
                    f"unknown metric {metric!r}; expected one of {SUPPORTED_METRICS}"
                )

    # ------------------------------------------------------------------ #
    # Cache keys
    # ------------------------------------------------------------------ #
    def measurement_key(self) -> str:
        """Key of the simulator-labeled measurement set of this experiment.

        Depends on the population, the simulated configurations and the
        compiler's parameter-caching mode — everything that changes the
        ground-truth arrays, and nothing else.
        """
        return stable_key(
            {
                "kind": "measurements",
                "version": CACHE_FORMAT_VERSION,
                "population": asdict(self.population),
                "configs": sorted(self.config_names),
                "parameter_caching": self.enable_parameter_caching,
            }
        )

    def model_key(self, config_name: str, metric: str) -> str:
        """Key of one trained (configuration, metric) model of the grid."""
        return stable_key(
            {
                "kind": "model",
                "version": CACHE_FORMAT_VERSION,
                "population": asdict(self.population),
                "parameter_caching": self.enable_parameter_caching,
                "config": config_name,
                "metric": metric,
                "settings": asdict(self.settings),
            }
        )
