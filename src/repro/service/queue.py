"""Filesystem-backed work queue for distributed sweep draining.

``MeasurementStore.sweep(n_jobs=...)`` is a single-host process pool: one
coordinating process owns the shard list and its workers die with it.  This
module promotes the (shard, configuration) pair to a first-class work unit
that *independent* worker processes — or hosts sharing the store directory
over a network filesystem — can drain without any coordinator process:

* :class:`SweepManifest` — the full pair list of one sweep, content-keyed
  like the shards themselves (the digest covers the shard fingerprints, the
  configurations, the network config and the compiler mode).  The manifest
  embeds the shard *cells*, so a worker needs nothing but the store
  directory to rebuild and simulate any pair.
* **Lease files** — a worker claims a pair by *atomically creating*
  ``queue/<manifest>/lease-<pair>.json`` carrying its owner id, a heartbeat
  timestamp and an expiry window.  Heartbeats are renewed while simulating;
  any worker may steal a lease whose heartbeat is past expiry (the owner
  crashed or was ``kill -9``-ed).  Steal races are resolved by an atomic
  replace plus read-back, and are harmless even when lost: shard writes are
  content-keyed and idempotent, so double completion produces identical
  bytes.
* :class:`SweepCoordinator` — a read-only observer reporting fleet progress
  (pairs done / leased / orphaned, per-worker throughput from the worker
  report files) and detecting completion.  ``python -m repro.service.queue
  <store_dir>`` prints a status snapshot.

Nothing here ever blocks on a lock: every transition is an atomic filesystem
operation (``link``/``replace``/``unlink``), so a worker dying at *any*
instruction leaves either a claimable pair, a stealable lease, or a
completed shard file.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .. import obs
from ..arch.config import AcceleratorConfig
from ..errors import ServiceError
from ..nasbench.cell import Cell
from ..nasbench.macro import MacroSpec, architecture_from_dict, architecture_to_dict
from ..nasbench.network import NetworkConfig
from .store import STORE_FORMAT_VERSION, stable_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..nasbench.dataset import NASBenchDataset
    from .store import MeasurementStore

#: Bump when the manifest/lease on-disk format changes.
QUEUE_FORMAT_VERSION = 1

#: Default seconds without a heartbeat before a lease counts as orphaned.
DEFAULT_LEASE_EXPIRY = 30.0

#: Subdirectory of the store root holding lease and worker files.
QUEUE_DIR_NAME = "queue"


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write *payload* as JSON via a unique temp name plus atomic replace."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    tmp.replace(path)


def _read_json(path: Path) -> dict | None:
    """Read a JSON file; missing, truncated or partial content is ``None``."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _create_exclusive(path: Path, payload: dict) -> bool:
    """Atomically create *path* with complete JSON content; False if it exists.

    A plain ``open(path, "x")`` creates the name before the bytes, so a
    concurrent reader could observe a half-written lease.  Writing a private
    temp file and hard-linking it into place publishes the name and the full
    content in one atomic step.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.claim-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    tmp.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    try:
        os.link(tmp, path)
        return True
    except FileExistsError:
        return False
    except OSError:
        # Filesystem without hard links: fall back to exclusive open.  The
        # content is tiny, so the non-atomic window is a single write call.
        try:
            with open(path, "x") as handle:
                handle.write(tmp.read_text())
            return True
        except FileExistsError:
            return False
    finally:
        tmp.unlink(missing_ok=True)


# --------------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPair:
    """One unit of work: a (shard, configuration) pair and its content key."""

    shard_index: int
    config_name: str
    key: str

    @property
    def pair_id(self) -> str:
        """Stable filename-safe identity (the key already encodes the shard)."""
        return f"{self.config_name}-{self.key}"


class SweepManifest:
    """The complete, content-keyed pair list of one sweep.

    Everything a worker needs is embedded: the shard cells (JSON form), the
    accelerator configurations (full field dicts, so grid-generated configs
    outside ``STUDIED_CONFIGS`` work), the network config, the compiler mode
    and the per-pair shard keys.  The manifest digest covers all of it, so
    two manifests describe the same sweep iff they share a digest.
    """

    def __init__(self, payload: dict):
        if payload.get("kind") != "sweep-manifest":
            raise ServiceError("not a sweep manifest payload")
        if payload.get("version") != QUEUE_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported manifest version {payload.get('version')!r} "
                f"(expected {QUEUE_FORMAT_VERSION})"
            )
        self._payload = payload
        self.pairs: tuple[SweepPair, ...] = tuple(
            SweepPair(entry["shard"], entry["config"], entry["key"])
            for entry in payload["pairs"]
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        dataset: "NASBenchDataset",
        configs: Sequence[AcceleratorConfig],
        shard_size: int,
        enable_parameter_caching: bool = True,
        prefix: str = "shard",
        strategy: str = "fused",
    ) -> "SweepManifest":
        """Describe the sweep of *dataset* × *configs* as claimable pairs."""
        from .store import MeasurementStore  # deferred: store imports us lazily

        if not configs:
            raise ServiceError("a sweep manifest needs at least one configuration")
        store = MeasurementStore(
            Path("."),  # layout helpers only; never touches the filesystem
            shard_size=shard_size,
            enable_parameter_caching=enable_parameter_caching,
            prefix=prefix,
        )
        shards = []
        pairs = []
        for shard_index, (start, stop) in enumerate(store.shard_ranges(len(dataset))):
            records = dataset.records[start:stop]
            prints = [record.fingerprint for record in records]
            shards.append(
                {
                    "fingerprints": prints,
                    "cells": [record.cell.to_dict() for record in records],
                    "archs": [architecture_to_dict(record.architecture) for record in records],
                }
            )
            for config in configs:
                pairs.append(
                    {
                        "shard": shard_index,
                        "config": config.name,
                        "key": store.shard_key(prints, config.name),
                    }
                )
        content = {
            "kind": "sweep-manifest",
            "version": QUEUE_FORMAT_VERSION,
            "store_version": STORE_FORMAT_VERSION,
            "prefix": prefix,
            "shard_size": int(shard_size),
            "parameter_caching": bool(enable_parameter_caching),
            "strategy": strategy,
            "network_config": {
                "stem_channels": dataset.network_config.stem_channels,
                "num_stacks": dataset.network_config.num_stacks,
                "cells_per_stack": dataset.network_config.cells_per_stack,
                "image_size": dataset.network_config.image_size,
                "image_channels": dataset.network_config.image_channels,
                "num_classes": dataset.network_config.num_classes,
            },
            "configs": [_config_to_dict(config) for config in configs],
            "shards": shards,
            "pairs": pairs,
        }
        content["digest"] = stable_digest(
            {
                "kind": "sweep-manifest",
                "version": QUEUE_FORMAT_VERSION,
                "prefix": prefix,
                "parameter_caching": bool(enable_parameter_caching),
                "pairs": [(entry["shard"], entry["config"], entry["key"]) for entry in pairs],
            }
        )
        return cls(content)

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest":
        """Load a manifest file, verifying its digest field is present."""
        payload = _read_json(Path(path))
        if payload is None:
            raise ServiceError(f"unreadable sweep manifest at {path}")
        return cls(payload)

    @classmethod
    def find(cls, store_dir: str | Path, digest: str | None = None) -> "SweepManifest":
        """Load the manifest of *store_dir* (by digest, or the only one).

        With several manifests present and no digest given, the choice would
        be ambiguous — that is an error, not a guess.
        """
        root = Path(store_dir)
        if digest is not None:
            return cls.load(root / f"manifest-{digest}.json")
        candidates = sorted(root.glob("manifest-*.json"))
        if not candidates:
            raise ServiceError(f"no sweep manifest found in {root}")
        if len(candidates) > 1:
            names = ", ".join(path.name for path in candidates)
            raise ServiceError(
                f"multiple sweep manifests in {root} ({names}); pass the digest "
                "of the one to drain"
            )
        return cls.load(candidates[0])

    def save(self, store_dir: str | Path) -> Path:
        """Persist the manifest as ``manifest-<digest>.json`` in *store_dir*."""
        path = Path(store_dir) / f"manifest-{self.digest}.json"
        _write_json_atomic(path, self._payload)
        return path

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def digest(self) -> str:
        return self._payload["digest"]

    @property
    def prefix(self) -> str:
        return self._payload["prefix"]

    @property
    def shard_size(self) -> int:
        return self._payload["shard_size"]

    @property
    def enable_parameter_caching(self) -> bool:
        return self._payload["parameter_caching"]

    @property
    def strategy(self) -> str:
        return self._payload.get("strategy", "fused")

    @property
    def num_shards(self) -> int:
        return len(self._payload["shards"])

    def network_config(self) -> NetworkConfig:
        return NetworkConfig(**self._payload["network_config"])

    def config(self, name: str) -> AcceleratorConfig:
        for entry in self._payload["configs"]:
            if entry["name"] == name:
                return AcceleratorConfig(**entry)
        raise ServiceError(f"manifest has no configuration named {name!r}")

    def config_names(self) -> list[str]:
        return [entry["name"] for entry in self._payload["configs"]]

    def shard_fingerprints(self, shard_index: int) -> list[str]:
        return list(self._payload["shards"][shard_index]["fingerprints"])

    def shard_cells(self, shard_index: int) -> list[Cell]:
        return [Cell.from_dict(entry) for entry in self._payload["shards"][shard_index]["cells"]]

    def shard_archs(self, shard_index: int) -> list[Cell | MacroSpec]:
        """Architectures of one shard — macro specs when the sweep used them.

        Prefers the tagged ``archs`` entries; manifests written before the
        macro-space release carry only ``cells`` and fall back to them.
        """
        shard = self._payload["shards"][shard_index]
        if "archs" in shard:
            return [architecture_from_dict(entry) for entry in shard["archs"]]
        return [Cell.from_dict(entry) for entry in shard["cells"]]

    def pair_path(self, store_dir: str | Path, pair: SweepPair) -> Path:
        """Shard file the pair completes into (the store's naming scheme)."""
        return Path(store_dir) / f"{self.prefix}-{pair.config_name}-{pair.key}.npz"


def _config_to_dict(config: AcceleratorConfig) -> dict:
    """All constructor fields of an AcceleratorConfig as a plain dict."""
    return {
        name: getattr(config, name)
        for name in config.__dataclass_fields__
    }


# --------------------------------------------------------------------------- #
# Leases
# --------------------------------------------------------------------------- #
@dataclass
class PairLease:
    """A worker's claim on one pair; ``lost`` flips when a steal is observed."""

    pair: SweepPair
    owner: str
    path: Path
    expiry_seconds: float
    claimed_at: float
    #: The claim replaced an orphaned lease instead of creating a fresh one.
    stolen: bool = field(default=False)
    #: Another worker stole this lease from *us* (observed at renewal).
    lost: bool = field(default=False)

    def payload(self, heartbeat: float | None = None) -> dict:
        return {
            "kind": "pair-lease",
            "version": QUEUE_FORMAT_VERSION,
            "pair": self.pair.pair_id,
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "claimed_at": self.claimed_at,
            "heartbeat": heartbeat if heartbeat is not None else time.time(),
            "expiry_seconds": self.expiry_seconds,
        }


class WorkQueue:
    """Lease-based claim/renew/steal/release over one manifest's pairs."""

    def __init__(
        self,
        store_dir: str | Path,
        manifest: SweepManifest,
        expiry_seconds: float = DEFAULT_LEASE_EXPIRY,
    ):
        if expiry_seconds <= 0:
            raise ServiceError(f"lease expiry must be positive, got {expiry_seconds}")
        self.store_dir = Path(store_dir)
        self.manifest = manifest
        self.expiry_seconds = float(expiry_seconds)
        self.queue_dir = self.store_dir / QUEUE_DIR_NAME / manifest.digest

    # ------------------------------------------------------------------ #
    # Pair state
    # ------------------------------------------------------------------ #
    def lease_path(self, pair: SweepPair) -> Path:
        return self.queue_dir / f"lease-{pair.pair_id}.json"

    def is_done(self, pair: SweepPair) -> bool:
        """A pair is complete iff its content-keyed shard file exists."""
        return self.manifest.pair_path(self.store_dir, pair).exists()

    def lease_state(self, pair: SweepPair, now: float | None = None) -> str:
        """``"free"``, ``"leased"`` or ``"orphaned"`` (ignoring completion)."""
        path = self.lease_path(pair)
        if not path.exists():
            return "free"
        payload = _read_json(path)
        if payload is None:
            # Truncated lease from a crashed fallback writer: stealable once
            # the file itself is old enough to be past expiry.
            try:
                age = (now or time.time()) - path.stat().st_mtime
            except OSError:
                return "free"
            return "orphaned" if age > self.expiry_seconds else "leased"
        heartbeat = float(payload.get("heartbeat", 0.0))
        expiry = float(payload.get("expiry_seconds", self.expiry_seconds))
        return "orphaned" if (now or time.time()) > heartbeat + expiry else "leased"

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def try_claim(self, pair: SweepPair, owner: str) -> PairLease | None:
        """Claim *pair* by atomic lease creation (or by stealing an orphan)."""
        lease = PairLease(
            pair=pair,
            owner=owner,
            path=self.lease_path(pair),
            expiry_seconds=self.expiry_seconds,
            claimed_at=time.time(),
        )
        if _create_exclusive(lease.path, lease.payload()):
            obs.log("queue.claim", pair=pair.pair_id, owner=owner)
            return lease
        if self.lease_state(pair) == "orphaned":
            return self._try_steal(lease)
        return None

    def _try_steal(self, lease: PairLease) -> PairLease | None:
        """Replace an orphaned lease with our own, then confirm by read-back.

        Two workers may race to steal the same orphan; the atomic replace
        makes exactly one payload final, and the read-back tells each worker
        whether it was the winner.  (Even a lost race only costs a duplicate
        simulation, which the content-keyed shard write makes harmless.)
        """
        _write_json_atomic(lease.path, lease.payload())
        current = _read_json(lease.path)
        if current is not None and current.get("owner") == lease.owner:
            lease.stolen = True
            obs.log("queue.steal", pair=lease.pair.pair_id, owner=lease.owner)
            return lease
        return None

    def renew(self, lease: PairLease) -> bool:
        """Refresh the lease heartbeat; False (and ``lost``) if stolen."""
        current = _read_json(lease.path)
        if current is None or current.get("owner") != lease.owner:
            lease.lost = True
            obs.log(
                "queue.renew_lost",
                level="warning",
                pair=lease.pair.pair_id,
                owner=lease.owner,
            )
            return False
        _write_json_atomic(lease.path, lease.payload())
        return True

    def release(self, lease: PairLease) -> None:
        """Drop the lease (after the shard file is durably in place).

        Releases only a lease we still own: if a thief replaced it between
        the last heartbeat and now, unlinking would silently drop *their*
        claim.
        """
        current = _read_json(lease.path)
        if current is None or current.get("owner") == lease.owner:
            lease.path.unlink(missing_ok=True)
            obs.log("queue.release", pair=lease.pair.pair_id, owner=lease.owner)

    # ------------------------------------------------------------------ #
    # Worker reports
    # ------------------------------------------------------------------ #
    def worker_report_path(self, owner: str) -> Path:
        return self.queue_dir / f"worker-{owner}.json"

    def write_worker_report(self, owner: str, report: dict) -> None:
        _write_json_atomic(self.worker_report_path(owner), report)

    def worker_reports(self) -> list[dict]:
        reports = []
        for path in sorted(self.queue_dir.glob("worker-*.json")):
            payload = _read_json(path)
            if payload is not None:
                reports.append(payload)
        return reports


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerStatus:
    """One worker's contribution, read from its atomically-updated report."""

    owner: str
    pairs_completed: int
    models_simulated: int
    pairs_per_second: float
    seconds_since_heartbeat: float
    leases_stolen: int = 0
    leases_lost: int = 0
    #: Path of the worker's JSONL trace stream, when it ran with tracing on
    #: (merge the fleet's with ``python -m repro.obs``).
    trace: str | None = None


@dataclass(frozen=True)
class QueueProgress:
    """Fleet-level snapshot of one sweep's drain."""

    pairs_total: int
    pairs_done: int
    pairs_leased: int
    pairs_orphaned: int
    workers: tuple[WorkerStatus, ...]

    @property
    def pairs_remaining(self) -> int:
        return self.pairs_total - self.pairs_done

    @property
    def complete(self) -> bool:
        return self.pairs_done >= self.pairs_total

    def summary(self) -> str:
        lines = [
            f"pairs: {self.pairs_done}/{self.pairs_total} done, "
            f"{self.pairs_leased} leased, {self.pairs_orphaned} orphaned"
        ]
        for worker in self.workers:
            line = (
                f"  {worker.owner}: {worker.pairs_completed} pairs "
                f"({worker.models_simulated} models, "
                f"{worker.pairs_per_second:.2f} pairs/s, heartbeat "
                f"{worker.seconds_since_heartbeat:.1f}s ago)"
            )
            if worker.leases_stolen or worker.leases_lost:
                line += f" [{worker.leases_stolen} stolen, {worker.leases_lost} lost]"
            lines.append(line)
        return "\n".join(lines)


class SweepCoordinator:
    """Read-only fleet observer over one store directory's work queue."""

    def __init__(
        self,
        store_dir: str | Path,
        manifest: SweepManifest | None = None,
        expiry_seconds: float = DEFAULT_LEASE_EXPIRY,
    ):
        self.store_dir = Path(store_dir)
        self.manifest = manifest or SweepManifest.find(self.store_dir)
        self.queue = WorkQueue(self.store_dir, self.manifest, expiry_seconds=expiry_seconds)

    def progress(self) -> QueueProgress:
        now = time.time()
        done = leased = orphaned = 0
        for pair in self.manifest.pairs:
            if self.queue.is_done(pair):
                done += 1
                continue
            state = self.queue.lease_state(pair, now=now)
            if state == "leased":
                leased += 1
            elif state == "orphaned":
                orphaned += 1
        workers = []
        for report in self.queue.worker_reports():
            started = float(report.get("started_at", now))
            heartbeat = float(report.get("heartbeat", started))
            completed = len(report.get("completed", []))
            elapsed = max(heartbeat - started, 1e-9)
            workers.append(
                WorkerStatus(
                    owner=str(report.get("owner", "?")),
                    pairs_completed=completed,
                    models_simulated=int(report.get("models_simulated", 0)),
                    pairs_per_second=completed / elapsed,
                    seconds_since_heartbeat=max(now - heartbeat, 0.0),
                    leases_stolen=int(report.get("leases_stolen", 0)),
                    leases_lost=int(report.get("leases_lost", 0)),
                    trace=report.get("trace"),
                )
            )
        return QueueProgress(
            pairs_total=len(self.manifest.pairs),
            pairs_done=done,
            pairs_leased=leased,
            pairs_orphaned=orphaned,
            workers=tuple(workers),
        )

    def is_complete(self) -> bool:
        return all(self.queue.is_done(pair) for pair in self.manifest.pairs)

    def wait(self, timeout: float | None = None, poll_seconds: float = 0.5) -> bool:
        """Block until the sweep completes; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.is_complete():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll_seconds)
        return True


def iter_pairs_rotated(pairs: Sequence[SweepPair], owner: str) -> Iterable[SweepPair]:
    """Iterate *pairs* starting at an owner-specific offset.

    Workers scanning the pair list from different offsets mostly claim
    disjoint pairs, so the common case pays one lease creation per pair
    instead of N workers colliding on pair 0.
    """
    if not pairs:
        return
    offset = int(stable_digest({"owner": owner}), 16) % len(pairs)
    for index in range(len(pairs)):
        yield pairs[(index + offset) % len(pairs)]


def _main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(
        description="Print a status snapshot of a distributed sweep's work queue."
    )
    parser.add_argument("store_dir", help="measurement store directory holding the manifest")
    parser.add_argument("--manifest", default=None, help="manifest digest (if several)")
    parser.add_argument(
        "--expiry", type=float, default=DEFAULT_LEASE_EXPIRY,
        help="seconds without heartbeat before a lease counts as orphaned",
    )
    args = parser.parse_args(argv)
    manifest = SweepManifest.find(args.store_dir, digest=args.manifest)
    coordinator = SweepCoordinator(args.store_dir, manifest=manifest, expiry_seconds=args.expiry)
    progress = coordinator.progress()
    obs.log(
        "queue.status",
        f"manifest {manifest.digest} ({manifest.num_shards} shards)\n"
        + progress.summary(),
        echo=True,
        pairs_done=progress.pairs_done,
        pairs_total=progress.pairs_total,
        pairs_orphaned=progress.pairs_orphaned,
    )
    return 0 if progress.complete else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(_main())
