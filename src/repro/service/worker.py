"""Crash-tolerant sweep worker: claim → simulate → write → release.

``python -m repro.service.worker <store_dir>`` starts one worker against the
sweep manifest in *store_dir*.  N workers (processes or hosts sharing the
directory) drain the same manifest concurrently; none of them is special and
any of them may die — including ``kill -9`` at any instruction — without
losing the sweep:

* **before claiming** — nothing happened; the pair stays free;
* **while holding a lease** — the heartbeat stops, the lease passes its
  expiry window, and another worker steals it and re-simulates the pair;
* **mid-write** — :func:`~repro.service.store.write_npz` publishes via an
  atomic rename, so a partial temp file is garbage (never read) and the pair
  reads as missing; a truncated file that somehow lands at the final name
  (non-atomic network filesystem) is quarantined by
  :func:`~repro.service.store.read_npz` and re-simulated;
* **after the write, before the release** — the shard file exists, so every
  scan counts the pair done; the stale lease is ignored (done pairs are
  never claimed) and costs nothing.

Workers renew their lease heartbeat from a background thread while the
simulation kernel runs, and record every completion in an atomically-updated
per-worker report file that :class:`~repro.service.queue.SweepCoordinator`
aggregates into fleet progress.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from .. import obs
from ..errors import ServiceError
from ..nasbench.layer_table import LayerTable
from ..nasbench.macro import expand_architecture
from ..simulator.batch import GRID_STRATEGIES, BatchSimulator
from .queue import (
    DEFAULT_LEASE_EXPIRY,
    SweepManifest,
    SweepPair,
    WorkQueue,
    iter_pairs_rotated,
)
from .store import write_npz


@dataclass
class WorkerResult:
    """What one worker's run loop accomplished."""

    owner: str
    pairs_completed: list[str] = field(default_factory=list)
    pairs_simulated: int = 0
    models_simulated: int = 0
    leases_stolen: int = 0
    leases_lost: int = 0
    elapsed_seconds: float = 0.0


class _Heartbeat:
    """Background lease renewal while the simulation kernel runs."""

    def __init__(self, queue: WorkQueue, lease, interval: float):
        self._queue = queue
        self._lease = lease
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._queue.renew(self._lease):
                return  # stolen from us; the run loop checks lease.lost


class SweepWorker:
    """One drain participant over a store directory's sweep manifest.

    Parameters
    ----------
    store_dir:
        The shared measurement-store directory (manifest + shards + queue).
    manifest:
        The manifest to drain (found in *store_dir* when omitted).
    owner:
        Worker identity used in leases and reports; defaults to
        ``<hostname-pid-random>`` so restarted workers never collide.
    expiry_seconds:
        Lease heartbeat expiry; heartbeats renew at a third of this, so the
        expiry must comfortably exceed one renewal interval under load.
    poll_seconds:
        Sleep between scans when every remaining pair is actively leased by
        someone else (waiting for completions or for orphans to expire).
    throttle_seconds:
        Artificial per-pair delay (tests use it to make "mid-sweep" a real
        window on populations that simulate in milliseconds).
    """

    def __init__(
        self,
        store_dir: str | Path,
        manifest: SweepManifest | None = None,
        owner: str | None = None,
        expiry_seconds: float = DEFAULT_LEASE_EXPIRY,
        poll_seconds: float = 0.5,
        throttle_seconds: float = 0.0,
        strategy: str | None = None,
    ):
        self.store_dir = Path(store_dir)
        self.manifest = manifest or SweepManifest.find(self.store_dir)
        self.owner = owner or f"{os.uname().nodename}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.queue = WorkQueue(self.store_dir, self.manifest, expiry_seconds=expiry_seconds)
        self.poll_seconds = float(poll_seconds)
        self.throttle_seconds = float(throttle_seconds)
        strategy = strategy or self.manifest.strategy
        if strategy not in GRID_STRATEGIES:
            raise ServiceError(
                f"unknown grid strategy {strategy!r}; expected one of {GRID_STRATEGIES}"
            )
        self._simulator = BatchSimulator(
            enable_parameter_caching=self.manifest.enable_parameter_caching,
            strategy=strategy,
        )
        self._table_cache: tuple[int, LayerTable] | None = None
        self._started_at = time.time()

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #
    def run(self, max_pairs: int | None = None) -> WorkerResult:
        """Drain pairs until the sweep completes (or *max_pairs* were done).

        Every scan claims what it can; when nothing is claimable but pairs
        remain (all leased by live workers), the loop sleeps *poll_seconds*
        and rescans — a crashed peer's lease expires into a steal, a live
        peer's completion finishes the sweep.
        """
        result = WorkerResult(owner=self.owner)
        start = time.perf_counter()
        self._write_report(result)
        while True:
            remaining = 0
            claimed_any = False
            for pair in iter_pairs_rotated(self.manifest.pairs, self.owner):
                if self.queue.is_done(pair):
                    continue
                remaining += 1
                lease = self.queue.try_claim(pair, self.owner)
                if lease is None:
                    continue
                claimed_any = True
                self._complete_pair(pair, lease, result)
                if max_pairs is not None and result.pairs_simulated >= max_pairs:
                    result.elapsed_seconds = time.perf_counter() - start
                    self._write_report(result)
                    return result
            if remaining == 0:
                break
            if not claimed_any:
                # Every remaining pair is leased by someone else: wait for
                # their completions, or for an orphaned lease to expire.
                time.sleep(self.poll_seconds)
        result.elapsed_seconds = time.perf_counter() - start
        self._write_report(result)
        return result

    # ------------------------------------------------------------------ #
    # One pair
    # ------------------------------------------------------------------ #
    def _complete_pair(self, pair: SweepPair, lease, result: WorkerResult) -> None:
        """Simulate and persist one claimed pair, heartbeating throughout."""
        fingerprints = self.manifest.shard_fingerprints(pair.shard_index)
        config = self.manifest.config(pair.config_name)
        if lease.stolen:
            result.leases_stolen += 1
            obs.count("worker.leases_stolen")
        pair_start = time.perf_counter()
        with obs.span(
            "worker.pair",
            pair=pair.pair_id,
            shard=pair.shard_index,
            config=pair.config_name,
            models=len(fingerprints),
        ):
            interval = max(self.queue.expiry_seconds / 3.0, 0.05)
            with _Heartbeat(self.queue, lease, interval):
                if self.throttle_seconds:
                    time.sleep(self.throttle_seconds)
                table = self._shard_table(pair.shard_index)
                latency, energy = self._simulator.evaluate_table_grid(table, [config])
            write_npz(
                self.manifest.pair_path(self.store_dir, pair),
                {
                    "fingerprints": np.asarray(fingerprints),
                    "latency": np.asarray(latency[0], dtype=float),
                    "energy": np.asarray(energy[0], dtype=float),
                },
            )
        obs.observe("worker.pair_ms", (time.perf_counter() - pair_start) * 1e3)
        result.pairs_simulated += 1
        result.models_simulated += len(fingerprints)
        obs.count("worker.pairs_simulated")
        obs.count("worker.models_simulated", len(fingerprints))
        if lease.lost:
            # Someone stole the lease mid-simulation (e.g. a paused VM past
            # its expiry).  The write above is idempotent and correct, but the
            # thief will record this pair — don't double-count it, and leave
            # the lease file alone (it is the thief's now).
            result.leases_lost += 1
            obs.count("worker.leases_lost")
            obs.log(
                "worker.lease_lost",
                f"lease for {pair.pair_id} was stolen mid-simulation; "
                "the thief records this pair",
                level="warning",
                pair=pair.pair_id,
            )
            return
        result.pairs_completed.append(pair.pair_id)
        self._write_report(result)
        self.queue.release(lease)

    def _shard_table(self, shard_index: int) -> LayerTable:
        """LayerTable of one shard, cached so consecutive configurations of
        the same shard skip the network rebuild."""
        if self._table_cache is not None and self._table_cache[0] == shard_index:
            return self._table_cache[1]
        network_config = self.manifest.network_config()
        networks = [
            expand_architecture(arch, network_config)
            for arch in self.manifest.shard_archs(shard_index)
        ]
        table = LayerTable.from_networks(networks)
        self._table_cache = (shard_index, table)
        return table

    def _write_report(self, result: WorkerResult) -> None:
        report = {
            "kind": "worker-report",
            "owner": self.owner,
            "pid": os.getpid(),
            "started_at": self._started_at,
            "heartbeat": time.time(),
            "completed": list(result.pairs_completed),
            "pairs_simulated": result.pairs_simulated,
            "models_simulated": result.models_simulated,
            "leases_stolen": result.leases_stolen,
            "leases_lost": result.leases_lost,
        }
        tracer = obs.active_tracer()
        if tracer.enabled:
            # Fold the telemetry stream into the report so the coordinator
            # surfaces it, and snapshot the metrics alongside every report —
            # a SIGKILL then loses at most the pair in flight from both.
            report["trace"] = str(tracer.path)
            report["events"] = dict(tracer.event_counts)
        self.queue.write_worker_report(self.owner, report)
        if tracer.enabled:
            tracer.flush()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro.service.worker <store_dir> [options]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description=(
            "Drain one sweep manifest as a crash-tolerant worker; run N of "
            "these against one store directory to parallelize the sweep."
        )
    )
    parser.add_argument("store_dir", help="shared measurement store directory")
    parser.add_argument("--manifest", default=None, help="manifest digest (if several)")
    parser.add_argument("--owner", default=None, help="worker identity (default: host-pid-random)")
    parser.add_argument(
        "--expiry", type=float, default=DEFAULT_LEASE_EXPIRY,
        help="lease heartbeat expiry in seconds",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between scans while waiting on other workers' leases",
    )
    parser.add_argument(
        "--throttle", type=float, default=0.0,
        help="artificial per-pair delay in seconds (testing aid)",
    )
    parser.add_argument(
        "--max-pairs", type=int, default=None,
        help="exit after simulating this many pairs (default: run to completion)",
    )
    parser.add_argument(
        "--strategy", choices=GRID_STRATEGIES, default=None,
        help="grid kernel strategy (default: the manifest's)",
    )
    args = parser.parse_args(argv)
    manifest = SweepManifest.find(args.store_dir, digest=args.manifest)
    worker = SweepWorker(
        args.store_dir,
        manifest=manifest,
        owner=args.owner,
        expiry_seconds=args.expiry,
        poll_seconds=args.poll_interval,
        throttle_seconds=args.throttle,
        strategy=args.strategy,
    )
    result = worker.run(max_pairs=args.max_pairs)
    obs.log(
        "worker.done",
        f"[{result.owner}] simulated {result.pairs_simulated} pairs "
        f"({result.models_simulated} models) in {result.elapsed_seconds:.2f}s; "
        f"{len(result.pairs_completed)} recorded, {result.leases_lost} lost leases",
        echo=True,
        owner=result.owner,
        pairs_simulated=result.pairs_simulated,
        models_simulated=result.models_simulated,
        leases_lost=result.leases_lost,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
