"""Resumable sweep storage and serving.

The paper's headline sweep (~1.5M latency / ~900K energy simulations) is too
big to be all-or-nothing.  This subsystem persists sweeps as per-shard,
content-keyed npz files and serves queries from them:

* :class:`MeasurementStore` — append-only, fingerprint-verified shard store;
  :meth:`~MeasurementStore.extend` simulates only the missing (shard,
  configuration) pairs, so sweeps survive interruption and grow
  incrementally (see DESIGN.md §6);
* :class:`SweepService` — read-only query API (top-k, Pareto frontier,
  fingerprint lookups, learned-model predictions for unseen cells) that
  never invokes the simulator.
"""

from .query import SweepService
from .store import (
    DEFAULT_SHARD_SIZE,
    STORE_FORMAT_VERSION,
    MeasurementStore,
    StoreStats,
    read_npz,
    stable_digest,
    write_npz,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "MeasurementStore",
    "STORE_FORMAT_VERSION",
    "StoreStats",
    "SweepService",
    "read_npz",
    "stable_digest",
    "write_npz",
]
