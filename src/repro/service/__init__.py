"""Resumable sweep storage, distributed draining and serving.

The paper's headline sweep (~1.5M latency / ~900K energy simulations) is too
big to be all-or-nothing.  This subsystem persists sweeps as per-shard,
content-keyed npz files, lets independent workers drain them, and serves
queries from the result:

* :class:`MeasurementStore` — append-only, fingerprint-verified shard store;
  :meth:`~MeasurementStore.extend` simulates only the missing (shard,
  configuration) pairs, so sweeps survive interruption and grow
  incrementally; :meth:`~MeasurementStore.compact` merges a finished sweep
  into one memory-mapped consolidated file so warm loads are O(open), not
  O(files) (see DESIGN.md §6 and §10);
* :class:`SweepManifest` / :class:`SweepWorker` / :class:`SweepCoordinator`
  — a filesystem-backed lease queue over the (shard, configuration) pairs:
  N crash-tolerant worker processes or hosts sharing the store directory
  drain one sweep (``python -m repro.service.worker <store_dir>``), stolen
  leases recover ``kill -9``-ed workers, and the coordinator reports fleet
  progress (see DESIGN.md §10);
* :class:`SweepService` — read-only query API (top-k, Pareto frontier,
  fingerprint lookups, learned-model predictions for unseen cells) that
  never invokes the simulator.  Queries flow through the typed
  request/response surface of :mod:`repro.service.api`
  (:meth:`SweepService.query` dispatch + :class:`QueryResponse` envelope),
  which is also the wire format of :mod:`repro.server`.
"""

from .api import (
    QUERY_METRICS,
    SERVED_FROM,
    EnergyRequest,
    LatencyRequest,
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    TopKRequest,
    cache_key,
    canonical_request_key,
    request_from_dict,
    resolve_configs,
)
from .query import SweepService
from .store import (
    DEFAULT_SHARD_SIZE,
    STORE_FORMAT_VERSION,
    CompactionResult,
    MeasurementStore,
    StoreStats,
    read_npz,
    stable_digest,
    write_npz,
)


#: Lazily-imported queue/worker symbols: the modules stay unimported until
#: first use, so ``python -m repro.service.worker`` (and ``.queue``) execute
#: as ``__main__`` without runpy's "found in sys.modules" warning.
_LAZY = {
    "DEFAULT_LEASE_EXPIRY": "queue",
    "QUEUE_FORMAT_VERSION": "queue",
    "QueueProgress": "queue",
    "SweepCoordinator": "queue",
    "SweepManifest": "queue",
    "SweepPair": "queue",
    "WorkQueue": "queue",
    "WorkerStatus": "queue",
    "SweepWorker": "worker",
    "WorkerResult": "worker",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(f".{module_name}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CompactionResult",
    "DEFAULT_LEASE_EXPIRY",
    "DEFAULT_SHARD_SIZE",
    "EnergyRequest",
    "LatencyRequest",
    "MeasurementStore",
    "MetricRequest",
    "ParetoRequest",
    "PredictRequest",
    "QUERY_METRICS",
    "QUEUE_FORMAT_VERSION",
    "QueryRequest",
    "QueryResponse",
    "QueueProgress",
    "SERVED_FROM",
    "STORE_FORMAT_VERSION",
    "StoreStats",
    "SweepCoordinator",
    "SweepManifest",
    "SweepPair",
    "SweepService",
    "SweepWorker",
    "TopKRequest",
    "WorkQueue",
    "WorkerResult",
    "WorkerStatus",
    "cache_key",
    "canonical_request_key",
    "read_npz",
    "request_from_dict",
    "resolve_configs",
    "stable_digest",
    "write_npz",
]
