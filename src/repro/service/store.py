"""Resumable, sharded on-disk measurement store.

The paper's headline sweep is ~1.5M latency and ~900K energy simulations;
done monolithically it is all-or-nothing — one in-RAM
:class:`~repro.simulator.runner.MeasurementSet`, recomputed from scratch when
interrupted.  :class:`MeasurementStore` instead persists the sweep as
**per-(shard, configuration) npz files**, where a shard is a fixed-size
contiguous slice of the population:

* **content-keyed** — a shard file's name embeds a SHA-256 digest of the
  shard's cell fingerprints (plus the configuration name, the compiler's
  parameter-caching mode and a format version), and the fingerprints are
  stored inside the file and re-verified on load.  A stale or corrupt file
  degrades to a miss, never to silent mislabeling.
* **append-only** — the same shard content always maps to the same key, so
  files are only ever added (or atomically rewritten with identical bytes);
  :meth:`extend` after growing the population or the configuration grid
  simulates exactly the missing (shard, configuration) pairs.
* **resumable** — every completed pair is written before the next one is
  simulated, so a sweep interrupted after ``k`` of ``n`` shards resumes with
  exactly ``n - k`` shard simulations (:class:`StoreStats` reports the
  split).

:meth:`extend` is the single write path (the drjit-style "record once,
replay over shards" discipline): it loads what exists, simulates what does
not through a :class:`~repro.simulator.batch.BatchSimulator`, and returns
the assembled :class:`~repro.simulator.runner.MeasurementSet`.  :meth:`load`
is the read-only path used by :class:`~repro.service.query.SweepService` —
it never simulates and raises :class:`~repro.errors.ServiceError` when
shards are missing.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import uuid
import zipfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..arch.config import STUDIED_CONFIGS, AcceleratorConfig, get_config
from ..errors import ServiceError
from ..nasbench.dataset import NASBenchDataset
from ..nasbench.layer_table import LayerTable
from ..simulator.batch import BatchSimulator, simulate_shard
from ..simulator.runner import MeasurementSet

#: Bump to invalidate every stored shard when the on-disk format changes.
STORE_FORMAT_VERSION = 1

#: Default number of models per shard.  Small enough that an interrupted
#: sweep loses little work, large enough that the vectorized kernels stay
#: wide and the file count stays manageable.
DEFAULT_SHARD_SIZE = 128

#: Hex characters of the shard content digest kept in file names.
_DIGEST_CHARS = 16


def stable_digest(payload: object) -> str:
    """Short stable SHA-256 digest of a JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


# --------------------------------------------------------------------------- #
# Atomic npz I/O (shared by the store, the sweep service and the pipeline
# cache, which is a thin adapter over this module)
# --------------------------------------------------------------------------- #
def read_npz(path: Path) -> dict[str, np.ndarray] | None:
    """Load an npz artifact; a missing or corrupt file is ``None`` (a miss).

    Corruption can happen when concurrent runs share a store directory and a
    writer dies mid-``write_npz`` on a filesystem whose rename is not atomic
    (or truncates the file some other way); degrading to a miss re-computes
    the artifact instead of crashing or mislabeling.  The corrupt file is
    quarantined to ``<name>.corrupt`` so the miss is durable — the next
    writer re-simulates and publishes a fresh file instead of tripping over
    the same truncated bytes forever.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile):
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            path.replace(quarantine)
        except OSError:  # pragma: no cover - racing readers; either one wins
            pass
        obs.log(
            "store.quarantine",
            f"quarantined corrupt npz {path.name}; treating as a miss",
            level="warning",
            path=str(path),
        )
        obs.count("store.pairs_quarantined")
        return None


def write_npz(path: Path, payload: dict[str, np.ndarray]) -> Path:
    """Atomically persist *payload* as a compressed npz at *path*.

    Written via a unique temporary name plus ``replace()``, so concurrent
    writers race only on the atomic rename, never on the bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}.npz")
    try:
        np.savez_compressed(tmp, **payload)
        tmp.replace(path)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise ServiceError(f"failed to write artifact {path}: {exc}") from exc
    return path


@dataclass
class StoreStats:
    """What one store's lifetime of sweeps was served from.

    A *pair* is one (shard, configuration) combination — the store's unit of
    persistence and of incremental work.
    """

    pairs_loaded: int = 0
    pairs_simulated: int = 0
    models_loaded: int = 0
    models_simulated: int = 0
    #: Of the loaded pairs, how many were served from a compacted file's
    #: memory map rather than a loose per-pair npz (a subset of
    #: ``pairs_loaded``).
    pairs_compacted: int = 0

    @property
    def pairs(self) -> int:
        """Total (shard, configuration) pairs touched."""
        return self.pairs_loaded + self.pairs_simulated


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of one :meth:`MeasurementStore.compact` run."""

    data_path: Path
    index_path: Path
    pairs: int
    rows: int
    loose_removed: int


class MeasurementStore:
    """Sharded, fingerprint-verified npz store of sweep measurements.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first write).
    shard_size:
        Models per shard; shards are contiguous slices of the dataset.
    enable_parameter_caching:
        Compiler mode the stored measurements were produced with; part of
        every shard key, so the two modes can never be confused.
    prefix:
        File-name prefix of this store's shards (defaults to ``"shard"``).
        Lets several logical stores — e.g. one per experiment key — share a
        flat directory, which is how the pipeline cache embeds stores.
    simulator:
        The :class:`BatchSimulator` misses are simulated with (one is built
        on demand; its parameter-caching mode must match the store's).
    """

    def __init__(
        self,
        root: str | Path,
        shard_size: int = DEFAULT_SHARD_SIZE,
        enable_parameter_caching: bool = True,
        prefix: str = "shard",
        simulator: BatchSimulator | None = None,
    ):
        if shard_size < 1:
            raise ServiceError(f"shard_size must be positive, got {shard_size}")
        if simulator is not None and (
            simulator.enable_parameter_caching != enable_parameter_caching
        ):
            raise ServiceError(
                "simulator and store disagree on parameter caching; shard "
                "keys would not match the simulated results"
            )
        self.root = Path(root)
        self.shard_size = int(shard_size)
        self.enable_parameter_caching = bool(enable_parameter_caching)
        self.prefix = prefix
        self.stats = StoreStats()
        self._simulator = simulator or BatchSimulator(
            enable_parameter_caching=enable_parameter_caching
        )
        #: (config, key) → (data path, offset, length, fingerprints); ``None``
        #: until the first read scans the compacted indices.
        self._compact_entries: dict[tuple[str, str], tuple[Path, int, int, list[str]]] | None = None
        #: Memory-mapped compacted data arrays, one per data file.
        self._compact_data: dict[Path, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _tally(self, **deltas: int) -> None:
        """Increment :class:`StoreStats` fields and their mirror counters.

        The obs counters (``store.pairs_loaded`` etc.) are incremented at
        the same call site as the stats fields, so a merged fleet trace is
        guaranteed to agree with ``StoreStats`` exactly.
        """
        for name, delta in deltas.items():
            setattr(self.stats, name, getattr(self.stats, name) + delta)
            obs.count(f"store.{name}", delta)

    # ------------------------------------------------------------------ #
    # Shard layout and keying
    # ------------------------------------------------------------------ #
    def shard_ranges(self, num_models: int) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` model ranges, one per shard."""
        return [
            (start, min(start + self.shard_size, num_models))
            for start in range(0, num_models, self.shard_size)
        ]

    def shard_key(self, fingerprints: Sequence[str], config_name: str) -> str:
        """Content key of one (shard, configuration) pair.

        Keyed by the shard's cell fingerprints rather than its position, so
        appending models to the population leaves every full earlier shard's
        key — and file — intact.
        """
        return stable_digest(
            {
                "kind": "measurement-shard",
                "version": STORE_FORMAT_VERSION,
                "config": config_name,
                "parameter_caching": self.enable_parameter_caching,
                "fingerprints": list(fingerprints),
            }
        )

    def shard_path(self, config_name: str, key: str) -> Path:
        """File path of one (shard, configuration) pair."""
        return self.root / f"{self.prefix}-{config_name}-{key}.npz"

    def available_configs(self) -> list[str]:
        """Configuration names with at least one shard on disk.

        Counts both loose per-pair files and pairs merged into a compacted
        file (after compaction the loose files are gone).
        """
        if not self.root.is_dir():
            return []
        pattern = re.compile(re.escape(self.prefix) + r"-(.+)-[0-9a-f]{%d}\.npz$" % _DIGEST_CHARS)
        names = set()
        for path in self.root.iterdir():
            match = pattern.match(path.name)
            if match:
                names.add(match.group(1))
        names.update(config for config, _key in self._compaction_entries())
        return sorted(names)

    # ------------------------------------------------------------------ #
    # Sweeping (the single write path)
    # ------------------------------------------------------------------ #
    def extend(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig | str] | None = None,
        n_jobs: int = 1,
        progress_callback: Callable[[str, int, int], None] | None = None,
    ) -> MeasurementSet:
        """Bring the store up to date with *dataset* × *configs* and load it.

        Only the missing (shard, configuration) pairs are simulated; every
        completed pair is persisted before the next shard starts, so the
        sweep survives interruption and a re-run resumes with exactly the
        remaining shards.  With ``n_jobs > 1`` the missing shards are
        simulated by a process pool and saved as their futures resolve.

        *progress_callback* receives ``(config_name, done_models, total)``
        per completed shard (loaded or simulated), in monotonically
        increasing ``done_models`` order per configuration.  A raising
        callback cannot abort the sweep: its exceptions are caught, logged
        as obs error events, and the sweep continues.
        """
        progress_callback = obs.guarded_progress(progress_callback, origin="store.extend")
        config_list = self._config_objects(configs)
        total = len(dataset)
        latencies = {c.name: np.empty(total, dtype=float) for c in config_list}
        energies = {c.name: np.full(total, np.nan, dtype=float) for c in config_list}
        if total == 0:
            return MeasurementSet(dataset, latencies, energies)

        ranges = self.shard_ranges(total)
        prints = [
            [record.fingerprint for record in dataset.records[start:stop]]
            for start, stop in ranges
        ]
        with obs.span(
            "store.extend", configs=len(config_list), models=total, n_jobs=n_jobs
        ):
            if n_jobs > 1:
                self._extend_parallel(
                    dataset, config_list, ranges, prints, latencies, energies,
                    n_jobs, progress_callback,
                )
                return MeasurementSet(dataset, latencies, energies)

            done = {c.name: 0 for c in config_list}
            for (start, stop), shard_prints in zip(ranges, prints):
                missing: list[AcceleratorConfig] = []
                for config in config_list:
                    pair = self._load_pair(shard_prints, config.name)
                    if pair is None:
                        missing.append(config)
                        obs.count("store.pair_misses")
                    else:
                        latencies[config.name][start:stop] = pair[0]
                        energies[config.name][start:stop] = pair[1]
                        self._tally(pairs_loaded=1, models_loaded=stop - start)
                if missing:
                    # One LayerTable per shard, shared across its missing
                    # configs, and one config-axis vectorized pass over all
                    # of them.
                    with obs.span(
                        "store.simulate_shard", models=stop - start, configs=len(missing)
                    ):
                        networks = [
                            dataset[index].build_network(dataset.network_config)
                            for index in range(start, stop)
                        ]
                        table = LayerTable.from_networks(networks)
                        grid_latency, grid_energy = self._simulator.evaluate_table_grid(
                            table, missing
                        )
                    for index, config in enumerate(missing):
                        latency, energy = grid_latency[index], grid_energy[index]
                        self._save_pair(shard_prints, config.name, latency, energy)
                        latencies[config.name][start:stop] = latency
                        energies[config.name][start:stop] = energy
                        self._tally(pairs_simulated=1, models_simulated=stop - start)
                for config in config_list:
                    done[config.name] += stop - start
                    if progress_callback is not None:
                        progress_callback(config.name, done[config.name], total)
        return MeasurementSet(dataset, latencies, energies)

    def sweep(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig | str] | None = None,
        n_jobs: int = 1,
        progress_callback: Callable[[str, int, int], None] | None = None,
    ) -> MeasurementSet:
        """Run (or resume) the sweep of *dataset* × *configs*.

        Alias of :meth:`extend` — a cold sweep, a resumed sweep and an
        incremental extension are the same operation over the store.
        """
        return self.extend(
            dataset, configs=configs, n_jobs=n_jobs, progress_callback=progress_callback
        )

    def ingest(self, measurements: MeasurementSet) -> int:
        """Persist an in-memory measurement set shard-by-shard.

        Returns the number of (shard, configuration) pairs written.  Used by
        the pipeline cache adapter to keep its legacy ``save_measurements``
        entry point.
        """
        dataset = measurements.dataset
        ranges = self.shard_ranges(len(dataset))
        written = 0
        for start, stop in ranges:
            shard_prints = [record.fingerprint for record in dataset.records[start:stop]]
            for name in measurements.config_names:
                self._save_pair(
                    shard_prints,
                    name,
                    measurements.latencies(name)[start:stop],
                    measurements.energies(name)[start:stop],
                )
                written += 1
        return written

    # ------------------------------------------------------------------ #
    # Read-only access (the service path)
    # ------------------------------------------------------------------ #
    @obs.traced("store.load")
    def load(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig | str] | None = None,
    ) -> MeasurementSet:
        """Assemble the measurement set of *dataset* × *configs* from disk.

        Never simulates: raises :class:`ServiceError` naming the missing
        (shard, configuration) pairs when the store is not warm.
        """
        config_names = self._config_names(configs)
        total = len(dataset)
        latencies = {name: np.empty(total, dtype=float) for name in config_names}
        energies = {name: np.full(total, np.nan, dtype=float) for name in config_names}
        ranges = self.shard_ranges(total)
        missing: list[tuple[int, str]] = []
        for shard_index, (start, stop) in enumerate(ranges):
            shard_prints = [record.fingerprint for record in dataset.records[start:stop]]
            for name in config_names:
                pair = self._load_pair(shard_prints, name)
                if pair is None:
                    missing.append((shard_index, name))
                    continue
                latencies[name][start:stop] = pair[0]
                energies[name][start:stop] = pair[1]
                self._tally(pairs_loaded=1, models_loaded=stop - start)
        if missing:
            shown = ", ".join(f"(shard {i}, {name})" for i, name in missing[:5])
            raise ServiceError(
                f"measurement store at {self.root} is missing "
                f"{len(missing)} of {len(ranges) * len(config_names)} "
                f"(shard, configuration) pairs (e.g. {shown}); run "
                "MeasurementStore.extend() to simulate them"
            )
        return MeasurementSet(dataset, latencies, energies)

    def missing_pairs(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig | str] | None = None,
    ) -> list[tuple[int, str]]:
        """The ``(shard_index, config_name)`` pairs not yet on disk.

        A pure query — no stats are counted and nothing is simulated.
        """
        config_names = self._config_names(configs)
        missing = []
        for shard_index, (start, stop) in enumerate(self.shard_ranges(len(dataset))):
            shard_prints = [record.fingerprint for record in dataset.records[start:stop]]
            for name in config_names:
                if self._load_pair(shard_prints, name, count_stats=False) is None:
                    missing.append((shard_index, name))
        return missing

    # ------------------------------------------------------------------ #
    # Compaction (O(files) loose stores → O(open) memory-mapped loads)
    # ------------------------------------------------------------------ #
    @obs.traced("store.compact")
    def compact(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig | str] | None = None,
        remove_loose: bool = True,
    ) -> CompactionResult:
        """Merge a *finished* sweep into one memory-mapped consolidated file.

        A warm million-pair store costs O(files) opens (and npz inflations)
        before the first query; compaction rewrites it as a single
        uncompressed ``.npy`` data file — row 0 latency, row 1 energy, pairs
        concatenated column-wise — plus a JSON index header mapping
        ``(config name, shard key)`` to its column range and fingerprints.
        :meth:`load` then serves every pair as a slice of one ``mmap``.

        The sweep must be complete for the requested grid (compaction of a
        half-drained sweep would freeze the missing pairs out of the fast
        path); :meth:`extend` afterwards appends new pairs as loose files
        that the *next* compaction folds in.  Re-compacting reads through
        the existing compacted file, so it is cheap and idempotent.

        With *remove_loose* (the default) the merged per-pair files — and
        any superseded earlier compacted generation — are deleted once the
        new consolidated file is durably in place.
        """
        config_names = self._config_names(configs)
        ranges = self.shard_ranges(len(dataset))
        entries: list[dict] = []
        latency_parts: list[np.ndarray] = []
        energy_parts: list[np.ndarray] = []
        missing: list[tuple[int, str]] = []
        offset = 0
        for shard_index, (start, stop) in enumerate(ranges):
            prints = [record.fingerprint for record in dataset.records[start:stop]]
            for name in config_names:
                pair = self._load_pair(prints, name, count_stats=False)
                if pair is None:
                    missing.append((shard_index, name))
                    continue
                length = stop - start
                entries.append(
                    {
                        "config": name,
                        "key": self.shard_key(prints, name),
                        "offset": offset,
                        "length": length,
                        "fingerprints": prints,
                    }
                )
                latency_parts.append(pair[0])
                energy_parts.append(pair[1])
                offset += length
        if missing:
            shown = ", ".join(f"(shard {i}, {name})" for i, name in missing[:5])
            raise ServiceError(
                f"compaction requires a finished sweep; {len(missing)} of "
                f"{len(ranges) * len(config_names)} (shard, configuration) "
                f"pairs are missing (e.g. {shown}); run extend() first"
            )
        digest = stable_digest(
            {
                "kind": "compacted-store",
                "version": STORE_FORMAT_VERSION,
                "prefix": self.prefix,
                "parameter_caching": self.enable_parameter_caching,
                "pairs": [(entry["config"], entry["key"]) for entry in entries],
            }
        )
        data = np.vstack(
            [np.concatenate(latency_parts), np.concatenate(energy_parts)]
        ).astype(float)
        data_path = self.root / f"{self.prefix}-compact-{digest}.npy"
        index_path = self.root / f"{self.prefix}-compact-{digest}.json"
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = data_path.with_name(f".{data_path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        try:
            with open(tmp, "wb") as handle:
                np.save(handle, data)
            tmp.replace(data_path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise ServiceError(f"failed to write compacted data {data_path}: {exc}") from exc
        index_payload = {
            "kind": "compacted-index",
            "version": STORE_FORMAT_VERSION,
            "prefix": self.prefix,
            "parameter_caching": self.enable_parameter_caching,
            "data": data_path.name,
            "entries": entries,
        }
        tmp_index = index_path.with_name(
            f".{index_path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        tmp_index.write_text(json.dumps(index_payload, sort_keys=True))
        tmp_index.replace(index_path)

        loose_removed = 0
        if remove_loose:
            for entry in entries:
                loose = self.shard_path(entry["config"], entry["key"])
                try:
                    loose.unlink()
                    loose_removed += 1
                except OSError:
                    pass
            for stale in self.root.glob(f"{self.prefix}-compact-*"):
                if stale.name not in (data_path.name, index_path.name):
                    stale.unlink(missing_ok=True)
        self._compact_entries = None
        self._compact_data = {}
        obs.count("store.compactions")
        obs.log(
            "store.compacted",
            pairs=len(entries),
            rows=int(data.shape[1]),
            bytes=int(data_path.stat().st_size),
            loose_removed=loose_removed,
        )
        return CompactionResult(
            data_path=data_path,
            index_path=index_path,
            pairs=len(entries),
            rows=int(data.shape[1]),
            loose_removed=loose_removed,
        )

    def publish_manifest(self, dataset, configs=None, strategy: str = "fused"):
        """Persist a :class:`~repro.service.queue.SweepManifest` for this sweep.

        The manifest makes the store directory drainable by independent
        ``python -m repro.service.worker`` processes (or hosts); see
        :mod:`repro.service.queue`.  Returns the saved manifest.
        """
        from .queue import SweepManifest  # deferred: queue imports our helpers

        config_list = self._config_objects(configs)
        manifest = SweepManifest.build(
            dataset,
            config_list,
            shard_size=self.shard_size,
            enable_parameter_caching=self.enable_parameter_caching,
            prefix=self.prefix,
            strategy=strategy,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        manifest.save(self.root)
        return manifest

    def _compaction_entries(self) -> dict[tuple[str, str], tuple[Path, int, int, list[str]]]:
        """Lazy map of (config, key) → compacted location, from index files."""
        if self._compact_entries is None:
            entries: dict[tuple[str, str], tuple[Path, int, int, list[str]]] = {}
            if self.root.is_dir():
                for index_path in sorted(self.root.glob(f"{self.prefix}-compact-*.json")):
                    try:
                        payload = json.loads(index_path.read_text())
                    except (OSError, json.JSONDecodeError):
                        continue
                    if (
                        payload.get("kind") != "compacted-index"
                        or payload.get("version") != STORE_FORMAT_VERSION
                        or payload.get("parameter_caching") != self.enable_parameter_caching
                    ):
                        continue
                    data_path = self.root / payload.get("data", "")
                    if not data_path.exists():
                        continue
                    for entry in payload.get("entries", []):
                        entries[(entry["config"], entry["key"])] = (
                            data_path,
                            int(entry["offset"]),
                            int(entry["length"]),
                            list(entry["fingerprints"]),
                        )
            self._compact_entries = entries
        return self._compact_entries

    def _compacted_array(self, data_path: Path) -> np.ndarray | None:
        """The memory-mapped ``(2, rows)`` data array of one compacted file."""
        array = self._compact_data.get(data_path)
        if array is None:
            try:
                array = np.load(data_path, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError):
                return None
            if array.ndim != 2 or array.shape[0] != 2:
                return None
            self._compact_data[data_path] = array
        return array

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _extend_parallel(
        self,
        dataset: NASBenchDataset,
        config_list: Sequence[AcceleratorConfig],
        ranges: Sequence[tuple[int, int]],
        prints: Sequence[list[str]],
        latencies: dict[str, np.ndarray],
        energies: dict[str, np.ndarray],
        n_jobs: int,
        progress_callback: Callable[[str, int, int], None] | None,
    ) -> None:
        """Load hits, then simulate the missing shards on a process pool.

        Completed shards are persisted as their futures resolve, so an
        interrupted parallel sweep also resumes incrementally.
        """
        total = len(dataset)
        done = {c.name: 0 for c in config_list}
        missing_by_shard: dict[int, list[AcceleratorConfig]] = {}
        for shard_index, ((start, stop), shard_prints) in enumerate(zip(ranges, prints)):
            for config in config_list:
                pair = self._load_pair(shard_prints, config.name)
                if pair is None:
                    missing_by_shard.setdefault(shard_index, []).append(config)
                    obs.count("store.pair_misses")
                    continue
                latencies[config.name][start:stop] = pair[0]
                energies[config.name][start:stop] = pair[1]
                self._tally(pairs_loaded=1, models_loaded=stop - start)
                done[config.name] += stop - start
        if progress_callback is not None:
            # Report the warm coverage up front; simulated shards tick below.
            for config in config_list:
                if done[config.name]:
                    progress_callback(config.name, done[config.name], total)
        if not missing_by_shard:
            return
        archs = [record.architecture for record in dataset]
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(missing_by_shard))
        ) as pool:
            futures = {
                pool.submit(
                    simulate_shard,
                    archs[ranges[shard_index][0] : ranges[shard_index][1]],
                    dataset.network_config,
                    tuple(missing),
                    self.enable_parameter_caching,
                ): shard_index
                for shard_index, missing in missing_by_shard.items()
            }
            for future in as_completed(futures):
                shard_index = futures[future]
                start, stop = ranges[shard_index]
                for name, (latency, energy) in future.result().items():
                    self._save_pair(prints[shard_index], name, latency, energy)
                    latencies[name][start:stop] = latency
                    energies[name][start:stop] = energy
                    self._tally(pairs_simulated=1, models_simulated=stop - start)
                    done[name] += stop - start
                    if progress_callback is not None:
                        progress_callback(name, done[name], total)

    def _load_pair(
        self, fingerprints: Sequence[str], config_name: str, count_stats: bool = True
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Load one verified (shard, configuration) pair, or ``None``.

        Prefers the compacted consolidated file (one mmap slice, no file
        open) and falls back to the loose per-pair npz; *count_stats*
        suppresses the ``pairs_compacted`` bookkeeping for pure queries.
        """
        key = self.shard_key(fingerprints, config_name)
        compacted = self._compaction_entries().get((config_name, key))
        if compacted is not None:
            data_path, offset, length, stored_prints = compacted
            if length == len(fingerprints) and list(fingerprints) == stored_prints:
                array = self._compacted_array(data_path)
                if array is not None and offset + length <= array.shape[1]:
                    rows = array[:, offset : offset + length]
                    if count_stats:
                        self._tally(pairs_compacted=1)
                    return (
                        np.array(rows[0], dtype=float),
                        np.array(rows[1], dtype=float),
                    )
        stored = read_npz(self.shard_path(config_name, key))
        if stored is None:
            return None
        expected = np.asarray(fingerprints)
        if not np.array_equal(stored.get("fingerprints"), expected):
            return None
        latency = stored.get("latency")
        energy = stored.get("energy")
        if latency is None or energy is None:
            return None
        if len(latency) != len(expected) or len(energy) != len(expected):
            return None
        return np.asarray(latency, dtype=float), np.asarray(energy, dtype=float)

    def _save_pair(
        self,
        fingerprints: Sequence[str],
        config_name: str,
        latency: np.ndarray,
        energy: np.ndarray,
    ) -> Path:
        key = self.shard_key(fingerprints, config_name)
        with obs.span(
            "store.save_pair", config=config_name, models=len(fingerprints)
        ) as span:
            path = write_npz(
                self.shard_path(config_name, key),
                {
                    "fingerprints": np.asarray(fingerprints),
                    "latency": np.asarray(latency, dtype=float),
                    "energy": np.asarray(energy, dtype=float),
                },
            )
            if obs.enabled():
                span.set(bytes=path.stat().st_size)
        return path

    @staticmethod
    def _config_objects(
        configs: Iterable[AcceleratorConfig | str] | None,
    ) -> list[AcceleratorConfig]:
        """Resolve the configurations to simulate (names via ``get_config``)."""
        if configs is None:
            return list(STUDIED_CONFIGS.values())
        resolved = [
            config if isinstance(config, AcceleratorConfig) else get_config(str(config))
            for config in configs
        ]
        if not resolved:
            raise ServiceError("no accelerator configurations were provided")
        return resolved

    @staticmethod
    def _config_names(
        configs: Iterable[AcceleratorConfig | str] | None,
    ) -> list[str]:
        """Resolve configuration *names* (read paths never need the objects)."""
        if configs is None:
            return [config.name for config in STUDIED_CONFIGS.values()]
        names = [
            config.name if isinstance(config, AcceleratorConfig) else str(config)
            for config in configs
        ]
        if not names:
            raise ServiceError("no accelerator configurations were provided")
        return names
