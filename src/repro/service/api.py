"""Typed query API shared by the library, the server and the CLI.

The sweep service used to be queried through per-method signatures only
(``top_k(k)``, ``pareto_front(config, min_accuracy)``, ...).  That shape
cannot travel over a wire, cannot be cached by content, and forces every
front-end to duplicate argument handling.  This module is the redesigned
surface underneath:

* **Request variants** — one frozen dataclass per query kind
  (:class:`TopKRequest`, :class:`ParetoRequest`, :class:`MetricRequest` —
  the symmetric latency/energy lookup, with :func:`LatencyRequest` /
  :func:`EnergyRequest` constructors — and :class:`PredictRequest`), each
  eagerly validated and JSON round-trippable via ``to_dict`` /
  :func:`request_from_dict`.
* **Response envelope** — :class:`QueryResponse` wraps every answer with the
  serving store's content digest and a ``served_from`` provenance tag
  (``"cache"`` / ``"store"`` / ``"model"``), so a client can always tell
  what population answered and whether a model was in the loop.
* **Canonical keys** — :func:`canonical_request_key` digests the canonical
  JSON form of a request (dict-order invariant), and :func:`cache_key`
  scopes it by store digest; this is the LRU hot-cache key of
  :mod:`repro.server`.
* **Config normalization** — :func:`resolve_configs` is the one place
  configuration arguments (names or :class:`AcceleratorConfig` objects) are
  normalized, shared by :class:`~repro.service.query.SweepService` and the
  server's CLI/config parsing; unknown names fail eagerly, naming the
  offenders.

``SweepService.query(request)`` dispatches on these types and the legacy
methods are thin typed wrappers over the same kernels, so every front-end —
in-process calls, the asyncio server, benchmarks — answers queries through
identical code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Mapping, Sequence, Union

from ..arch.config import STUDIED_CONFIGS, AcceleratorConfig
from ..errors import ServiceError
from ..nasbench.cell import Cell
from .store import stable_digest

#: Metrics a point lookup / prediction can dispatch on.
QUERY_METRICS = ("latency", "energy")

#: Provenance values a :class:`QueryResponse` may carry.
SERVED_FROM = ("cache", "store", "model")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


# --------------------------------------------------------------------------- #
# Request variants
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopKRequest:
    """The *k* most accurate models with per-configuration latency."""

    kind: ClassVar[str] = "top_k"

    k: int = 5

    def __post_init__(self) -> None:
        _require(
            isinstance(self.k, int) and not isinstance(self.k, bool) and self.k >= 1,
            f"top_k requires a positive integer k, got {self.k!r}",
        )

    def to_dict(self) -> dict:
        return {"kind": self.kind, "k": self.k}


@dataclass(frozen=True)
class ParetoRequest:
    """The non-dominated accuracy/latency frontier of one configuration."""

    kind: ClassVar[str] = "pareto"

    config_name: str
    min_accuracy: float = 0.70

    def __post_init__(self) -> None:
        _require(
            isinstance(self.config_name, str) and bool(self.config_name),
            "pareto requires a non-empty config_name",
        )
        _require(
            isinstance(self.min_accuracy, (int, float))
            and not isinstance(self.min_accuracy, bool)
            and 0.0 <= float(self.min_accuracy) <= 1.0,
            f"min_accuracy must be in [0, 1], got {self.min_accuracy!r}",
        )
        object.__setattr__(self, "min_accuracy", float(self.min_accuracy))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "config_name": self.config_name,
            "min_accuracy": self.min_accuracy,
        }


@dataclass(frozen=True)
class MetricRequest:
    """One measured metric of one cell, looked up by isomorphism fingerprint.

    The ``metric`` field is what makes the latency and energy lookups one
    request shape instead of two near-duplicate methods; use
    :func:`LatencyRequest` / :func:`EnergyRequest` for the spelled-out
    constructors.
    """

    kind: ClassVar[str] = "metric"

    fingerprint: str
    config_name: str
    metric: str = "latency"

    def __post_init__(self) -> None:
        _require(
            isinstance(self.fingerprint, str) and bool(self.fingerprint),
            "metric lookup requires a non-empty fingerprint",
        )
        _require(
            isinstance(self.config_name, str) and bool(self.config_name),
            "metric lookup requires a non-empty config_name",
        )
        _require(
            self.metric in QUERY_METRICS,
            f"unknown metric {self.metric!r}; expected one of {QUERY_METRICS}",
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "config_name": self.config_name,
            "metric": self.metric,
        }


def LatencyRequest(fingerprint: str, config_name: str) -> MetricRequest:
    """Measured latency (ms) of one cell — a ``metric="latency"`` lookup."""
    return MetricRequest(fingerprint, config_name, metric="latency")


def EnergyRequest(fingerprint: str, config_name: str) -> MetricRequest:
    """Measured energy (mJ) of one cell — a ``metric="energy"`` lookup."""
    return MetricRequest(fingerprint, config_name, metric="energy")


@dataclass(frozen=True)
class PredictRequest:
    """Learned-model metric predictions for unseen cells (no simulation)."""

    kind: ClassVar[str] = "predict"

    cells: tuple[Cell, ...]
    config_name: str
    metric: str = "latency"

    def __post_init__(self) -> None:
        cells = tuple(self.cells)
        _require(len(cells) > 0, "predict requires at least one cell")
        _require(
            all(isinstance(cell, Cell) for cell in cells),
            "predict cells must be Cell instances",
        )
        object.__setattr__(self, "cells", cells)
        _require(
            isinstance(self.config_name, str) and bool(self.config_name),
            "predict requires a non-empty config_name",
        )
        _require(
            self.metric in QUERY_METRICS,
            f"unknown metric {self.metric!r}; expected one of {QUERY_METRICS}",
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cells": [cell.to_dict() for cell in self.cells],
            "config_name": self.config_name,
            "metric": self.metric,
        }

    @classmethod
    def _from_fields(cls, fields: dict) -> "PredictRequest":
        payloads = fields.pop("cells", None)
        _require(
            isinstance(payloads, list) and len(payloads) > 0,
            "predict requires a non-empty 'cells' list",
        )
        cells = tuple(Cell.from_dict(entry) for entry in payloads)
        return cls(cells=cells, **fields)


QueryRequest = Union[TopKRequest, ParetoRequest, MetricRequest, PredictRequest]

#: Wire ``kind`` tag → request class (the :func:`request_from_dict` registry).
REQUEST_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (TopKRequest, ParetoRequest, MetricRequest, PredictRequest)
}


def request_from_dict(payload: object) -> QueryRequest:
    """Decode one request variant from its ``to_dict`` wire form."""
    _require(isinstance(payload, Mapping), "query request payload must be a JSON object")
    assert isinstance(payload, Mapping)
    kind = payload.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise ServiceError(
            f"unknown query request kind {kind!r}; expected one of {sorted(REQUEST_KINDS)}"
        )
    fields = {key: value for key, value in payload.items() if key != "kind"}
    builder = getattr(cls, "_from_fields", None)
    try:
        if builder is not None:
            return builder(fields)
        return cls(**fields)
    except TypeError as exc:
        raise ServiceError(f"malformed {kind!r} request: {exc}") from exc


def canonical_request_key(request: QueryRequest) -> str:
    """Content digest of a request's canonical JSON form.

    Dict-order invariant by construction: the digest is taken over the
    recursively key-sorted JSON serialization, so two payloads that decode
    to the same request always share a key.
    """
    return stable_digest({"kind": "query-request", "request": request.to_dict()})


def cache_key(store_digest: str, request: QueryRequest) -> str:
    """LRU hot-cache key: the canonical request scoped by the store content.

    Two services over different populations (or a store that was extended in
    between) can never serve each other's cached answers.
    """
    return stable_digest(
        {"kind": "query-cache", "store": store_digest, "request": request.to_dict()}
    )


# --------------------------------------------------------------------------- #
# Response envelope
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryResponse:
    """Envelope of every query answer: payload + provenance.

    ``result`` is a JSON-serializable dict (the wire payload — servers
    encode it verbatim), ``store_digest`` names the measurement content the
    answer was derived from, and ``served_from`` records whether it came
    out of the hot cache, straight from the stored measurements, or through
    a learned model's forward pass.
    """

    kind: str
    result: dict
    store_digest: str
    served_from: str

    def __post_init__(self) -> None:
        _require(
            self.kind in REQUEST_KINDS,
            f"unknown response kind {self.kind!r}; expected one of {sorted(REQUEST_KINDS)}",
        )
        _require(
            self.served_from in SERVED_FROM,
            f"served_from must be one of {SERVED_FROM}, got {self.served_from!r}",
        )
        _require(isinstance(self.result, dict), "response result must be a dict payload")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "result": self.result,
            "store_digest": self.store_digest,
            "served_from": self.served_from,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "QueryResponse":
        _require(isinstance(payload, Mapping), "query response payload must be a JSON object")
        assert isinstance(payload, Mapping)
        try:
            return cls(
                kind=payload["kind"],
                result=payload["result"],
                store_digest=payload["store_digest"],
                served_from=payload["served_from"],
            )
        except KeyError as exc:
            raise ServiceError(f"query response payload is missing field {exc}") from exc


# --------------------------------------------------------------------------- #
# Configuration normalization (service constructor + server config parsing)
# --------------------------------------------------------------------------- #
def resolve_configs(
    configs: Iterable[AcceleratorConfig | str] | None,
    available: Sequence[str] | None = None,
) -> list[str]:
    """Normalize a configuration argument to a list of canonical names.

    ``None`` means the paper's studied configurations.  Strings naming a
    studied configuration are case-normalized (``"v1"`` → ``"V1"``);
    :class:`AcceleratorConfig` objects contribute their own name (they carry
    their definition, so they are always resolvable).  With *available*
    given — the names a store or measurement set can actually serve — any
    string that is neither a studied configuration nor available raises
    :class:`ServiceError` naming **all** offenders at once, instead of the
    late, less specific missing-shards failure a bad name used to produce.
    """
    if configs is None:
        names = [config.name for config in STUDIED_CONFIGS.values()]
        object_names: set[str] = set()
    else:
        names = []
        object_names = set()
        for entry in configs:
            if isinstance(entry, AcceleratorConfig):
                names.append(entry.name)
                object_names.add(entry.name)
            else:
                name = str(entry)
                names.append(name.upper() if name.upper() in STUDIED_CONFIGS else name)
        if not names:
            raise ServiceError("no accelerator configurations were provided")
    if available is not None:
        known = set(available) | set(STUDIED_CONFIGS) | object_names
        unknown = sorted({name for name in names if name not in known})
        if unknown:
            raise ServiceError(
                f"unknown accelerator configurations {unknown}; "
                f"available: {sorted(set(available))}"
            )
    return names
