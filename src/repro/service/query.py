"""Query service over a warm measurement store.

:class:`SweepService` answers the questions the analysis and exploration
workflows keep asking of a finished sweep — without re-simulating anything:
construction loads the population's measurements from a
:class:`~repro.service.store.MeasurementStore` (read-only; a cold store is a
:class:`~repro.errors.ServiceError`, never a silent re-sweep), and every
query is a lookup or an array kernel over the loaded
:class:`~repro.simulator.runner.MeasurementSet`:

* :meth:`top_k` — the most accurate models, annotated with per-configuration
  latency (paper Figure 9);
* :meth:`pareto_front` / :meth:`pareto_front_indices` — the non-dominated
  accuracy/latency frontier of one configuration (Figure 5);
* :meth:`latency_of` / :meth:`energy_of` — measurements of one cell by its
  isomorphism fingerprint;
* :meth:`predict` — estimated metrics for *unseen* cells via a
  :class:`~repro.core.predictor.LearnedPerformanceModel` trained on the
  stored measurements, with trained weights cached as npz next to the shards
  (keyed by population content digest × configuration × metric × training
  settings), so a model is fitted at most once per store.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Iterable, Sequence

import numpy as np

from ..analysis.pareto import (
    AccuracyLatencyPoint,
    TopModelEntry,
    latency_accuracy_frontier,
    pareto_front_indices,
    top_models_by_accuracy,
)
from ..core.graph_table import GraphTable
from ..core.predictor import (
    LearnedPerformanceModel,
    TrainingSettings,
    metric_targets,
    table_digest,
)
from ..errors import ModelError, ServiceError
from ..nasbench.cell import Cell
from ..nasbench.dataset import ModelRecord, NASBenchDataset
from ..simulator.runner import MeasurementSet
from .store import (
    STORE_FORMAT_VERSION,
    MeasurementStore,
    read_npz,
    stable_digest,
    write_npz,
)


class SweepService:
    """Disk-backed query API over one population's sweep measurements.

    Parameters
    ----------
    store:
        The warm :class:`MeasurementStore`; every requested (shard,
        configuration) pair must already be on disk.
    dataset:
        The population the store was swept over (fingerprint-verified
        against the shard files on load).
    configs:
        Configurations to serve (names or
        :class:`~repro.arch.config.AcceleratorConfig`; defaults to the
        paper's V1/V2/V3).
    settings:
        Training hyperparameters of the learned models backing
        :meth:`predict` (part of their weight-cache key).
    measurements:
        Optional already-loaded :class:`MeasurementSet` of *dataset* to serve
        from, skipping the disk load.  Used by callers that just swept the
        store and still hold the result (the search engine constructs one
        service per generation); the set must cover every requested
        configuration and belong to *dataset*.
    """

    def __init__(
        self,
        store: MeasurementStore,
        dataset: NASBenchDataset,
        configs: Iterable[object] | None = None,
        settings: TrainingSettings | None = None,
        measurements: MeasurementSet | None = None,
    ):
        self._store = store
        self._dataset = dataset
        if measurements is None:
            measurements = store.load(dataset, configs=configs)
        else:
            if measurements.dataset is not dataset:
                raise ServiceError(
                    "the preloaded measurement set belongs to a different "
                    "dataset than the one served"
                )
            missing = [
                name
                for name in MeasurementStore._config_names(configs)
                if name not in measurements.config_names
            ]
            if missing:
                raise ServiceError(f"the preloaded measurement set lacks configurations {missing}")
        self._measurements = measurements
        self._settings = settings or TrainingSettings()
        self._models: dict[tuple[str, str], LearnedPerformanceModel] = {}
        self._table: GraphTable | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> NASBenchDataset:
        """The served population."""
        return self._dataset

    @property
    def measurements(self) -> MeasurementSet:
        """The store-loaded measurement set every query is answered from."""
        return self._measurements

    @property
    def config_names(self) -> list[str]:
        """Configurations the service can answer queries for."""
        return self._measurements.config_names

    # ------------------------------------------------------------------ #
    # Ranking and frontier queries
    # ------------------------------------------------------------------ #
    def top_k(self, k: int = 5) -> list[TopModelEntry]:
        """The *k* most accurate models with their per-configuration latency."""
        return top_models_by_accuracy(self._measurements, k)

    def pareto_front(
        self, config_name: str, min_accuracy: float = 0.70
    ) -> list[AccuracyLatencyPoint]:
        """Non-dominated (latency ↓, accuracy ↑) points of one configuration."""
        self._require_config(config_name)
        return latency_accuracy_frontier(self._measurements, config_name, min_accuracy)

    def pareto_front_indices(
        self, config_name: str, min_accuracy: float = 0.70
    ) -> np.ndarray:
        """Dataset indices of the frontier models, ascending latency."""
        self._require_config(config_name)
        return pareto_front_indices(self._measurements, config_name, min_accuracy)

    # ------------------------------------------------------------------ #
    # Point lookups by fingerprint
    # ------------------------------------------------------------------ #
    def record_of(self, fingerprint: str) -> ModelRecord:
        """The dataset record with the given isomorphism fingerprint."""
        return self._dataset.find(fingerprint)

    def latency_of(self, fingerprint: str, config_name: str) -> float:
        """Measured latency (ms) of one cell on one configuration."""
        self._require_config(config_name)
        return self._measurements.latency_of(self.record_of(fingerprint), config_name)

    def energy_of(self, fingerprint: str, config_name: str) -> float | None:
        """Measured energy (mJ) of one cell (``None`` without an energy model)."""
        self._require_config(config_name)
        return self._measurements.energy_of(self.record_of(fingerprint), config_name)

    # ------------------------------------------------------------------ #
    # Predictions for unseen cells
    # ------------------------------------------------------------------ #
    def predict(
        self, cells: Sequence[Cell], config_name: str, metric: str = "latency"
    ) -> np.ndarray:
        """Predicted metric values (raw units) of *cells* — no simulation.

        The backing learned model is trained once per (configuration,
        metric) on the stored measurements and its weights are cached on
        disk; subsequent services over the same store restore instead of
        refitting.
        """
        self._require_config(config_name)
        return self._model_for(config_name, metric).predict_cells(list(cells))

    def predict_cell(
        self, cell: Cell, config_name: str, metric: str = "latency"
    ) -> float:
        """Predicted metric value of a single unseen cell."""
        return float(self.predict([cell], config_name, metric)[0])

    def model_state_path(self, config_name: str, metric: str = "latency"):
        """Path of the cached trained-model state backing :meth:`predict`.

        Weights live in a ``models/`` subdirectory so they can never be
        mistaken for shard files by the store's directory scan
        (:meth:`MeasurementStore.available_configs`).
        """
        key = stable_digest(
            {
                "kind": "service-model",
                "version": STORE_FORMAT_VERSION,
                "population": table_digest(self._packed_table()),
                "config": config_name,
                "metric": metric,
                "settings": asdict(self._settings),
            }
        )
        return self._store.root / "models" / f"{self._store.prefix}-{key}.npz"

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _packed_table(self) -> GraphTable:
        if self._table is None:
            self._table = GraphTable.from_cells([record.cell for record in self._dataset])
        return self._table

    def _model_for(self, config_name: str, metric: str) -> LearnedPerformanceModel:
        cached = self._models.get((config_name, metric))
        if cached is not None:
            return cached
        targets = metric_targets(self._measurements, config_name, metric)
        table = self._packed_table()
        path = self.model_state_path(config_name, metric)
        model = LearnedPerformanceModel(config_name, self._settings)
        state = read_npz(path)
        if state is not None:
            try:
                model.restore_state(table, state)
            except ModelError:
                # Stale or foreign artifact under a colliding name: refit.
                state = None
                model = LearnedPerformanceModel(config_name, self._settings)
        if state is None:
            model.fit_table(table, targets)
            write_npz(path, model.export_state())
        self._models[(config_name, metric)] = model
        return model

    def _require_config(self, config_name: str) -> None:
        if config_name not in self._measurements.config_names:
            raise ServiceError(
                f"configuration {config_name!r} is not served by this sweep "
                f"service (available: {self._measurements.config_names})"
            )
