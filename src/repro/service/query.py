"""Query service over a warm measurement store.

:class:`SweepService` answers the questions the analysis and exploration
workflows keep asking of a finished sweep — without re-simulating anything:
construction loads the population's measurements from a
:class:`~repro.service.store.MeasurementStore` (read-only; a cold store is a
:class:`~repro.errors.ServiceError`, never a silent re-sweep), and every
query is a lookup or an array kernel over the loaded
:class:`~repro.simulator.runner.MeasurementSet`.

The service exposes **one typed entry point**, :meth:`query`, dispatching on
the request variants of :mod:`repro.service.api` (:class:`TopKRequest`,
:class:`ParetoRequest`, :class:`MetricRequest`, :class:`PredictRequest`)
and returning a :class:`~repro.service.api.QueryResponse` envelope whose
``result`` payload is JSON-serializable — the exact bytes
:mod:`repro.server` puts on the wire.  The named methods remain as thin
typed wrappers over the same kernels:

* :meth:`top_k` — the most accurate models, annotated with per-configuration
  latency (paper Figure 9);
* :meth:`pareto_front` / :meth:`pareto_front_indices` — the non-dominated
  accuracy/latency frontier of one configuration (Figure 5);
* :meth:`metric_of` (with :meth:`latency_of` / :meth:`energy_of` sugar) —
  measurements of one cell by its isomorphism fingerprint;
* :meth:`predict` — estimated metrics for *unseen* cells via a
  :class:`~repro.core.predictor.LearnedPerformanceModel` trained on the
  stored measurements, with trained weights cached as npz next to the shards
  (keyed by population content digest × configuration × metric × training
  settings), so a model is fitted at most once per store.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import asdict
from typing import Iterable, Sequence

import numpy as np

from ..analysis.pareto import (
    AccuracyLatencyPoint,
    TopModelEntry,
    latency_accuracy_frontier,
    pareto_front_indices,
    top_models_by_accuracy,
)
from ..core.graph_table import GraphTable
from ..core.predictor import (
    LearnedPerformanceModel,
    TrainingSettings,
    metric_targets,
    table_digest,
)
from ..errors import ModelError, ServiceError
from ..nasbench.cell import Cell
from ..nasbench.dataset import ModelRecord, NASBenchDataset
from ..simulator.runner import MeasurementSet
from .api import (
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    TopKRequest,
    resolve_configs,
)
from .store import (
    STORE_FORMAT_VERSION,
    MeasurementStore,
    read_npz,
    stable_digest,
    write_npz,
)


def _same_population(left: NASBenchDataset, right: NASBenchDataset) -> bool:
    """Whether two datasets describe the same swept population.

    Identity is content, not object: equal record fingerprints in the same
    order and the same network configuration.  A worker-rebuilt dataset of
    the same population (e.g. reconstructed from a sweep manifest) is the
    same population.
    """
    if left is right:
        return True
    if len(left) != len(right) or left.network_config != right.network_config:
        return False
    return all(
        a.fingerprint == b.fingerprint for a, b in zip(left.records, right.records)
    )


class SweepService:
    """Disk-backed query API over one population's sweep measurements.

    Parameters
    ----------
    store:
        The warm :class:`MeasurementStore`; every requested (shard,
        configuration) pair must already be on disk.
    dataset:
        The population the store was swept over (fingerprint-verified
        against the shard files on load).
    configs:
        Keyword-only: configurations to serve (names or
        :class:`~repro.arch.config.AcceleratorConfig`; defaults to the
        paper's V1/V2/V3).  Normalized through
        :func:`~repro.service.api.resolve_configs` — unknown names raise
        :class:`ServiceError` naming the offenders before any disk load is
        attempted.  Passing configs positionally is deprecated.
    settings:
        Training hyperparameters of the learned models backing
        :meth:`predict` (part of their weight-cache key).
    measurements:
        Optional already-loaded :class:`MeasurementSet` to serve from,
        skipping the disk load.  Used by callers that just swept the store
        and still hold the result (the search engine constructs one service
        per generation); the set must cover every requested configuration
        and belong to the same population as *dataset* (fingerprint-equal
        datasets are accepted — object identity is not required).
    """

    def __init__(
        self,
        store: MeasurementStore,
        dataset: NASBenchDataset,
        *deprecated_configs: Iterable[object],
        configs: Iterable[object] | None = None,
        settings: TrainingSettings | None = None,
        measurements: MeasurementSet | None = None,
    ):
        if deprecated_configs:
            if len(deprecated_configs) > 1 or configs is not None:
                raise TypeError(
                    "SweepService takes at most one configs argument "
                    "(pass it as configs=...)"
                )
            warnings.warn(
                "passing configs positionally to SweepService is deprecated; "
                "use the configs= keyword",
                DeprecationWarning,
                stacklevel=2,
            )
            configs = deprecated_configs[0]
        self._store = store
        self._dataset = dataset
        if measurements is None:
            names = resolve_configs(configs, available=store.available_configs())
            measurements = store.load(dataset, configs=names)
        else:
            if not _same_population(measurements.dataset, dataset):
                raise ServiceError(
                    "the preloaded measurement set belongs to a different "
                    "dataset than the one served"
                )
            missing = [
                name
                for name in resolve_configs(configs)
                if name not in measurements.config_names
            ]
            if missing:
                raise ServiceError(f"the preloaded measurement set lacks configurations {missing}")
        self._measurements = measurements
        self._settings = settings or TrainingSettings()
        self._models: dict[tuple[str, str], LearnedPerformanceModel] = {}
        self._table: GraphTable | None = None
        self._store_digest: str | None = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> NASBenchDataset:
        """The served population."""
        return self._dataset

    @property
    def measurements(self) -> MeasurementSet:
        """The store-loaded measurement set every query is answered from."""
        return self._measurements

    @property
    def config_names(self) -> list[str]:
        """Configurations the service can answer queries for."""
        return self._measurements.config_names

    @property
    def store_digest(self) -> str:
        """Content digest of the served measurements.

        Covers the population fingerprints and every served configuration's
        latency/energy arrays, so two services answer queries identically
        iff their digests match.  This is the provenance field of every
        :class:`QueryResponse` and the store half of the server's cache key.
        """
        if self._store_digest is None:
            digest = hashlib.sha256()
            for record in self._dataset.records:
                digest.update(record.fingerprint.encode())
            for name in self._measurements.config_names:
                digest.update(name.encode())
                digest.update(
                    np.ascontiguousarray(self._measurements.latencies(name)).tobytes()
                )
                digest.update(
                    np.ascontiguousarray(self._measurements.energies(name)).tobytes()
                )
            self._store_digest = digest.hexdigest()[:16]
        return self._store_digest

    # ------------------------------------------------------------------ #
    # The unified typed entry point
    # ------------------------------------------------------------------ #
    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed request; the single dispatch every front-end uses.

        The ``result`` payload is JSON-serializable and numerically
        identical to the corresponding named-method answer (the named
        methods and this dispatch share the same kernels).
        """
        if isinstance(request, TopKRequest):
            result = {"entries": [self._encode_top_entry(e) for e in self.top_k(request.k)]}
            served_from = "store"
        elif isinstance(request, ParetoRequest):
            points = self.pareto_front(request.config_name, request.min_accuracy)
            result = {"points": [self._encode_pareto_point(p) for p in points]}
            served_from = "store"
        elif isinstance(request, MetricRequest):
            value = self.metric_of(request.fingerprint, request.config_name, request.metric)
            result = {"value": None if value is None else float(value)}
            served_from = "store"
        elif isinstance(request, PredictRequest):
            values = self.predict(list(request.cells), request.config_name, request.metric)
            result = {"values": [float(value) for value in values]}
            served_from = "model"
        else:
            raise ServiceError(
                f"unsupported query request type {type(request).__name__!r}"
            )
        return QueryResponse(
            kind=request.kind,
            result=result,
            store_digest=self.store_digest,
            served_from=served_from,
        )

    def _encode_top_entry(self, entry: TopModelEntry) -> dict:
        return {
            "rank": int(entry.rank),
            "fingerprint": entry.record.fingerprint,
            "accuracy": float(entry.accuracy),
            "latency_ms": {
                name: float(value) for name, value in sorted(entry.latency_ms.items())
            },
            "fastest_config": entry.fastest_config,
            "speedup_over_best_model": {
                name: float(value)
                for name, value in sorted(entry.speedup_over_best_model.items())
            },
        }

    def _encode_pareto_point(self, point: AccuracyLatencyPoint) -> dict:
        return {
            "latency_ms": float(point.latency_ms),
            "accuracy": float(point.accuracy),
            "model_index": int(point.model_index),
            "fingerprint": self._dataset[point.model_index].fingerprint,
        }

    # ------------------------------------------------------------------ #
    # Ranking and frontier queries
    # ------------------------------------------------------------------ #
    def top_k(self, k: int = 5) -> list[TopModelEntry]:
        """The *k* most accurate models with their per-configuration latency."""
        return top_models_by_accuracy(self._measurements, k)

    def pareto_front(
        self, config_name: str, min_accuracy: float = 0.70
    ) -> list[AccuracyLatencyPoint]:
        """Non-dominated (latency ↓, accuracy ↑) points of one configuration."""
        self._require_config(config_name)
        return latency_accuracy_frontier(self._measurements, config_name, min_accuracy)

    def pareto_front_indices(
        self, config_name: str, min_accuracy: float = 0.70
    ) -> np.ndarray:
        """Dataset indices of the frontier models, ascending latency."""
        self._require_config(config_name)
        return pareto_front_indices(self._measurements, config_name, min_accuracy)

    # ------------------------------------------------------------------ #
    # Point lookups by fingerprint
    # ------------------------------------------------------------------ #
    def record_of(self, fingerprint: str) -> ModelRecord:
        """The dataset record with the given isomorphism fingerprint."""
        return self._dataset.find(fingerprint)

    def metric_of(self, fingerprint: str, config_name: str, metric: str) -> float | None:
        """One measured metric of one cell — the symmetric lookup core.

        ``metric`` selects latency (ms) or energy (mJ; ``None`` when the
        configuration has no energy model).  :meth:`latency_of` and
        :meth:`energy_of` are spelled-out wrappers over this method, and the
        request layer dispatches :class:`MetricRequest` straight into it.
        """
        self._require_config(config_name)
        record = self.record_of(fingerprint)
        if metric == "latency":
            return self._measurements.latency_of(record, config_name)
        if metric == "energy":
            return self._measurements.energy_of(record, config_name)
        raise ServiceError(
            f"unknown metric {metric!r}; expected one of ('latency', 'energy')"
        )

    def latency_of(self, fingerprint: str, config_name: str) -> float:
        """Measured latency (ms) of one cell on one configuration."""
        value = self.metric_of(fingerprint, config_name, "latency")
        assert value is not None  # latency arrays never carry NaN
        return value

    def energy_of(self, fingerprint: str, config_name: str) -> float | None:
        """Measured energy (mJ) of one cell (``None`` without an energy model)."""
        return self.metric_of(fingerprint, config_name, "energy")

    # ------------------------------------------------------------------ #
    # Predictions for unseen cells
    # ------------------------------------------------------------------ #
    def predict(
        self, cells: Sequence[Cell], config_name: str, metric: str = "latency"
    ) -> np.ndarray:
        """Predicted metric values (raw units) of *cells* — no simulation.

        The backing learned model is trained once per (configuration,
        metric) on the stored measurements and its weights are cached on
        disk; subsequent services over the same store restore instead of
        refitting.
        """
        self._require_config(config_name)
        return self._model_for(config_name, metric).predict_cells(list(cells))

    def predict_cell(
        self, cell: Cell, config_name: str, metric: str = "latency"
    ) -> float:
        """Predicted metric value of a single unseen cell."""
        return float(self.predict([cell], config_name, metric)[0])

    def model_state_path(self, config_name: str, metric: str = "latency"):
        """Path of the cached trained-model state backing :meth:`predict`.

        Weights live in a ``models/`` subdirectory so they can never be
        mistaken for shard files by the store's directory scan
        (:meth:`MeasurementStore.available_configs`).
        """
        key = stable_digest(
            {
                "kind": "service-model",
                "version": STORE_FORMAT_VERSION,
                "population": table_digest(self._packed_table()),
                "config": config_name,
                "metric": metric,
                "settings": asdict(self._settings),
            }
        )
        return self._store.root / "models" / f"{self._store.prefix}-{key}.npz"

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _packed_table(self) -> GraphTable:
        if self._table is None:
            self._table = GraphTable.from_cells([record.cell for record in self._dataset])
        return self._table

    def _model_for(self, config_name: str, metric: str) -> LearnedPerformanceModel:
        cached = self._models.get((config_name, metric))
        if cached is not None:
            return cached
        targets = metric_targets(self._measurements, config_name, metric)
        table = self._packed_table()
        path = self.model_state_path(config_name, metric)
        model = LearnedPerformanceModel(config_name, self._settings)
        state = read_npz(path)
        if state is not None:
            try:
                model.restore_state(table, state)
            except ModelError:
                # Stale or foreign artifact under a colliding name: refit.
                state = None
                model = LearnedPerformanceModel(config_name, self._settings)
        if state is None:
            model.fit_table(table, targets)
            write_npz(path, model.export_state())
        self._models[(config_name, metric)] = model
        return model

    def _require_config(self, config_name: str) -> None:
        if config_name not in self._measurements.config_names:
            raise ServiceError(
                f"configuration {config_name!r} is not served by this sweep "
                f"service (available: {self._measurements.config_names})"
            )
