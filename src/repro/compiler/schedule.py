"""Compiled-model representation: per-layer mappings plus the cache plan."""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import AcceleratorConfig
from ..nasbench.network import LayerSpec, NetworkSpec
from .param_cache import CachePlan
from .tiling import LayerMapping


@dataclass(frozen=True)
class CompiledLayer:
    """One operation of the compiled model with its mapping and weight residency."""

    spec: LayerSpec
    mapping: LayerMapping
    cached_weight_bytes: int
    streamed_weight_bytes: int

    @property
    def name(self) -> str:
        """Name of the underlying layer."""
        return self.spec.name


@dataclass(frozen=True)
class CompiledModel:
    """Ahead-of-time compilation result of one network for one configuration."""

    config: AcceleratorConfig
    network: NetworkSpec
    layers: tuple[CompiledLayer, ...]
    cache_plan: CachePlan

    @property
    def total_compute_cycles(self) -> int:
        """Sum of per-layer datapath cycles (no memory stalls or overheads)."""
        return sum(layer.mapping.compute_cycles for layer in self.layers)

    @property
    def total_streamed_weight_bytes(self) -> int:
        """Weight bytes fetched from DRAM per steady-state inference."""
        return self.cache_plan.streamed_bytes

    @property
    def total_weight_bytes(self) -> int:
        """Total weight footprint of the model in bytes."""
        return self.cache_plan.total_weight_bytes

    @property
    def average_utilization(self) -> float:
        """MAC-work-weighted average datapath utilization."""
        total_macs = sum(layer.spec.macs for layer in self.layers)
        if total_macs == 0:
            return 0.0
        issued = sum(
            layer.mapping.compute_cycles * self.config.macs_per_cycle
            for layer in self.layers
            if layer.spec.macs > 0
        )
        return total_macs / issued if issued else 0.0
