"""Compiled-model representations: per-layer mappings plus the cache plan.

Two isomorphic forms exist: :class:`CompiledModel` holds scalar per-layer
objects for one network (detailed inspection, layer breakdowns), while
:class:`CompiledTable` holds the structure-of-arrays result of compiling a
whole :class:`~repro.nasbench.layer_table.LayerTable` — one or many models —
in a single vectorized pass (population sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.config_table import ConfigTable
from ..nasbench.layer_table import LayerTable
from ..nasbench.network import LayerSpec, NetworkSpec
from .param_cache import CachePlan, CacheTable
from .tiling import LayerMapping, MappingTable


@dataclass(frozen=True)
class CompiledLayer:
    """One operation of the compiled model with its mapping and weight residency."""

    spec: LayerSpec
    mapping: LayerMapping
    cached_weight_bytes: int
    streamed_weight_bytes: int

    @property
    def name(self) -> str:
        """Name of the underlying layer."""
        return self.spec.name


@dataclass(frozen=True)
class CompiledModel:
    """Ahead-of-time compilation result of one network for one configuration."""

    config: AcceleratorConfig
    network: NetworkSpec
    layers: tuple[CompiledLayer, ...]
    cache_plan: CachePlan

    @property
    def total_compute_cycles(self) -> int:
        """Sum of per-layer datapath cycles (no memory stalls or overheads)."""
        return sum(layer.mapping.compute_cycles for layer in self.layers)

    @property
    def total_streamed_weight_bytes(self) -> int:
        """Weight bytes fetched from DRAM per steady-state inference."""
        return self.cache_plan.streamed_bytes

    @property
    def total_weight_bytes(self) -> int:
        """Total weight footprint of the model in bytes."""
        return self.cache_plan.total_weight_bytes

    @property
    def average_utilization(self) -> float:
        """MAC-work-weighted average datapath utilization."""
        total_macs = sum(layer.spec.macs for layer in self.layers)
        if total_macs == 0:
            return 0.0
        issued = sum(
            layer.mapping.compute_cycles * self.config.macs_per_cycle
            for layer in self.layers
            if layer.spec.macs > 0
        )
        return total_macs / issued if issued else 0.0


@dataclass(frozen=True)
class CompiledTable:
    """Vectorized compilation result for every model of a layer table.

    The per-layer arrays of ``mapping`` and ``cache`` are aligned with the
    rows of ``table``; per-model quantities use the table's segment offsets.
    When compiled against a :class:`~repro.arch.config_table.ConfigTable`,
    every array additionally carries a leading configuration axis
    (``(num_configs, num_layers)`` / ``(num_configs, num_models)``).
    """

    config: AcceleratorConfig | ConfigTable
    table: LayerTable
    mapping: MappingTable
    cache: CacheTable

    @property
    def num_models(self) -> int:
        """Number of compiled model segments."""
        return self.table.num_models

    @property
    def streamed_weight_bytes(self) -> np.ndarray:
        """Per-layer weight bytes fetched from DRAM each steady-state inference."""
        return self.cache.streamed_bytes

    @property
    def cached_weight_bytes(self) -> np.ndarray:
        """Per-layer stored weight bytes resident on-chip across inferences."""
        return scaled_bytes(self.table.weight_bytes, self.config.weight_bits) - (
            self.cache.streamed_bytes
        )

    @property
    def total_compute_cycles(self) -> np.ndarray:
        """Per-model sum of datapath cycles (no memory stalls or overheads)."""
        return np.add.reduceat(self.mapping.compute_cycles, self.table.segment_starts, axis=-1)
