"""Edge TPU compiler substrate: lowering, tiling/mapping and parameter caching."""

from __future__ import annotations

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.config_table import ConfigTable
from ..nasbench.layer_table import LayerTable
from ..nasbench.network import NetworkSpec
from .lowering import SUPPORTED_KINDS, lower_network, max_activation_bytes
from .param_cache import (
    CACHE_CONFIG_FIELDS,
    CachePlan,
    CacheTable,
    effective_cache_capacity,
    greedy_cache_assign,
    plan_cache_table,
    plan_parameter_cache,
)
from .schedule import CompiledLayer, CompiledModel, CompiledTable
from .tiling import (
    MAPPING_CONFIG_FIELDS,
    LayerMapping,
    MappingTable,
    map_layer,
    map_layer_table,
)


def _grid_mapping(table: LayerTable, configs: ConfigTable) -> MappingTable:
    """Map the grid, factorized over the distinct mapping sub-configurations.

    The mapping kernel is the integer-division-heavy hot spot of a grid
    sweep, and whole grid axes (clock, I/O bandwidth, PE/cache memory sizes)
    do not enter it: the kernel runs once per distinct
    :data:`MAPPING_CONFIG_FIELDS` row and the results gather back to the
    full configuration axis — bit-identical, since equal inputs give equal
    rows.
    """
    unique, inverse = configs.factor(MAPPING_CONFIG_FIELDS)
    mapping = map_layer_table(table, unique)
    if unique is configs:
        return mapping
    return MappingTable(
        spatial_tiles=mapping.spatial_tiles[inverse],
        channel_tiles=mapping.channel_tiles[inverse],
        reduction_steps=mapping.reduction_steps[inverse],
        compute_cycles=mapping.compute_cycles[inverse],
        utilization=mapping.utilization[inverse],
        weight_passes=mapping.weight_passes[inverse],
    )


def _grid_cache(
    table: LayerTable, configs: ConfigTable, enable_caching: bool
) -> CacheTable:
    """Plan the grid's parameter caches, factorized like :func:`_grid_mapping`.

    Only the capacity and bit-width formulas read the configuration
    (:data:`CACHE_CONFIG_FIELDS`), so a lane or clock axis re-plans nothing.
    """
    unique, inverse = configs.factor(CACHE_CONFIG_FIELDS)
    cache = plan_cache_table(table, unique, enable_caching=enable_caching)
    if unique is configs:
        return cache
    return CacheTable(
        capacity_bytes=cache.capacity_bytes[inverse],
        effective_capacity_bytes=cache.effective_capacity_bytes[inverse],
        total_weight_bytes=cache.total_weight_bytes[inverse],
        cached_bytes=cache.cached_bytes[inverse],
        cached_mask=cache.cached_mask[inverse],
        streamed_bytes=cache.streamed_bytes[inverse],
    )


def compile_layer_table(
    table: LayerTable,
    config: AcceleratorConfig | ConfigTable,
    enable_parameter_caching: bool = True,
) -> CompiledTable:
    """Compile every model of *table* for *config* in one vectorized pass.

    This is the batch analogue of :func:`compile_model`: the tiling/mapping
    kernel and the parameter-cache planner run once over the whole
    structure-of-arrays table (the table itself is built once per dataset and
    shared across configurations — compile-once, simulate wide).  Passing a
    :class:`~repro.arch.config_table.ConfigTable` compiles every model for
    every configuration in the same pass: the config scalars become
    broadcastable ``(num_configs, 1)`` columns and all result arrays carry a
    leading configuration axis; the mapping and cache kernels additionally
    run factorized over the distinct sub-configurations they actually read
    (:func:`_grid_mapping` / :func:`_grid_cache`).
    """
    if isinstance(config, ConfigTable):
        mapping = _grid_mapping(table, config)
        cache = _grid_cache(table, config, enable_parameter_caching)
    else:
        mapping = map_layer_table(table, config)
        cache = plan_cache_table(table, config, enable_caching=enable_parameter_caching)
    return CompiledTable(config=config, table=table, mapping=mapping, cache=cache)


def compile_model(
    network: NetworkSpec,
    config: AcceleratorConfig,
    enable_parameter_caching: bool = True,
) -> CompiledModel:
    """Compile *network* for *config*.

    The compilation pipeline mirrors the ahead-of-time Edge TPU compiler:
    the network is lowered to the accelerator's operation stream, every
    operation is mapped onto the PE/core/lane hierarchy, and the parameter
    cache plan decides which weights stay resident on-chip across inferences.
    The mapping math runs through the same array kernel as the batch path
    (one single-model table), so the scalar and vectorized results cannot
    drift apart.
    """
    layers = lower_network(network)
    cache_plan = plan_parameter_cache(layers, config, enable_caching=enable_parameter_caching)
    mapped = map_layer_table(LayerTable.from_specs(layers), config)

    compiled_layers = []
    for index, layer in enumerate(layers):
        streamed = cache_plan.streamed_bytes_by_layer.get(layer.name, 0)
        cached = scaled_bytes(layer.weight_bytes, config.weight_bits) - streamed
        compiled_layers.append(
            CompiledLayer(
                spec=layer,
                mapping=mapped.row(index),
                cached_weight_bytes=cached,
                streamed_weight_bytes=streamed,
            )
        )

    return CompiledModel(
        config=config,
        network=network,
        layers=tuple(compiled_layers),
        cache_plan=cache_plan,
    )


__all__ = [
    "CachePlan",
    "CacheTable",
    "CompiledLayer",
    "CompiledModel",
    "CompiledTable",
    "LayerMapping",
    "MappingTable",
    "SUPPORTED_KINDS",
    "compile_layer_table",
    "compile_model",
    "effective_cache_capacity",
    "greedy_cache_assign",
    "lower_network",
    "map_layer",
    "map_layer_table",
    "max_activation_bytes",
    "plan_cache_table",
    "plan_parameter_cache",
]
