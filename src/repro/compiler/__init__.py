"""Edge TPU compiler substrate: lowering, tiling/mapping and parameter caching."""

from __future__ import annotations

from ..arch.config import AcceleratorConfig
from ..nasbench.network import NetworkSpec
from .lowering import SUPPORTED_KINDS, lower_network, max_activation_bytes
from .param_cache import CachePlan, effective_cache_capacity, plan_parameter_cache
from .schedule import CompiledLayer, CompiledModel
from .tiling import LayerMapping, map_layer


def compile_model(
    network: NetworkSpec,
    config: AcceleratorConfig,
    enable_parameter_caching: bool = True,
) -> CompiledModel:
    """Compile *network* for *config*.

    The compilation pipeline mirrors the ahead-of-time Edge TPU compiler:
    the network is lowered to the accelerator's operation stream, every
    operation is mapped onto the PE/core/lane hierarchy, and the parameter
    cache plan decides which weights stay resident on-chip across inferences.
    """
    layers = lower_network(network)
    cache_plan = plan_parameter_cache(layers, config, enable_caching=enable_parameter_caching)

    compiled_layers = []
    for layer in layers:
        mapping = map_layer(layer, config)
        streamed = cache_plan.streamed_bytes_by_layer.get(layer.name, 0)
        cached = layer.weight_bytes - streamed
        compiled_layers.append(
            CompiledLayer(
                spec=layer,
                mapping=mapping,
                cached_weight_bytes=cached,
                streamed_weight_bytes=streamed,
            )
        )

    return CompiledModel(
        config=config,
        network=network,
        layers=tuple(compiled_layers),
        cache_plan=cache_plan,
    )


__all__ = [
    "CachePlan",
    "CompiledLayer",
    "CompiledModel",
    "LayerMapping",
    "SUPPORTED_KINDS",
    "compile_model",
    "effective_cache_capacity",
    "lower_network",
    "map_layer",
    "max_activation_bytes",
    "plan_parameter_cache",
]
