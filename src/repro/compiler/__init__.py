"""Edge TPU compiler substrate: lowering, tiling/mapping and parameter caching."""

from __future__ import annotations

from ..arch.config import AcceleratorConfig
from ..nasbench.layer_table import LayerTable
from ..nasbench.network import NetworkSpec
from .lowering import SUPPORTED_KINDS, lower_network, max_activation_bytes
from .param_cache import (
    CachePlan,
    CacheTable,
    effective_cache_capacity,
    greedy_cache_assign,
    plan_cache_table,
    plan_parameter_cache,
)
from .schedule import CompiledLayer, CompiledModel, CompiledTable
from .tiling import LayerMapping, MappingTable, map_layer, map_layer_table


def compile_layer_table(
    table: LayerTable,
    config: AcceleratorConfig,
    enable_parameter_caching: bool = True,
) -> CompiledTable:
    """Compile every model of *table* for *config* in one vectorized pass.

    This is the batch analogue of :func:`compile_model`: the tiling/mapping
    kernel and the parameter-cache planner run once over the whole
    structure-of-arrays table (the table itself is built once per dataset and
    shared across configurations — compile-once, simulate wide).
    """
    mapping = map_layer_table(table, config)
    cache = plan_cache_table(table, config, enable_caching=enable_parameter_caching)
    return CompiledTable(config=config, table=table, mapping=mapping, cache=cache)


def compile_model(
    network: NetworkSpec,
    config: AcceleratorConfig,
    enable_parameter_caching: bool = True,
) -> CompiledModel:
    """Compile *network* for *config*.

    The compilation pipeline mirrors the ahead-of-time Edge TPU compiler:
    the network is lowered to the accelerator's operation stream, every
    operation is mapped onto the PE/core/lane hierarchy, and the parameter
    cache plan decides which weights stay resident on-chip across inferences.
    The mapping math runs through the same array kernel as the batch path
    (one single-model table), so the scalar and vectorized results cannot
    drift apart.
    """
    layers = lower_network(network)
    cache_plan = plan_parameter_cache(layers, config, enable_caching=enable_parameter_caching)
    mapped = map_layer_table(LayerTable.from_specs(layers), config)

    compiled_layers = []
    for index, layer in enumerate(layers):
        streamed = cache_plan.streamed_bytes_by_layer.get(layer.name, 0)
        cached = layer.weight_bytes - streamed
        compiled_layers.append(
            CompiledLayer(
                spec=layer,
                mapping=mapped.row(index),
                cached_weight_bytes=cached,
                streamed_weight_bytes=streamed,
            )
        )

    return CompiledModel(
        config=config,
        network=network,
        layers=tuple(compiled_layers),
        cache_plan=cache_plan,
    )


__all__ = [
    "CachePlan",
    "CacheTable",
    "CompiledLayer",
    "CompiledModel",
    "CompiledTable",
    "LayerMapping",
    "MappingTable",
    "SUPPORTED_KINDS",
    "compile_layer_table",
    "compile_model",
    "effective_cache_capacity",
    "greedy_cache_assign",
    "lower_network",
    "map_layer",
    "map_layer_table",
    "max_activation_bytes",
    "plan_cache_table",
    "plan_parameter_cache",
]
