"""Parameter-caching planner.

Section 3 of the paper describes the Edge TPU compiler's most important
optimization: keeping model parameters resident in on-chip memory across
consecutive inferences so that steady-state inference does not re-fetch them
from DRAM.  The planner here decides, for one compiled model on one
accelerator configuration, how many weight bytes stay resident and which
layers they belong to.

Capacity model
--------------
The cache lives in the on-chip SRAM budget computed by
:func:`repro.arch.memory.parameter_cache_capacity`.  Its *effective* capacity
shrinks as the model grows beyond it: once weights overflow, part of the SRAM
must be re-purposed as streaming/double-buffering space and the reuse distance
of a cached byte exceeds one inference, so the benefit decays.  The paper
observes exactly this ("for larger models parameter caching has diminishing
returns"); we model it with a linear decay that reaches zero when the weight
footprint is twice the nominal capacity:

``effective = capacity                               if weights <= capacity``
``effective = max(0, capacity - (weights - capacity) / 2)   otherwise``

i.e. the benefit decays linearly and disappears entirely once the weight
footprint reaches three times the nominal capacity.

Layer selection is greedy by weight size (largest layers first), which both
maximizes the bytes kept on chip for a given number of cached layers and
mirrors the ahead-of-time compiler's preference for pinning the big reused
tensors.  The greedy scan is implemented once, as the array kernel
:func:`greedy_cache_assign` that plans every model of a
:class:`~repro.nasbench.layer_table.LayerTable` segment-wise in parallel;
the scalar :func:`plan_parameter_cache` is a thin wrapper over it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.config_table import ConfigTable
from ..arch.memory import MemoryBudget, parameter_cache_bytes, parameter_cache_capacity
from ..nasbench.layer_table import LayerTable
from ..nasbench.network import LayerSpec


#: The AcceleratorConfig fields :func:`plan_cache_table` reads (via the
#: capacity formulas in :mod:`repro.arch.memory`).  Configs agreeing on them
#: plan identically; the grid engine exploits that exactly like the mapping
#: kernel's field set.  Keep in sync with the kernel body.
CACHE_CONFIG_FIELDS: tuple[str, ...] = (
    "pes_x",
    "pes_y",
    "cores_per_pe",
    "pe_memory_bytes",
    "core_memory_bytes",
    "pe_memory_cache_fraction",
    "weight_bits",
    "activation_bits",
)


@dataclass(frozen=True)
class CachePlan:
    """Outcome of parameter-cache planning for one model on one configuration."""

    #: Nominal capacity available for cached parameters (bytes).
    capacity_bytes: int
    #: Effective capacity after the diminishing-returns decay (bytes).
    effective_capacity_bytes: int
    #: Total weight footprint of the model (bytes).
    total_weight_bytes: int
    #: Bytes of weights resident on-chip across inferences.
    cached_bytes: int
    #: Names of the layers whose weights are (fully) resident.
    cached_layers: frozenset[str]
    #: Per-layer bytes still streamed from DRAM each inference.
    streamed_bytes_by_layer: dict[str, int]

    @property
    def streamed_bytes(self) -> int:
        """Total weight bytes fetched from DRAM per steady-state inference."""
        return sum(self.streamed_bytes_by_layer.values())

    @property
    def fully_cached(self) -> bool:
        """``True`` when no weight traffic hits DRAM in steady state."""
        return self.streamed_bytes == 0

    def is_cached(self, layer_name: str) -> bool:
        """Return whether the named layer's weights are resident on-chip."""
        return layer_name in self.cached_layers


@dataclass(frozen=True)
class CacheTable:
    """Structure-of-arrays cache plan for every model of a layer table.

    The per-model arrays are indexed like the table's model segments; the
    per-layer arrays are aligned with the table's layer rows.
    """

    #: Per-model nominal capacity (bytes).
    capacity_bytes: np.ndarray
    #: Per-model effective capacity after the diminishing-returns decay.
    effective_capacity_bytes: np.ndarray
    #: Per-model total weight footprint.
    total_weight_bytes: np.ndarray
    #: Per-model bytes resident on-chip across inferences.
    cached_bytes: np.ndarray
    #: Per-layer flag: weights (fully) resident on-chip.
    cached_mask: np.ndarray
    #: Per-layer bytes still streamed from DRAM each inference.
    streamed_bytes: np.ndarray


def effective_cache_capacity_array(total_weight_bytes, capacity_bytes):
    """Effective cache capacity under the diminishing-returns rule (elementwise).

    Single source of the decay formula: ``capacity`` while the weights fit,
    then a linear decay of half the overflow, floored at zero.
    """
    overflow = np.maximum(0, total_weight_bytes - capacity_bytes)
    effective = np.maximum(0, capacity_bytes - overflow // 2)
    return np.where(capacity_bytes <= 0, 0, effective)


def effective_cache_capacity(total_weight_bytes: int, capacity_bytes: int) -> int:
    """Effective parameter-cache capacity under the diminishing-returns rule."""
    return int(effective_cache_capacity_array(total_weight_bytes, capacity_bytes))


def greedy_cache_assign(
    weight_bytes: np.ndarray,
    model_offsets: np.ndarray,
    effective_capacity: np.ndarray,
) -> np.ndarray:
    """Run the greedy largest-first cache selection for every model segment.

    Parameters
    ----------
    weight_bytes:
        Per-layer weight footprints (zero-weight rows are never cached).
    model_offsets:
        Segment offsets delimiting the models (``len(models) + 1`` entries).
    effective_capacity:
        Effective cache capacity in bytes.  Either per-model, shape
        ``(num_models,)``, or batched over a leading configuration axis,
        shape ``(num_configs, num_models)`` — the capacity is the only
        config-dependent input, so one scan plans every configuration.

    Returns
    -------
    np.ndarray
        Boolean mask over the layer rows (with the same leading batch axis
        as *effective_capacity*): ``True`` where the layer's weights are
        resident on-chip.  Within each model the selection is identical to
        the scalar greedy scan: layers sorted by descending weight (stable, so
        ties keep topological order), a layer cached only if it fits entirely
        in the remaining effective capacity.
    """
    weights = np.asarray(weight_bytes, dtype=np.int64)
    offsets = np.asarray(model_offsets, dtype=np.int64)
    num_models = len(offsets) - 1
    effective = np.asarray(effective_capacity, dtype=np.int64)
    batch_shape = effective.shape[:-1]
    cached_mask = np.zeros(batch_shape + (weights.shape[0],), dtype=bool)

    weighted_rows = np.flatnonzero(weights > 0)
    if weighted_rows.size == 0:
        return cached_mask
    model_ids = np.repeat(np.arange(num_models), np.diff(offsets))

    # Stable sort: model-major, then descending weight, ties in row order.
    # The order is config-independent, so the batched scan shares it.
    order = weighted_rows[np.lexsort((-weights[weighted_rows], model_ids[weighted_rows]))]
    sorted_weights = weights[order]
    counts = np.bincount(model_ids[order], minlength=num_models)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

    cached_bytes = np.zeros(batch_shape + (num_models,), dtype=np.int64)
    fits_flags = np.zeros(batch_shape + (sorted_weights.shape[0],), dtype=bool)
    # Greedy scan vectorized over models (and configs): iterate size ranks
    # (bounded by the deepest model, ~tens), deciding the rank-j layer of
    # every model of every configuration at once.
    for rank in range(int(counts.max())):
        active = counts > rank
        rows = starts[active] + rank
        fits = cached_bytes[..., active] + sorted_weights[rows] <= effective[..., active]
        cached_bytes[..., active] += sorted_weights[rows] * fits
        fits_flags[..., rows] = fits

    cached_mask[..., order] = fits_flags
    return cached_mask


def plan_cache_table(
    table: LayerTable,
    config: AcceleratorConfig | ConfigTable,
    enable_caching: bool = True,
) -> CacheTable:
    """Plan the parameter cache for every model of *table* on *config*.

    Array form of :func:`plan_parameter_cache`: capacities, effective
    capacities and the greedy selection are computed for all model segments in
    one vectorized pass.  With a
    :class:`~repro.arch.config_table.ConfigTable` the capacity — the only
    config-dependent input — gains a leading configuration axis and the whole
    plan is produced for every configuration at once (per-model arrays of
    shape ``(num_configs, num_models)``, per-layer arrays of shape
    ``(num_configs, num_layers)``).
    """
    starts = table.segment_starts
    # Stored footprints at the configured bit-widths: (num_layers,) against a
    # scalar config, (num_configs, num_layers) against a ConfigTable whose
    # rows disagree on the bit-width fields.
    weights = scaled_bytes(table.weight_bytes, config.weight_bits)
    total_weight = np.add.reduceat(weights, starts, axis=-1)

    activation = scaled_bytes(
        table.input_activation_bytes + table.output_activation_bytes,
        config.activation_bits,
    )
    max_activation = np.maximum.reduceat(activation, starts, axis=-1)
    capacity = parameter_cache_bytes(config, max_activation)

    if not enable_caching:
        mask_shape = capacity.shape[:-1] + (len(table),)
        return CacheTable(
            capacity_bytes=capacity,
            effective_capacity_bytes=np.zeros_like(capacity),
            total_weight_bytes=total_weight,
            cached_bytes=np.zeros(capacity.shape, dtype=np.int64),
            cached_mask=np.zeros(mask_shape, dtype=bool),
            streamed_bytes=np.broadcast_to(weights, mask_shape).copy(),
        )

    effective = effective_cache_capacity_array(total_weight, capacity)
    if weights.ndim == 1:
        cached_mask = greedy_cache_assign(weights, table.model_offsets, effective)
    else:
        # The greedy scan shares one sort order across its batch axis, which
        # only holds while every row sees the same per-layer weights.  Rows
        # with different weight_bits see different (scaled) weights — and the
        # selection must match the scalar oracle's sort of *scaled* weights
        # exactly, ties included — so the scan runs once per distinct width.
        wb_rows = np.asarray(config.weight_bits).reshape(-1)
        cached_mask = np.zeros(effective.shape[:-1] + (len(table),), dtype=bool)
        for bits in np.unique(wb_rows):
            rows = np.flatnonzero(wb_rows == bits)
            group_weights = scaled_bytes(table.weight_bytes, int(bits))
            cached_mask[rows] = greedy_cache_assign(
                group_weights, table.model_offsets, effective[rows]
            )
    cached_weights = np.where(cached_mask, weights, 0)
    return CacheTable(
        capacity_bytes=capacity,
        effective_capacity_bytes=effective,
        total_weight_bytes=total_weight,
        cached_bytes=np.add.reduceat(cached_weights, starts, axis=-1),
        cached_mask=cached_mask,
        streamed_bytes=weights - cached_weights,
    )


def plan_parameter_cache(
    layers: tuple[LayerSpec, ...],
    config: AcceleratorConfig,
    enable_caching: bool = True,
    budget: MemoryBudget | None = None,
) -> CachePlan:
    """Build the parameter-cache plan for *layers* on *config*.

    Thin scalar wrapper over :func:`greedy_cache_assign` (single-model
    segment) that materializes the name-keyed :class:`CachePlan`.

    Parameters
    ----------
    layers:
        Lowered operation stream of the model.
    config:
        Target accelerator configuration.
    enable_caching:
        The paper runs all simulations with parameter caching enabled; passing
        ``False`` forces every weight byte to stream from DRAM (used by the
        ablation benchmarks).
    budget:
        Optional precomputed memory budget (otherwise derived from *config*
        and the largest activation working set of *layers*).
    """
    weighted = [layer for layer in layers if layer.weight_bytes > 0]
    # All cache arithmetic runs on *stored* footprints at the configured
    # bit-widths; at the 8-bit default these equal the canonical footprints.
    stored = {
        layer.name: int(scaled_bytes(layer.weight_bytes, config.weight_bits))
        for layer in weighted
    }
    total_weight_bytes = sum(stored.values())

    if budget is None:
        max_activation = max(
            (
                int(
                    scaled_bytes(
                        layer.input_activation_bytes + layer.output_activation_bytes,
                        config.activation_bits,
                    )
                )
                for layer in layers
            ),
            default=0,
        )
        budget = parameter_cache_capacity(config, max_activation)
    capacity = budget.parameter_cache_bytes

    if not enable_caching or total_weight_bytes == 0:
        return CachePlan(
            capacity_bytes=capacity,
            effective_capacity_bytes=0 if not enable_caching else capacity,
            total_weight_bytes=total_weight_bytes,
            cached_bytes=0,
            cached_layers=frozenset(),
            streamed_bytes_by_layer={layer.name: stored[layer.name] for layer in weighted},
        )

    effective = effective_cache_capacity(total_weight_bytes, capacity)
    weights = np.array([stored[layer.name] for layer in weighted], dtype=np.int64)
    cached_mask = greedy_cache_assign(
        weights,
        np.array([0, weights.size], dtype=np.int64),
        np.array([effective], dtype=np.int64),
    )

    cached_layers = {layer.name for layer, cached in zip(weighted, cached_mask) if cached}
    streamed = {
        layer.name: 0 if cached else stored[layer.name]
        for layer, cached in zip(weighted, cached_mask)
    }
    return CachePlan(
        capacity_bytes=capacity,
        effective_capacity_bytes=effective,
        total_weight_bytes=total_weight_bytes,
        cached_bytes=int(weights[cached_mask].sum()),
        cached_layers=frozenset(cached_layers),
        streamed_bytes_by_layer=streamed,
    )
