"""Parameter-caching planner.

Section 3 of the paper describes the Edge TPU compiler's most important
optimization: keeping model parameters resident in on-chip memory across
consecutive inferences so that steady-state inference does not re-fetch them
from DRAM.  The planner here decides, for one compiled model on one
accelerator configuration, how many weight bytes stay resident and which
layers they belong to.

Capacity model
--------------
The cache lives in the on-chip SRAM budget computed by
:func:`repro.arch.memory.parameter_cache_capacity`.  Its *effective* capacity
shrinks as the model grows beyond it: once weights overflow, part of the SRAM
must be re-purposed as streaming/double-buffering space and the reuse distance
of a cached byte exceeds one inference, so the benefit decays.  The paper
observes exactly this ("for larger models parameter caching has diminishing
returns"); we model it with a linear decay that reaches zero when the weight
footprint is twice the nominal capacity:

``effective = capacity                               if weights <= capacity``
``effective = max(0, capacity - (weights - capacity) / 2)   otherwise``

i.e. the benefit decays linearly and disappears entirely once the weight
footprint reaches three times the nominal capacity.

Layer selection is greedy by weight size (largest layers first), which both
maximizes the bytes kept on chip for a given number of cached layers and
mirrors the ahead-of-time compiler's preference for pinning the big reused
tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import AcceleratorConfig
from ..arch.memory import MemoryBudget, parameter_cache_capacity
from ..nasbench.network import LayerSpec


@dataclass(frozen=True)
class CachePlan:
    """Outcome of parameter-cache planning for one model on one configuration."""

    #: Nominal capacity available for cached parameters (bytes).
    capacity_bytes: int
    #: Effective capacity after the diminishing-returns decay (bytes).
    effective_capacity_bytes: int
    #: Total weight footprint of the model (bytes).
    total_weight_bytes: int
    #: Bytes of weights resident on-chip across inferences.
    cached_bytes: int
    #: Names of the layers whose weights are (fully) resident.
    cached_layers: frozenset[str]
    #: Per-layer bytes still streamed from DRAM each inference.
    streamed_bytes_by_layer: dict[str, int]

    @property
    def streamed_bytes(self) -> int:
        """Total weight bytes fetched from DRAM per steady-state inference."""
        return sum(self.streamed_bytes_by_layer.values())

    @property
    def fully_cached(self) -> bool:
        """``True`` when no weight traffic hits DRAM in steady state."""
        return self.streamed_bytes == 0

    def is_cached(self, layer_name: str) -> bool:
        """Return whether the named layer's weights are resident on-chip."""
        return layer_name in self.cached_layers


def effective_cache_capacity(total_weight_bytes: int, capacity_bytes: int) -> int:
    """Effective parameter-cache capacity under the diminishing-returns rule."""
    if capacity_bytes <= 0:
        return 0
    if total_weight_bytes <= capacity_bytes:
        return capacity_bytes
    overflow = total_weight_bytes - capacity_bytes
    return max(0, capacity_bytes - overflow // 2)


def plan_parameter_cache(
    layers: tuple[LayerSpec, ...],
    config: AcceleratorConfig,
    enable_caching: bool = True,
    budget: MemoryBudget | None = None,
) -> CachePlan:
    """Build the parameter-cache plan for *layers* on *config*.

    Parameters
    ----------
    layers:
        Lowered operation stream of the model.
    config:
        Target accelerator configuration.
    enable_caching:
        The paper runs all simulations with parameter caching enabled; passing
        ``False`` forces every weight byte to stream from DRAM (used by the
        ablation benchmarks).
    budget:
        Optional precomputed memory budget (otherwise derived from *config*
        and the largest activation working set of *layers*).
    """
    weighted = [layer for layer in layers if layer.weight_bytes > 0]
    total_weight_bytes = sum(layer.weight_bytes for layer in weighted)

    if budget is None:
        max_activation = max(
            (layer.input_activation_bytes + layer.output_activation_bytes for layer in layers),
            default=0,
        )
        budget = parameter_cache_capacity(config, max_activation)
    capacity = budget.parameter_cache_bytes

    if not enable_caching or total_weight_bytes == 0:
        return CachePlan(
            capacity_bytes=capacity,
            effective_capacity_bytes=0 if not enable_caching else capacity,
            total_weight_bytes=total_weight_bytes,
            cached_bytes=0,
            cached_layers=frozenset(),
            streamed_bytes_by_layer={layer.name: layer.weight_bytes for layer in weighted},
        )

    effective = effective_cache_capacity(total_weight_bytes, capacity)

    cached_layers: set[str] = set()
    cached_bytes = 0
    streamed: dict[str, int] = {}
    # Largest layers first; a layer is cached only if it fits entirely in the
    # remaining effective capacity (partial layer caching would complicate the
    # runtime for little benefit).
    for layer in sorted(weighted, key=lambda item: item.weight_bytes, reverse=True):
        if cached_bytes + layer.weight_bytes <= effective:
            cached_layers.add(layer.name)
            cached_bytes += layer.weight_bytes
            streamed[layer.name] = 0
        else:
            streamed[layer.name] = layer.weight_bytes

    return CachePlan(
        capacity_bytes=capacity,
        effective_capacity_bytes=effective,
        total_weight_bytes=total_weight_bytes,
        cached_bytes=cached_bytes,
        cached_layers=frozenset(cached_layers),
        streamed_bytes_by_layer=streamed,
    )
