"""Mapping of individual layers onto the PE / core / lane hierarchy.

The mapping follows the scheme described in Section 2 and Figure 2 of the
paper: output spatial positions are distributed across the 2D PE array, output
channels across the compute cores and their SIMD lanes, and the reduction over
the convolution window and input channels is performed temporally by each
lane's multi-way MAC unit.  The compute-cycle estimate is the product of the
resulting tile counts, which naturally captures the quantization losses that
make a wide accelerator (V1) under-utilized on thin layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.config import AcceleratorConfig
from ..errors import CompilationError
from ..nasbench.network import (
    KIND_CONV,
    KIND_DENSE,
    KIND_PROJECTION,
    LayerSpec,
)

#: Layer kinds executed on the MAC datapath.
_MAC_KINDS = frozenset({KIND_CONV, KIND_PROJECTION, KIND_DENSE})

#: Cycle-count penalty of the alternative mapping that spreads output pixels
#: across the cores of a PE (they contend for the shared PE memory ports).
_CORE_SPATIAL_PENALTY = 1.15


@dataclass(frozen=True)
class LayerMapping:
    """Result of mapping one layer onto an accelerator configuration.

    Attributes
    ----------
    spatial_tiles:
        Number of sequential passes needed to cover the output pixels with the
        PE array.
    channel_tiles:
        Number of sequential passes needed to cover the output channels with
        the cores and SIMD lanes (of the PEs sharing one spatial position).
    reduction_steps:
        Cycles each lane spends accumulating one output element (the kernel
        window times input channels divided over the multi-way MAC unit).
    compute_cycles:
        Total datapath cycles for the layer.
    utilization:
        Useful MACs divided by the MAC slots issued during ``compute_cycles``
        (zero for layers without MAC work).
    weight_passes:
        How many core-memory refills are needed to stream the layer's weights
        through the per-core parameter memories.
    """

    spatial_tiles: int
    channel_tiles: int
    reduction_steps: int
    compute_cycles: int
    utilization: float
    weight_passes: int


def map_layer(layer: LayerSpec, config: AcceleratorConfig) -> LayerMapping:
    """Map *layer* onto *config* and estimate its datapath cycles."""
    out_pixels = layer.output_height * layer.output_width
    if out_pixels <= 0:
        raise CompilationError(f"layer {layer.name!r} produces no output pixels")

    if layer.kind in _MAC_KINDS:
        return _map_mac_layer(layer, config, out_pixels)
    return _map_vector_layer(layer, config, out_pixels)


def _map_mac_layer(
    layer: LayerSpec, config: AcceleratorConfig, out_pixels: int
) -> LayerMapping:
    """Map a convolution / dense layer onto the MAC datapath."""
    if layer.kind == KIND_DENSE:
        kernel_volume = layer.in_channels
    else:
        kernel_volume = layer.kernel_size * layer.kernel_size * layer.in_channels

    reduction_steps = math.ceil(kernel_volume / config.macs_per_lane)

    # Mapping (a), "channel-major": output pixels across PEs, output channels
    # across the cores and SIMD lanes of each PE (Figure 2 of the paper).
    pe_channel_split = max(1, config.num_pes // out_pixels) if out_pixels < config.num_pes else 1
    channel_slots_a = config.cores_per_pe * config.compute_lanes * pe_channel_split
    spatial_tiles_a = math.ceil(out_pixels / config.num_pes)
    channel_tiles_a = math.ceil(layer.out_channels / channel_slots_a)
    cycles_a = spatial_tiles_a * channel_tiles_a * reduction_steps

    # Mapping (b), "core-spatial": output pixels across PEs *and* cores,
    # output channels across the SIMD lanes only.  Chosen by the compiler for
    # thin layers whose channel count cannot fill mapping (a); it pays a small
    # penalty for the cores' contention on the shared PE memory.
    spatial_units = config.num_pes * config.cores_per_pe
    pe_channel_split_b = max(1, spatial_units // out_pixels) if out_pixels < spatial_units else 1
    spatial_tiles_b = math.ceil(out_pixels / spatial_units)
    channel_tiles_b = math.ceil(layer.out_channels / (config.compute_lanes * pe_channel_split_b))
    cycles_b = math.ceil(spatial_tiles_b * channel_tiles_b * reduction_steps * _CORE_SPATIAL_PENALTY)

    if cycles_a <= cycles_b:
        spatial_tiles, channel_tiles, compute_cycles = spatial_tiles_a, channel_tiles_a, cycles_a
    else:
        spatial_tiles, channel_tiles, compute_cycles = spatial_tiles_b, channel_tiles_b, cycles_b

    issued_macs = compute_cycles * config.macs_per_cycle
    utilization = layer.macs / issued_macs if issued_macs else 0.0

    weight_passes = (
        math.ceil(layer.weight_bytes / config.total_core_memory_bytes)
        if layer.weight_bytes
        else 0
    )
    return LayerMapping(
        spatial_tiles=spatial_tiles,
        channel_tiles=channel_tiles,
        reduction_steps=reduction_steps,
        compute_cycles=compute_cycles,
        utilization=min(utilization, 1.0),
        weight_passes=weight_passes,
    )


def _map_vector_layer(
    layer: LayerSpec, config: AcceleratorConfig, out_pixels: int
) -> LayerMapping:
    """Map a pooling / element-wise layer onto the vector (non-MAC) path."""
    if layer.kind in ("maxpool", "downsample"):
        ops_per_element = layer.kernel_size * layer.kernel_size
    elif layer.kind == "global_pool":
        ops_per_element = layer.input_height * layer.input_width
    elif layer.kind == "add":
        # in_channels carries the summed width of all inputs.
        ops_per_element = max(1, layer.in_channels // max(1, layer.out_channels))
    else:  # concat and other pure data-movement layers
        ops_per_element = 1

    elements = out_pixels * layer.out_channels * ops_per_element
    throughput = config.macs_per_cycle  # one ALU op per MAC slot per cycle
    compute_cycles = max(1, math.ceil(elements / throughput))
    return LayerMapping(
        spatial_tiles=math.ceil(out_pixels / config.num_pes),
        channel_tiles=1,
        reduction_steps=ops_per_element,
        compute_cycles=compute_cycles,
        utilization=0.0,
        weight_passes=0,
    )
