"""Mapping of individual layers onto the PE / core / lane hierarchy.

The mapping follows the scheme described in Section 2 and Figure 2 of the
paper: output spatial positions are distributed across the 2D PE array, output
channels across the compute cores and their SIMD lanes, and the reduction over
the convolution window and input channels is performed temporally by each
lane's multi-way MAC unit.  The compute-cycle estimate is the product of the
resulting tile counts, which naturally captures the quantization losses that
make a wide accelerator (V1) under-utilized on thin layers.

The mapping math lives in :func:`map_layer_table`, an array kernel operating
on a whole :class:`~repro.nasbench.layer_table.LayerTable` at once (one or
many models); :func:`map_layer` is a thin scalar wrapper over the same kernel
so the per-layer and batch paths can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.config_table import ConfigTable
from ..errors import CompilationError
from ..nasbench.layer_table import (
    CODE_ADD,
    CODE_DENSE,
    CODE_DOWNSAMPLE,
    CODE_GLOBAL_POOL,
    CODE_MAXPOOL,
    LayerTable,
    ceil_div,
)
from ..nasbench.network import LayerSpec

#: Cycle-count penalty of the alternative mapping that spreads output pixels
#: across the cores of a PE (they contend for the shared PE memory ports).
_CORE_SPATIAL_PENALTY = 1.15

#: The AcceleratorConfig fields :func:`map_layer_table` reads.  Configs that
#: agree on them map identically, which lets the grid engine run the kernel
#: once per distinct sub-configuration (a clock or I/O-bandwidth axis never
#: re-runs the mapping).  Keep in sync with the kernel body.
MAPPING_CONFIG_FIELDS: tuple[str, ...] = (
    "pes_x",
    "pes_y",
    "cores_per_pe",
    "compute_lanes",
    "macs_per_lane",
    "core_memory_bytes",
    "weight_bits",
)


@dataclass(frozen=True)
class LayerMapping:
    """Result of mapping one layer onto an accelerator configuration.

    Attributes
    ----------
    spatial_tiles:
        Number of sequential passes needed to cover the output pixels with the
        PE array.
    channel_tiles:
        Number of sequential passes needed to cover the output channels with
        the cores and SIMD lanes (of the PEs sharing one spatial position).
    reduction_steps:
        Cycles each lane spends accumulating one output element (the kernel
        window times input channels divided over the multi-way MAC unit).
    compute_cycles:
        Total datapath cycles for the layer.
    utilization:
        Useful MACs divided by the MAC slots issued during ``compute_cycles``
        (zero for layers without MAC work).
    weight_passes:
        How many core-memory refills are needed to stream the layer's weights
        through the per-core parameter memories.
    """

    spatial_tiles: int
    channel_tiles: int
    reduction_steps: int
    compute_cycles: int
    utilization: float
    weight_passes: int


@dataclass(frozen=True)
class MappingTable:
    """Structure-of-arrays :class:`LayerMapping` for a whole layer table."""

    spatial_tiles: np.ndarray
    channel_tiles: np.ndarray
    reduction_steps: np.ndarray
    compute_cycles: np.ndarray
    utilization: np.ndarray
    weight_passes: np.ndarray

    def __len__(self) -> int:
        return len(self.compute_cycles)

    def row(self, index: int) -> LayerMapping:
        """Materialize one row as a scalar :class:`LayerMapping`."""
        return LayerMapping(
            spatial_tiles=int(self.spatial_tiles[index]),
            channel_tiles=int(self.channel_tiles[index]),
            reduction_steps=int(self.reduction_steps[index]),
            compute_cycles=int(self.compute_cycles[index]),
            utilization=float(self.utilization[index]),
            weight_passes=int(self.weight_passes[index]),
        )


def map_layer_table(
    table: LayerTable, config: AcceleratorConfig | ConfigTable
) -> MappingTable:
    """Map every layer row of *table* onto *config* in one vectorized pass.

    Both the MAC-datapath and the vector-path mappings are evaluated for all
    rows and the applicable one selected per row; the redundant arithmetic is
    cheaper than fancy indexing at population scale.

    *config* may be one :class:`AcceleratorConfig` (mapping arrays of shape
    ``(num_layers,)``) or a :class:`~repro.arch.config_table.ConfigTable`
    whose ``(num_configs, 1)`` columns broadcast the whole mapping over the
    configuration axis in the same pass (arrays of shape
    ``(num_configs, num_layers)``).
    """
    out_pixels = table.output_height * table.output_width
    if np.any(out_pixels <= 0):
        row = int(np.argmax(out_pixels <= 0))
        model = int(np.searchsorted(table.model_offsets, row, side="right")) - 1
        layer = row - int(table.model_offsets[model])
        raise CompilationError(f"layer {layer} of model {model} produces no output pixels")

    code = table.kind_codes
    is_mac = table.is_mac
    out_channels = table.out_channels

    # --- MAC datapath (conv / projection / dense) --------------------- #
    kernel_volume = np.where(
        code == CODE_DENSE,
        table.in_channels,
        table.kernel_size * table.kernel_size * table.in_channels,
    )
    reduction_steps = ceil_div(kernel_volume, config.macs_per_lane)

    # Mapping (a), "channel-major": output pixels across PEs, output channels
    # across the cores and SIMD lanes of each PE (Figure 2 of the paper).
    num_pes = config.num_pes
    pe_channel_split = np.where(out_pixels < num_pes, np.maximum(1, num_pes // out_pixels), 1)
    channel_slots_a = config.cores_per_pe * config.compute_lanes * pe_channel_split
    spatial_tiles_a = ceil_div(out_pixels, num_pes)
    channel_tiles_a = ceil_div(out_channels, channel_slots_a)
    cycles_a = spatial_tiles_a * channel_tiles_a * reduction_steps

    # Mapping (b), "core-spatial": output pixels across PEs *and* cores,
    # output channels across the SIMD lanes only.  Chosen by the compiler for
    # thin layers whose channel count cannot fill mapping (a); it pays a small
    # penalty for the cores' contention on the shared PE memory.
    spatial_units = num_pes * config.cores_per_pe
    pe_channel_split_b = np.where(
        out_pixels < spatial_units, np.maximum(1, spatial_units // out_pixels), 1
    )
    spatial_tiles_b = ceil_div(out_pixels, spatial_units)
    channel_tiles_b = ceil_div(out_channels, config.compute_lanes * pe_channel_split_b)
    cycles_b = np.ceil(
        spatial_tiles_b * channel_tiles_b * reduction_steps * _CORE_SPATIAL_PENALTY
    ).astype(np.int64)

    use_a = cycles_a <= cycles_b
    mac_spatial = np.where(use_a, spatial_tiles_a, spatial_tiles_b)
    mac_channel = np.where(use_a, channel_tiles_a, channel_tiles_b)
    mac_cycles = np.where(use_a, cycles_a, cycles_b)

    # --- Vector path (pooling / element-wise / data movement) ---------- #
    ops_per_element = np.select(
        [
            (code == CODE_MAXPOOL) | (code == CODE_DOWNSAMPLE),
            code == CODE_GLOBAL_POOL,
            code == CODE_ADD,
        ],
        [
            table.kernel_size * table.kernel_size,
            table.input_height * table.input_width,
            # in_channels carries the summed width of all inputs.
            np.maximum(1, table.in_channels // np.maximum(1, out_channels)),
        ],
        default=1,
    )
    elements = out_pixels * out_channels * ops_per_element
    # One ALU op per MAC slot per cycle.
    vector_cycles = np.maximum(1, ceil_div(elements, config.macs_per_cycle))
    vector_spatial = ceil_div(out_pixels, num_pes)

    # --- Combine ------------------------------------------------------- #
    compute_cycles = np.where(is_mac, mac_cycles, vector_cycles)
    issued_macs = compute_cycles * config.macs_per_cycle
    utilization = np.where(is_mac, np.minimum(table.macs / np.maximum(issued_macs, 1), 1.0), 0.0)
    stored_weight_bytes = scaled_bytes(table.weight_bytes, config.weight_bits)
    weight_passes = np.where(
        table.weight_bytes > 0,
        ceil_div(stored_weight_bytes, config.total_core_memory_bytes),
        0,
    )
    return MappingTable(
        spatial_tiles=np.where(is_mac, mac_spatial, vector_spatial),
        channel_tiles=np.where(is_mac, mac_channel, 1),
        reduction_steps=np.where(is_mac, reduction_steps, ops_per_element),
        compute_cycles=compute_cycles,
        utilization=utilization,
        weight_passes=weight_passes,
    )


def map_layer(layer: LayerSpec, config: AcceleratorConfig) -> LayerMapping:
    """Map *layer* onto *config* and estimate its datapath cycles.

    Thin scalar wrapper over :func:`map_layer_table` (a one-row table).
    """
    if layer.output_height * layer.output_width <= 0:
        raise CompilationError(f"layer {layer.name!r} produces no output pixels")
    return map_layer_table(LayerTable.from_specs((layer,)), config).row(0)
