"""Lowering of an expanded network into the accelerator's operation stream.

The Edge TPU compiler consumes an ahead-of-time model description and emits
the low-level operation stream executed by the on-chip controller (Section 3
of the paper).  In this reproduction the expanded
:class:`~repro.nasbench.network.NetworkSpec` already lists every operation in
topological order, so lowering is mostly a validation and normalization pass:

* every layer must be expressible on the accelerator (all NASBench operations
  are, so an unsupported kind raises :class:`CompilationError` rather than
  falling back to a CPU partition);
* zero-cost glue layers (adds/concats) are kept — they still move activations
  through PE memory and the performance model charges them accordingly.
"""

from __future__ import annotations

from ..errors import CompilationError
from ..nasbench.layer_table import KIND_CODES
from ..nasbench.network import LayerSpec, NetworkSpec

#: Layer kinds the accelerator supports natively — exactly the kinds the
#: array kernels encode, so the scalar and batch paths accept the same set.
SUPPORTED_KINDS = frozenset(KIND_CODES)


def lower_network(network: NetworkSpec) -> tuple[LayerSpec, ...]:
    """Return the ordered operation stream for *network*.

    Raises
    ------
    CompilationError
        If the network contains a layer kind the accelerator cannot execute.
    """
    for layer in network.layers:
        if layer.kind not in SUPPORTED_KINDS:
            raise CompilationError(
                f"layer {layer.name!r} has kind {layer.kind!r}, which is not "
                "supported by the Edge TPU mapping"
            )
        if layer.in_channels <= 0 or layer.out_channels <= 0:
            raise CompilationError(
                f"layer {layer.name!r} has non-positive channel counts "
                f"({layer.in_channels} -> {layer.out_channels})"
            )
    return tuple(network.layers)


def max_activation_bytes(layers: tuple[LayerSpec, ...]) -> int:
    """Largest per-layer activation working set (inputs plus outputs)."""
    return max(
        (layer.input_activation_bytes + layer.output_activation_bytes for layer in layers),
        default=0,
    )
