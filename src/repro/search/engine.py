"""Hardware-aware architecture search over the batch-sweep stack.

:class:`SearchEngine` closes the explore → evaluate → select loop the rest of
the repo only measures: candidate cells are proposed (randomly, by
regularized evolution, or by predictor-guided pre-screening), evaluated in
**one batched sweep per generation** through
:meth:`~repro.service.MeasurementStore.extend` (so every generation persists
before the next begins and a killed search resumes with only the missing
generations simulated), and selected against a scalarized objective — the
hardware metric, with models below the paper's accuracy floor penalized to
``inf``.  A :class:`~repro.analysis.ParetoArchive` tracks the multi-objective
frontier and its hypervolume per generation.

Determinism: every stochastic choice draws from a single
``numpy.random.Generator`` seeded by the spec, and each generation depends
only on the state before it, so the same spec always regenerates the same
generation sequence — which is exactly what makes store-backed resumption
exact (content-keyed shards of a rerun match the interrupted run's files).
"""

from __future__ import annotations

import tempfile
import time
from collections import deque
from typing import Callable, Iterable

import numpy as np

from .. import obs
from ..analysis.archive import ParetoArchive
from ..arch.config import get_config
from ..arch.energy import energy_parameters_for
from ..errors import DatasetError, SearchError
from ..nasbench.accuracy import SurrogateAccuracyModel
from ..nasbench.cell import Cell
from ..nasbench.dataset import ModelRecord, NASBenchDataset
from ..nasbench.generator import random_cell
from ..nasbench.graph_metrics import compute_metrics
from ..nasbench.macro import MacroSpec, random_macro
from ..nasbench.mutation import mutate_macro_unique, mutate_unique
from ..nasbench.network import NetworkConfig, build_network
from ..service.query import SweepService
from ..service.store import MeasurementStore
from .result import GenerationStats, SearchResult
from .spec import SearchSpec

#: Attempts at drawing an unseen random cell before the space is declared
#: exhausted (generous: collisions are rare outside tiny sub-spaces).
_RANDOM_ATTEMPTS = 500

#: Mutation draws per child before falling back to a fresh random cell.
_MUTATION_ATTEMPTS = 30

#: Selection score offset of infeasible models.  Any feasible cost (ms/mJ)
#: is smaller, so feasible models always outrank infeasible ones; among
#: infeasible models the accuracy deficit is added on top, giving tournament
#: selection a gradient *toward* the feasible region instead of the blind
#: tie an ``inf`` penalty would produce.
_INFEASIBLE_OFFSET = 1e6


def oracle_accuracy(
    cell: Cell,
    network_config: NetworkConfig,
    accuracy_model: SurrogateAccuracyModel,
) -> float:
    """Oracle accuracy of *cell* expanded with *network_config*.

    The single accuracy lookup shared by the cell-only engine and the
    hardware co-search (the surrogate's parameter term depends on the
    macro-architecture, so the expansion must be part of the oracle).
    """
    metrics = compute_metrics(cell, prune=False)
    network = build_network(cell, network_config)
    return accuracy_model.mean_validation_accuracy(
        cell,
        fingerprint=cell.fingerprint,
        metrics=metrics,
        trainable_parameters=network.trainable_parameters,
    )


def selection_scores(
    costs: np.ndarray, accuracies: np.ndarray, min_accuracy: float
) -> np.ndarray:
    """Soft-penalized scores used for parent selection and pre-screening."""
    feasible = np.isfinite(costs) & (accuracies >= min_accuracy)
    deficit = np.clip(min_accuracy - accuracies, 0.0, None)
    return np.where(feasible, costs, _INFEASIBLE_OFFSET + deficit)


class _Union:
    """Membership over several containers, without materializing their union.

    Every membership probe is one candidate the mutation loop tried; a hit is
    one duplicate it rejected — counted here so the obs counters see every
    attempt, not just the survivors the engine returns.
    """

    def __init__(self, *containers: Iterable):
        self._containers = containers

    def __contains__(self, item: object) -> bool:
        obs.count("search.candidates_checked")
        hit = any(item in container for container in self._containers)
        if hit:
            obs.count("search.dedup_rejects")
        return hit


class SearchEngine:
    """Multi-objective, hardware-aware NAS search engine.

    Parameters
    ----------
    spec:
        The search to run.
    store:
        Optional resumable :class:`~repro.service.MeasurementStore` the
        per-generation sweeps go through.  Its shard size must divide the
        spec's ``population_size`` so the shard files of the growing search
        history stay content-stable across generations (that alignment is
        what makes interrupted searches resume with only the missing
        generations simulated).  Without a store, measurements persist to a
        temporary directory that lives as long as the engine.
    network_config:
        Macro-architecture used to expand candidate cells (defaults to the
        paper's CIFAR-10 backbone, like the dataset generator).
    accuracy_model:
        Surrogate accuracy oracle (deterministic; shared with the history
        dataset so feasibility and selection always agree).
    """

    def __init__(
        self,
        spec: SearchSpec,
        store: MeasurementStore | None = None,
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
    ):
        self.spec = spec
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if store is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-search-")
            store = MeasurementStore(
                self._tmpdir.name,
                shard_size=spec.population_size,
                enable_parameter_caching=spec.enable_parameter_caching,
            )
        if store.enable_parameter_caching != spec.enable_parameter_caching:
            raise SearchError(
                "measurement store and search spec disagree on parameter "
                f"caching (store={store.enable_parameter_caching}, "
                f"spec={spec.enable_parameter_caching})"
            )
        if spec.population_size % store.shard_size != 0:
            raise SearchError(
                f"store shard size {store.shard_size} must divide the "
                f"generation size {spec.population_size}; otherwise the "
                "growing history re-keys earlier shards every generation and "
                "nothing resumes"
            )
        self.store = store
        self.network_config = network_config or NetworkConfig()
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self._config = get_config(spec.config_name)
        if spec.metric == "energy" and not energy_parameters_for(self._config).available:
            raise SearchError(
                f"configuration {spec.config_name!r} has no energy model; "
                "it cannot drive an energy-objective search"
            )

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, progress: Callable[[str], None] | None = None) -> SearchResult:
        """Run (or resume) the search and return its result.

        Each generation proposes ``population_size`` unique candidates,
        appends them to the history dataset, and brings the measurement
        store up to date — shards already on disk (an earlier or interrupted
        run of the same spec) are loaded, only new models are simulated.
        """
        spec = self.spec
        say = progress or (lambda message: None)
        start = time.perf_counter()
        rng = np.random.default_rng(spec.seed)

        seen: set[Cell | MacroSpec] = set()
        records: list[ModelRecord] = []
        population: deque[int] = deque(maxlen=spec.population_size)
        archive: ParetoArchive | None = None
        dataset: NASBenchDataset | None = None
        measurements = None
        objective: np.ndarray | None = None
        selection: np.ndarray | None = None
        rows: list[GenerationStats] = []

        for generation in range(spec.generations):
            with obs.span(
                "search.generation", generation=generation, strategy=spec.strategy
            ):
                with obs.span("search.propose", generation=generation):
                    candidates = self._propose(
                        generation, rng, seen, records, population, selection,
                        dataset, measurements,
                    )
                for cell in candidates:
                    seen.add(cell)
                    records.append(self._record(cell, len(records)))
                dataset = NASBenchDataset(records, self.network_config)
                with obs.span(
                    "search.simulate", generation=generation, models=len(records)
                ):
                    measurements = self.store.extend(dataset, configs=[self._config])

                costs = (
                    measurements.latencies(spec.config_name)
                    if spec.metric == "latency"
                    else measurements.energies(spec.config_name)
                )
                accuracies = dataset.accuracies()
                objective = np.where(
                    np.isfinite(costs) & (accuracies >= spec.min_accuracy), costs, np.inf
                )
                selection = selection_scores(costs, accuracies, spec.min_accuracy)
                new_slice = slice(len(records) - len(candidates), len(records))
                population.extend(range(new_slice.start, new_slice.stop))

                if archive is None:
                    archive = self._make_archive(costs)
                admitted = archive.update_many(
                    candidates,
                    np.where(accuracies[new_slice] >= spec.min_accuracy,
                             costs[new_slice], np.inf),
                    accuracies[new_slice],
                    generation=generation,
                )
                hypervolume = archive.checkpoint()
                generation_best = float(np.min(objective[new_slice]))
                best_index = int(np.argmin(objective))
                rows.append(
                    GenerationStats(
                        generation=generation,
                        evaluated=len(candidates),
                        feasible=int(np.isfinite(objective[new_slice]).sum()),
                        generation_best=generation_best,
                        best_objective=float(objective[best_index]),
                        hypervolume=hypervolume,
                        admitted=admitted,
                    )
                )
                say(
                    f"generation {generation}: evaluated {len(candidates)}, "
                    f"best {float(objective[best_index]):.4f}, "
                    f"front {len(archive)} (hv {hypervolume:.5f})"
                )

        assert dataset is not None and measurements is not None
        assert objective is not None and archive is not None
        return SearchResult(
            spec=spec,
            dataset=dataset,
            measurements=measurements,
            objective=objective,
            archive=archive,
            generations=rows,
            best_index=int(np.argmin(objective)),
            store_stats=self.store.stats,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # Candidate proposal (the strategy layer)
    # ------------------------------------------------------------------ #
    def _propose(
        self,
        generation: int,
        rng: np.random.Generator,
        seen: set[Cell | MacroSpec],
        records: list[ModelRecord],
        population: deque,
        selection: np.ndarray | None,
        dataset: NASBenchDataset | None,
        measurements,
    ) -> list[Cell | MacroSpec]:
        """The next generation's unique candidates (length = generation size)."""
        spec = self.spec
        if generation == 0 or spec.strategy == "random":
            return self._random_batch(rng, seen, spec.population_size)
        assert selection is not None and dataset is not None

        if spec.strategy == "evolution":
            batch: list[Cell | MacroSpec] = []
            batch_set: set[Cell | MacroSpec] = set()
            for _ in range(spec.population_size):
                parent = self._tournament(rng, population, selection, records)
                child = self._unique_child(parent, rng, seen, batch_set)
                batch.append(child)
                batch_set.add(child)
            return batch

        # Predictor-guided: mutate a large pool, pre-screen with the learned
        # model trained on everything measured so far, simulate the top slice.
        pool: list[Cell] = []
        pool_set: set[Cell] = set()
        for _ in range(spec.pool_factor * spec.population_size):
            parent = self._tournament(rng, population, selection, records)
            child = self._unique_child(parent, rng, seen, pool_set)
            pool.append(child)
            pool_set.add(child)
        service = SweepService(
            self.store,
            dataset,
            configs=[spec.config_name],
            settings=spec.predictor_settings,
            # The previous generation's sweep result is still in memory:
            # serve from it instead of re-reading every history shard.
            measurements=measurements,
        )
        with obs.span("search.predict_screen", pool=len(pool)):
            predicted = service.predict(pool, spec.config_name, spec.metric)
        # Accuracy is an oracle lookup (no simulation), so the pre-screen can
        # apply the same feasibility penalty parent selection uses.
        pool_accuracies = np.array([self._accuracy_of(cell) for cell in pool])
        scores = selection_scores(predicted, pool_accuracies, spec.min_accuracy)
        order = np.argsort(scores, kind="stable")[: spec.population_size]
        return [pool[int(index)] for index in order]

    def _tournament(
        self,
        rng: np.random.Generator,
        population: deque,
        selection: np.ndarray,
        records: list[ModelRecord],
    ) -> Cell | MacroSpec:
        """Best-of-k parent selection over the current (aged) population."""
        alive = list(population)
        size = min(self.spec.tournament_size, len(alive))
        picks = rng.choice(len(alive), size=size, replace=False)
        best = min(
            (alive[int(index)] for index in picks),
            key=lambda model_index: (selection[model_index], model_index),
        )
        return records[best].architecture

    def _unique_child(
        self,
        parent: Cell | MacroSpec,
        rng: np.random.Generator,
        seen: set[Cell | MacroSpec],
        batch_set: set[Cell | MacroSpec],
    ) -> Cell | MacroSpec:
        """One never-seen mutant of *parent* (random fallback keeps batches full)."""
        spec = self.spec
        try:
            if isinstance(parent, MacroSpec):
                return mutate_macro_unique(
                    parent,
                    rng,
                    _Union(seen, batch_set),
                    max_vertices=spec.max_vertices,
                    max_edges=spec.max_edges,
                    max_attempts=_MUTATION_ATTEMPTS,
                )
            return mutate_unique(
                parent,
                rng,
                _Union(seen, batch_set),
                max_vertices=spec.max_vertices,
                max_edges=spec.max_edges,
                max_attempts=_MUTATION_ATTEMPTS,
            )
        except DatasetError:
            # The parent's neighborhood is exhausted (tiny cells, long runs):
            # inject fresh diversity instead of stalling the generation.
            obs.count("search.random_fallbacks")
            return self._random_unique(rng, seen, batch_set)

    def _random_batch(
        self, rng: np.random.Generator, seen: set[Cell | MacroSpec], count: int
    ) -> list[Cell | MacroSpec]:
        batch: list[Cell | MacroSpec] = []
        batch_set: set[Cell | MacroSpec] = set()
        for _ in range(count):
            cell = self._random_unique(rng, seen, batch_set)
            batch.append(cell)
            batch_set.add(cell)
        return batch

    def _random_unique(
        self,
        rng: np.random.Generator,
        seen: set[Cell | MacroSpec],
        batch_set: set[Cell | MacroSpec],
    ) -> Cell | MacroSpec:
        spec = self.spec
        for _ in range(_RANDOM_ATTEMPTS):
            arch: Cell | MacroSpec
            if spec.arch_space == "macro":
                arch = random_macro(
                    rng,
                    max_vertices=spec.max_vertices,
                    max_edges=spec.max_edges,
                    stem_channels=self.network_config.stem_channels,
                    image_size=self.network_config.image_size,
                    image_channels=self.network_config.image_channels,
                    num_classes=self.network_config.num_classes,
                )
            else:
                arch = random_cell(rng, spec.max_vertices, spec.max_edges)
            if arch not in seen and arch not in batch_set:
                return arch
        raise SearchError(
            f"could not draw an unseen random architecture in {_RANDOM_ATTEMPTS} "
            "attempts; the searched sub-space appears exhausted"
        )

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def _accuracy_of(self, cell: Cell) -> float:
        """Oracle accuracy of *cell*, expanded with the engine's network config.

        Used for both history records and pool pre-screening, so feasibility
        decisions always agree with the recorded accuracies.
        """
        return oracle_accuracy(cell, self.network_config, self.accuracy_model)

    def _record(self, arch: Cell | MacroSpec, index: int) -> ModelRecord:
        """Build one history record incrementally.

        Matches ``NASBenchDataset.from_cells`` for cells and ``from_macros``
        for macro specs, so engine histories and bulk-built datasets agree.
        """
        if isinstance(arch, MacroSpec):
            representative = arch.representative_cell
            metrics = compute_metrics(representative, prune=False)
            network = arch.build_network()
            accuracy = self.accuracy_model.mean_validation_accuracy(
                representative,
                fingerprint=arch.fingerprint,
                metrics=metrics,
                trainable_parameters=network.trainable_parameters,
            )
            return ModelRecord(
                index=index,
                cell=representative,
                fingerprint=arch.fingerprint,
                metrics=metrics,
                trainable_parameters=network.trainable_parameters,
                mean_validation_accuracy=accuracy,
                macro=arch,
            )
        metrics = compute_metrics(arch, prune=False)
        network = build_network(arch, self.network_config)
        accuracy = self.accuracy_model.mean_validation_accuracy(
            arch,
            fingerprint=arch.fingerprint,
            metrics=metrics,
            trainable_parameters=network.trainable_parameters,
        )
        return ModelRecord(
            index=index,
            cell=arch,
            fingerprint=arch.fingerprint,
            metrics=metrics,
            trainable_parameters=network.trainable_parameters,
            mean_validation_accuracy=accuracy,
        )

    def _make_archive(self, first_costs: np.ndarray) -> ParetoArchive:
        """Fix the hypervolume reference at the first generation's worst cost.

        Deterministic (generation 0 depends only on the seed), so a resumed
        search tracks the identical reference and hypervolume trajectory.
        """
        finite = first_costs[np.isfinite(first_costs)]
        ref_cost = float(finite.max()) if finite.size else 1.0
        return ParetoArchive(ref_cost=ref_cost, ref_accuracy=0.0)
