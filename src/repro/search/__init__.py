"""Hardware-aware architecture search over the NASBench cell space.

The repo's first *optimizing* subsystem: where :mod:`repro.simulator` and
:mod:`repro.service` measure populations, :mod:`repro.search` explores the
space — three strategies (random baseline, regularized evolution,
predictor-guided pre-screening) behind one :class:`SearchEngine`, evaluated
generation-by-generation through the resumable measurement store and tracked
by a :class:`~repro.analysis.ParetoArchive` with per-generation hypervolume.
See DESIGN.md §7.
"""

from .engine import SearchEngine
from .result import GenerationStats, SearchResult
from .spec import ARCH_SPACES, STRATEGIES, SearchSpec

__all__ = [
    "ARCH_SPACES",
    "STRATEGIES",
    "GenerationStats",
    "SearchEngine",
    "SearchResult",
    "SearchSpec",
]
