"""Declarative specification of one architecture search.

A :class:`SearchSpec` pins down everything that determines a search run —
strategy, objective, budget shape, mutation limits, seed and predictor
hyperparameters — so that a run is exactly reproducible from its spec, a
killed run resumed over the same :class:`~repro.service.MeasurementStore`
regenerates identical generations, and the pipeline can key cached search
artifacts by a stable digest of the spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.predictor import SUPPORTED_METRICS, LearnedPerformanceModel, TrainingSettings
from ..errors import SearchError
from ..nasbench.ops import MAX_EDGES, MAX_VERTICES

#: The supported search strategies, in canonical order.
STRATEGIES: tuple[str, ...] = ("random", "evolution", "predictor")

#: The supported architecture spaces: the legacy fixed-backbone cell space
#: and the staged macro space (per-stage cells, depths and widths).
ARCH_SPACES: tuple[str, ...] = ("cell", "macro")


@dataclass(frozen=True)
class SearchSpec:
    """One hardware-aware architecture search over the NASBench cell space.

    The search minimizes *metric* on *config_name* subject to the paper's
    accuracy filter (models below *min_accuracy* are treated as infeasible
    and can never be the search winner), over a simulation budget of
    ``population_size * generations`` models — identical for every strategy,
    which is what makes the strategies comparable at fixed cost.

    Parameters
    ----------
    strategy:
        ``"random"`` evaluates fresh unique samples every generation
        (the baseline); ``"evolution"`` is regularized evolution
        (tournament select → mutate → age out the oldest); ``"predictor"``
        scores a ``pool_factor``-times larger mutant pool with
        :meth:`repro.service.SweepService.predict` and simulates only the
        most promising ``population_size`` candidates.
    population_size:
        Models simulated per generation; also the size of the evolutionary
        population and of the aging window.
    tournament_size:
        Candidates drawn per tournament when selecting a mutation parent.
    pool_factor:
        Predictor strategy only: mutant-pool size as a multiple of
        *population_size* (the simulated "top fraction" is its inverse).
    arch_space:
        ``"cell"`` searches cells expanded through the shared backbone;
        ``"macro"`` searches staged :class:`~repro.nasbench.macro.MacroSpec`
        architectures (per-stage cells, depth and width schedules).  The
        predictor strategy is cell-only: its features are cell-structural.
    predictor_settings:
        Hyperparameters of the learned model the predictor strategy refits
        each generation on all measurements so far (fewer epochs than the
        pipeline default: the model is retrained often on small populations).
    """

    strategy: str = "evolution"
    config_name: str = "V1"
    metric: str = "latency"
    min_accuracy: float = 0.70
    population_size: int = 24
    generations: int = 8
    tournament_size: int = 4
    pool_factor: int = 4
    seed: int = 0
    max_vertices: int = MAX_VERTICES
    max_edges: int = MAX_EDGES
    predictor_settings: TrainingSettings = field(default_factory=lambda: TrainingSettings(epochs=8))
    enable_parameter_caching: bool = True
    arch_space: str = "cell"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise SearchError(
                f"unknown search strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if self.arch_space not in ARCH_SPACES:
            raise SearchError(
                f"unknown architecture space {self.arch_space!r}; "
                f"expected one of {ARCH_SPACES}"
            )
        if self.arch_space == "macro" and self.strategy == "predictor":
            raise SearchError(
                "the predictor strategy only supports the cell space "
                "(its features are cell-structural)"
            )
        if self.metric not in SUPPORTED_METRICS:
            raise SearchError(
                f"unknown metric {self.metric!r}; expected one of {SUPPORTED_METRICS}"
            )
        if self.population_size < 2:
            raise SearchError("population_size must be at least 2")
        if self.generations < 1:
            raise SearchError("a search needs at least one generation")
        if self.tournament_size < 1:
            raise SearchError("tournament_size must be at least 1")
        if self.pool_factor < 2:
            raise SearchError(
                "pool_factor must be at least 2 (the predictor must have "
                "more candidates than it simulates)"
            )
        if (
            self.strategy == "predictor"
            and self.population_size < LearnedPerformanceModel.MIN_FIT_SAMPLES
        ):
            raise SearchError(
                "the predictor strategy needs population_size >= "
                f"{LearnedPerformanceModel.MIN_FIT_SAMPLES} so the first "
                "generation can train the learned model"
            )
        if not 3 <= self.max_vertices <= MAX_VERTICES:
            raise SearchError(f"max_vertices must be in [3, {MAX_VERTICES}]")
        if not 1 <= self.max_edges <= MAX_EDGES:
            raise SearchError(f"max_edges must be in [1, {MAX_EDGES}]")

    @property
    def simulation_budget(self) -> int:
        """Total models simulated by the search (identical across strategies)."""
        return self.population_size * self.generations
