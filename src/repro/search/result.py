"""Result types of one architecture search run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.archive import ParetoArchive
from ..errors import SearchError
from ..nasbench.cell import Cell
from ..nasbench.dataset import ModelRecord, NASBenchDataset
from ..service.store import StoreStats
from ..simulator.runner import MeasurementSet
from .spec import SearchSpec


@dataclass(frozen=True)
class GenerationStats:
    """Progress snapshot taken after one generation's evaluation.

    ``evaluated``, ``feasible``, ``generation_best`` and ``admitted`` describe
    this generation's candidates only; ``best_objective`` and ``hypervolume``
    are cumulative (best-so-far, frontier-so-far).
    """

    generation: int
    evaluated: int
    feasible: int
    generation_best: float
    best_objective: float
    hypervolume: float
    admitted: int


@dataclass
class SearchResult:
    """Everything one :meth:`SearchEngine.run` call produced.

    ``objective`` is the scalarized cost per evaluated model (the raw metric
    for feasible models, ``inf`` for models below the accuracy floor or
    without a measurement); it is aligned with ``dataset`` and
    ``measurements`` exactly like every other array in the repo.
    """

    spec: SearchSpec
    dataset: NASBenchDataset
    measurements: MeasurementSet
    objective: np.ndarray
    archive: ParetoArchive
    generations: list[GenerationStats] = field(default_factory=list)
    best_index: int = -1
    store_stats: StoreStats = field(default_factory=StoreStats)
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Winner accessors
    # ------------------------------------------------------------------ #
    @property
    def best_record(self) -> ModelRecord:
        """The dataset record of the best feasible model found."""
        if self.best_index < 0 or not np.isfinite(self.objective[self.best_index]):
            raise SearchError(
                "the search found no feasible model (every candidate fell "
                "below the accuracy floor)"
            )
        return self.dataset[self.best_index]

    @property
    def best_cell(self) -> Cell:
        """The best feasible cell found."""
        return self.best_record.cell

    @property
    def best_objective(self) -> float:
        """Objective value of the winner (``inf`` if nothing was feasible)."""
        if self.best_index < 0:
            return float("inf")
        return float(self.objective[self.best_index])

    @property
    def best_accuracy(self) -> float:
        """Mean validation accuracy of the winner."""
        return self.best_record.mean_validation_accuracy

    @property
    def num_evaluated(self) -> int:
        """Unique models simulated by the search."""
        return len(self.dataset)

    def summary_lines(self) -> list[str]:
        """Human-readable per-generation progress table."""
        unit = "ms" if self.spec.metric == "latency" else "mJ"
        lines = [
            f"search {self.spec.strategy!r} on {self.spec.config_name} "
            f"({self.spec.metric}, accuracy >= {self.spec.min_accuracy:.2f}): "
            f"{self.num_evaluated} models over {len(self.generations)} generations, "
            f"best {self.best_objective:.4f} {unit}, "
            f"front {len(self.archive)} points, {self.elapsed_seconds:.2f}s",
            f"{'gen':>4}{'evaluated':>11}{'feasible':>10}"
            f"{'gen best':>12}{'best so far':>13}{'hypervolume':>13}{'admitted':>10}",
        ]
        for row in self.generations:
            lines.append(
                f"{row.generation:>4}{row.evaluated:>11}{row.feasible:>10}"
                f"{row.generation_best:>12.4f}{row.best_objective:>13.4f}"
                f"{row.hypervolume:>13.5f}{row.admitted:>10}"
            )
        return lines
