"""CLI: summarize one trace or merge a fleet of per-worker traces.

Usage::

    python -m repro.obs <trace.jsonl | trace-dir>... [--json] [--output PATH]

Each argument is a JSONL trace file or a directory of them (one file per
worker process in a distributed drain).  All records merge into one fleet
summary: span tree with count/total/mean/p95/self-time, fleet-summed
counters, merged histograms with p50/p95/p99, and event counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .summary import _resolve_files, trace_summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize repro trace files (merging many into one fleet view).",
    )
    parser.add_argument("sources", nargs="+", help="trace .jsonl files and/or directories")
    parser.add_argument("--json", action="store_true", help="emit the summary as JSON")
    parser.add_argument("--output", type=Path, default=None, help="also write the summary here")
    args = parser.parse_args(argv)

    files = [path for path in _resolve_files(args.sources) if path.exists()]
    if not files:
        print("no trace files found", file=sys.stderr)
        return 2
    summary = trace_summary(files)
    text = (
        json.dumps(summary.to_dict(), indent=2, sort_keys=True)
        if args.json
        else "\n".join(summary.lines())
    )
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
