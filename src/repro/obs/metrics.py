"""Counters, gauges and fixed-bucket latency histograms."""

from __future__ import annotations

import threading
from bisect import bisect_left

# Geometric-ish millisecond buckets spanning sub-millisecond kernel chunks
# up to minute-long distributed drains; the final bucket is an implicit
# +inf overflow.  Fixed buckets keep merge trivial: histograms from
# different workers add bucket-wise.
DEFAULT_BUCKETS_MS = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    30_000.0,
    60_000.0,
)


class Histogram:
    """Fixed-bucket histogram with interpolated percentile estimates."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by interpolating
        linearly inside the bucket holding the target rank."""
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lower = self.buckets[index - 1] if index > 0 else 0.0
            upper = self.buckets[index] if index < len(self.buckets) else self.maximum
            lower = max(lower, self.minimum) if cumulative == 0 else lower
            upper = max(upper, lower)
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.maximum  # pragma: no cover - rank always lands in a bucket

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        histogram = cls(tuple(payload["buckets"]))
        histogram.counts = [int(c) for c in payload["counts"]]
        histogram.count = int(payload["count"])
        histogram.total = float(payload["total"])
        histogram.minimum = (
            float(payload["min"]) if payload.get("min") is not None else float("inf")
        )
        histogram.maximum = (
            float(payload["max"]) if payload.get("max") is not None else float("-inf")
        )
        return histogram

    def summary(self) -> dict:
        """Headline view: count/mean and interpolated p50/p95/p99."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.maximum,
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        self._buckets = buckets
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(self._buckets)
            histogram.observe(value)

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Plain-dict copy of the registry state (for JSONL snapshots)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.to_dict() for name, histogram in self._histograms.items()
                },
            }
