"""Hierarchical span tracer with a free-when-off no-op default."""

from __future__ import annotations

import atexit
import contextlib
import functools
import os
import threading
import time
from pathlib import Path

from .metrics import DEFAULT_BUCKETS_MS, MetricsRegistry
from .sink import DEFAULT_MAX_BYTES, JsonlSink

TRACE_ENV = "REPRO_TRACE"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
DEFAULT_TRACE_DIR = "repro-trace"
_FALSEY = {"", "0", "false", "off", "no"}
_TRUTHY = {"1", "true", "on", "yes"}


class _NoopSpan:
    """Shared do-nothing span; ``set()`` accepts attributes and drops them."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


class NoopTracer:
    """Default tracer: every operation is a constant-time no-op.

    Instrumented call sites pay one attribute lookup and one cheap method
    call, so hot paths run within noise of uninstrumented code (the bound
    is enforced by ``benchmarks/bench_obs_overhead.py``).
    """

    enabled = False
    _NOOP_SPAN = _NoopSpan()

    def span(self, name: str, **attrs) -> _NoopSpan:
        return self._NOOP_SPAN

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, level: str = "info", message: str | None = None, **attrs) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def span_aggregates(self) -> dict:
        return {}


NOOP_TRACER = NoopTracer()


class _Span:
    """Live span handle: context manager measuring wall + process CPU time."""

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "child_wall",
        "_wall0",
        "_cpu0",
        "_ts",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.depth = 0
        self.child_wall = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._ts = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. row counts)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self._ts = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self, wall, cpu)
        return False


class Tracer:
    """Recording tracer: hierarchical spans, metrics and events → JSONL.

    Span records carry wall-clock and process-CPU duration, the explicit
    parent/depth chain (thread-local stacks, so threads nest independently)
    and a precomputed ``self_ms`` — wall time minus the wall time of direct
    children — which makes the summary tree robust even when traces are
    truncated mid-run.  ``process_time`` is process-wide, so concurrent
    threads inflate each other's ``cpu_ms``; wall time is the quantity the
    summary tree reasons about.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
    ) -> None:
        self.directory = Path(directory)
        self._stream = os.urandom(4).hex()
        self._sink = JsonlSink(self.directory, max_bytes=max_bytes, stream=self._stream)
        self.metrics = MetricsRegistry(buckets)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._seq = 0
        self._aggregates: dict[str, dict] = {}
        self.event_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Active trace file for this process."""
        return self._sink.path

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def event(self, name: str, level: str = "info", message: str | None = None, **attrs) -> None:
        with self._lock:
            self.event_counts[name] = self.event_counts.get(name, 0) + 1
        record = {
            "t": "event",
            "name": name,
            "level": level,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        if message is not None:
            record["message"] = message
        if attrs:
            record["attrs"] = attrs
        self._sink.write(record)

    def flush(self) -> None:
        """Write a metrics snapshot line and flush the sink.

        Snapshots are cumulative; the merge keeps only the highest-``seq``
        snapshot per stream, so flushing often (e.g. once per completed
        pair in a worker) bounds how much telemetry a ``SIGKILL`` loses.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
        snapshot = self.metrics.snapshot()
        record = {
            "t": "metrics",
            "seq": seq,
            "ts": time.time(),
            "pid": os.getpid(),
            "stream": self._stream,
            "events": dict(self.event_counts),
        }
        record.update(snapshot)
        self._sink.write(record)

    def close(self) -> None:
        self.flush()
        self._sink.close()

    def span_aggregates(self) -> dict:
        """Per-span in-process totals: name → count/total_ms/self_ms."""
        with self._lock:
            return {
                name: {
                    "count": agg["count"],
                    "total_ms": round(agg["total_ms"], 3),
                    "self_ms": round(agg["self_ms"], 3),
                }
                for name, agg in self._aggregates.items()
            }

    # ------------------------------------------------------------------ #
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: _Span) -> None:
        stack = self._stack()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = len(stack)
        stack.append(span)

    def _pop(self, span: _Span, wall: float, cpu: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].child_wall += wall
        wall_ms = wall * 1e3
        self_ms = max(wall - span.child_wall, 0.0) * 1e3
        record = {
            "t": "span",
            "name": span.name,
            "ts": span._ts,
            "wall_ms": round(wall_ms, 6),
            "cpu_ms": round(cpu * 1e3, 6),
            "self_ms": round(self_ms, 6),
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        with self._lock:
            agg = self._aggregates.get(span.name)
            if agg is None:
                agg = self._aggregates[span.name] = {
                    "count": 0,
                    "total_ms": 0.0,
                    "self_ms": 0.0,
                }
            agg["count"] += 1
            agg["total_ms"] += wall_ms
            agg["self_ms"] += self_ms
        self._sink.write(record)


# ---------------------------------------------------------------------- #
# Active-tracer management.
# ---------------------------------------------------------------------- #
_active: NoopTracer | Tracer | None = None
_active_lock = threading.Lock()


def _close_active_at_exit() -> None:
    # Environment-resolved tracers have no scoped owner (unlike ``capture``),
    # so the final metrics snapshot of a plain ``REPRO_TRACE=1 python ...``
    # run is written here; closing is idempotent and the no-op tracer ignores
    # it.  The pid guard keeps forked children from flushing the parent's
    # registry through an inherited exit hook.
    tracer = _active
    if tracer is not None and tracer.enabled and os.getpid() == _resolved_pid:
        tracer.close()


_resolved_pid = os.getpid()
atexit.register(_close_active_at_exit)


def _from_environment() -> NoopTracer | Tracer:
    raw = os.environ.get(TRACE_ENV, "").strip()
    if raw.lower() in _FALSEY:
        return NOOP_TRACER
    if raw.lower() in _TRUTHY:
        directory = os.environ.get(TRACE_DIR_ENV, DEFAULT_TRACE_DIR)
    else:
        directory = raw
    return Tracer(directory)


def active_tracer() -> NoopTracer | Tracer:
    """The process-wide tracer, resolved lazily from ``REPRO_TRACE``."""
    global _active
    tracer = _active
    if tracer is None:
        with _active_lock:
            if _active is None:
                _active = _from_environment()
            tracer = _active
    return tracer


def configure_tracing(target: bool | str | Path | None = None) -> NoopTracer | Tracer:
    """Explicitly (re)configure tracing, overriding the environment.

    ``None``/``False`` installs the no-op tracer; ``True`` resolves the
    directory from the environment (defaulting to ``repro-trace/``); a
    path installs a recording tracer writing there.  Any previously active
    recording tracer is flushed and closed.
    """
    global _active
    with _active_lock:
        previous = _active
        if previous is not None and previous.enabled:
            previous.close()
        if target is None or target is False:
            _active = NOOP_TRACER
        elif target is True:
            _active = Tracer(os.environ.get(TRACE_DIR_ENV, DEFAULT_TRACE_DIR))
        else:
            _active = Tracer(target)
        return _active


@contextlib.contextmanager
def capture(directory: str | Path, **kwargs):
    """Record into ``directory`` for the duration of a block (test helper).

    Restores the previously active tracer on exit; the recording tracer is
    flushed and closed so the trace files are complete when the block ends.
    """
    global _active
    with _active_lock:
        previous = _active
        tracer = Tracer(directory, **kwargs)
        _active = tracer
    try:
        yield tracer
    finally:
        with _active_lock:
            tracer.close()
            _active = previous


def traced(name: str | None = None, **attrs):
    """Decorator tracing every call of the wrapped function as one span."""

    def decorate(fn):
        label = name or f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with active_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
