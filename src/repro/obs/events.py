"""Structured diagnostic events: the one API for warnings and CLI output.

``log`` replaces the scattered ``warnings.warn``/``print`` diagnostics
across the stack: every call records a structured JSONL event when tracing
is enabled, and the call site chooses — independently — whether the message
also surfaces as a Python warning (``warn=True``, optionally deduplicated
once per ``once`` key) or on stdout (``echo=True``, for CLI entry points
whose output is part of their contract).
"""

from __future__ import annotations

import threading
import warnings

from .tracer import active_tracer

_once_lock = threading.Lock()
_warned_once: set[str] = set()


def log(
    event: str,
    message: str | None = None,
    *,
    level: str = "info",
    warn: bool = False,
    once: str | None = None,
    echo: bool = False,
    stacklevel: int = 3,
    **attrs,
) -> None:
    """Record one structured event; optionally also warn and/or print.

    The JSONL event is recorded on every call (when tracing is enabled),
    even when the warning half is deduplicated — so a trace shows each
    occurrence while the console shows each problem once.
    """
    active_tracer().event(event, level=level, message=message, **attrs)
    if echo and message is not None:
        print(message)
    if warn and message is not None:
        if once is not None:
            with _once_lock:
                if once in _warned_once:
                    return
                _warned_once.add(once)
        warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)


def reset_once(key: str | None = None) -> None:
    """Clear the warn-once latch (all keys, or just ``key``) — test helper."""
    with _once_lock:
        if key is None:
            _warned_once.clear()
        else:
            _warned_once.discard(key)


def guarded_progress(callback, *, origin: str = "sweep"):
    """Wrap a user progress callback so its exceptions cannot abort a sweep.

    A raising callback used to propagate out of ``BatchSimulator.evaluate``
    / ``MeasurementStore.extend`` mid-shard, stranding claimed work.  The
    wrapper catches everything, emits a ``progress_callback.error`` obs
    event (plus one Python warning per callback), and lets the sweep
    continue.  ``None`` passes through so call sites keep their
    ``if callback is not None`` fast path.
    """
    if callback is None:
        return None
    if getattr(callback, "__repro_obs_guarded__", False):
        return callback

    def guarded(*args, **kwargs):
        try:
            callback(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - progress is best-effort by design
            log(
                "progress_callback.error",
                f"progress callback {callback!r} raised {exc!r}; {origin} continues",
                level="error",
                warn=True,
                once=f"progress-callback-{id(callback)}",
                origin=origin,
                error=repr(exc),
            )
            active_tracer().count("obs.progress_callback_errors")

    guarded.__repro_obs_guarded__ = True
    return guarded
