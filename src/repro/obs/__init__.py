"""Structured tracing, metrics and fleet-wide telemetry (``repro.obs``).

Every other subsystem is instrumented against this package: hierarchical
spans around the sweep/search/pipeline hot paths, counters that mirror the
bookkeeping the subsystems already do (store pair hits/misses, worker lease
accounting, search dedup pressure), and structured diagnostic events that
replace scattered ``warnings.warn``/``print`` calls.  The design contract:

* **Off by default, ~free when off.**  The active tracer is a process-wide
  singleton resolved lazily from the ``REPRO_TRACE`` environment variable;
  when unset the :data:`NOOP_TRACER` serves every call — a handful of cheap
  no-op method calls per *shard* (never per layer), so the instrumented hot
  paths run within noise of the uninstrumented code (gated by
  ``benchmarks/bench_obs_overhead.py``).
* **One JSONL stream per process.**  An enabled tracer appends
  newline-delimited JSON records (spans, events, metric snapshots) to
  ``trace-<host>-<pid>.jsonl`` in the trace directory, one atomic
  line-sized write each, with size-based rotation.  Fork-spawned workers
  (process pools, ``python -m repro.service.worker`` fleets) each get their
  own file, so a distributed drain leaves one trace per worker.
* **Merge closes the loop.**  :func:`trace_summary` aggregates one or many
  trace files into a per-span count/total/mean/p95/self-time tree plus
  fleet-summed counters; ``python -m repro.obs <trace.jsonl | dir>...``
  prints (or ``--json``-dumps) the same summary from the command line.

See DESIGN.md §12 for the event schema, the span taxonomy and the merge
semantics.
"""

from __future__ import annotations

from .events import guarded_progress, log, reset_once
from .metrics import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry
from .sink import JsonlSink
from .summary import SpanStats, TraceSummary, read_trace, trace_summary
from .tracer import (
    NOOP_TRACER,
    TRACE_DIR_ENV,
    TRACE_ENV,
    Tracer,
    active_tracer,
    capture,
    configure_tracing,
    traced,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NOOP_TRACER",
    "SpanStats",
    "TRACE_DIR_ENV",
    "TRACE_ENV",
    "TraceSummary",
    "Tracer",
    "active_tracer",
    "capture",
    "configure_tracing",
    "count",
    "enabled",
    "flush",
    "gauge",
    "guarded_progress",
    "log",
    "observe",
    "read_trace",
    "reset_once",
    "span",
    "span_breakdown",
    "trace_summary",
    "traced",
]


# ---------------------------------------------------------------------- #
# Module-level conveniences over the active tracer (the call sites the
# instrumented subsystems use; all of them no-op when tracing is off).
# ---------------------------------------------------------------------- #
def span(name: str, **attrs):
    """Context manager timing one named span on the active tracer."""
    return active_tracer().span(name, **attrs)


def count(name: str, value: int = 1) -> None:
    """Increment a fleet-summable counter on the active tracer."""
    active_tracer().count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a point-in-time gauge on the active tracer."""
    active_tracer().gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one latency observation into a fixed-bucket histogram."""
    active_tracer().observe(name, value)


def flush() -> None:
    """Flush the active tracer (metrics snapshot + sink flush)."""
    active_tracer().flush()


def enabled() -> bool:
    """Whether the active tracer records anything."""
    return active_tracer().enabled


def span_breakdown() -> dict:
    """In-process per-span aggregates (``{}`` when tracing is off).

    The shape benchmarks embed into ``BENCH_*.json``: span name →
    ``{"count", "total_ms", "self_ms"}``, totals rounded to microseconds.
    """
    return active_tracer().span_aggregates()
