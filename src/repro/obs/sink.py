"""Append-only JSONL sink with size-based rotation and fork safety."""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

DEFAULT_MAX_BYTES = 64 * 1024 * 1024
SCHEMA_VERSION = 1


def _hostname() -> str:
    try:
        return socket.gethostname().split(".", 1)[0] or "unknown"
    except OSError:  # pragma: no cover - hostname lookup never fails in CI
        return "unknown"


class JsonlSink:
    """One newline-delimited JSON stream per process.

    Records are serialized to a single line and written with one
    ``write()`` call followed by a flush, so concurrent writers (threads
    here, sibling processes on their own files) never interleave partial
    lines and a ``SIGKILL`` loses at most the line in flight.  The active
    file is ``<prefix>-<host>-<pid>.jsonl``; when it would exceed
    ``max_bytes`` it is rotated aside to ``<prefix>-<host>-<pid>.<k>.jsonl``
    and a fresh file is opened.  A pid change (``fork`` into a process-pool
    worker) is detected on the next write and re-opens the stream under the
    child's pid, so every process in a fleet owns exactly one stream.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        prefix: str = "trace",
        max_bytes: int = DEFAULT_MAX_BYTES,
        stream: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.prefix = prefix
        self.max_bytes = int(max_bytes)
        self.host = _hostname()
        self._stream = stream or os.urandom(4).hex()
        self._lock = threading.Lock()
        self._handle = None
        self._pid = -1
        self._size = 0

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Path of the active trace file for this process."""
        return self.directory / f"{self.prefix}-{self.host}-{os.getpid()}.jsonl"

    def write(self, record: dict) -> None:
        """Append ``record`` as one flushed JSONL line (thread-safe)."""
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._handle is None or os.getpid() != self._pid:
                self._open_locked()
            elif self._size + len(data) > self.max_bytes and self._size > 0:
                self._rotate_locked()
            self._handle.write(data)
            self._handle.flush()
            self._size += len(data)

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._pid = -1
                self._size = 0

    # ------------------------------------------------------------------ #
    def _open_locked(self) -> None:
        if self._handle is not None:
            self._handle.close()
        self._pid = os.getpid()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path
        self._handle = open(path, "ab")
        self._size = path.stat().st_size
        if self._size == 0:
            self._write_meta_locked()

    def _rotate_locked(self) -> None:
        self._handle.close()
        self._handle = None
        active = self.path
        k = 1
        while (rotated := active.with_suffix(f".{k}.jsonl")).exists():
            k += 1
        active.rename(rotated)
        self._open_locked()

    def _write_meta_locked(self) -> None:
        meta = {
            "t": "meta",
            "version": SCHEMA_VERSION,
            "host": self.host,
            "pid": self._pid,
            "stream": self._stream,
            "ts": time.time(),
        }
        data = (json.dumps(meta, separators=(",", ":")) + "\n").encode("utf-8")
        self._handle.write(data)
        self._handle.flush()
        self._size += len(data)
