"""Aggregate one or many JSONL traces into a fleet-wide summary."""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import Histogram


def _quantile(samples: list[float], q: float) -> float:
    """Linear-interpolation quantile (matches numpy's default method)."""
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    return ordered[low] + (position - low) * (ordered[high] - ordered[low])


@dataclass
class SpanStats:
    """Fleet-aggregated statistics for one span name."""

    name: str
    count: int = 0
    total_ms: float = 0.0
    cpu_ms: float = 0.0
    self_ms: float = 0.0
    samples: list[float] = field(default_factory=list, repr=False)
    parents: Counter = field(default_factory=Counter, repr=False)

    _MAX_SAMPLES = 100_000

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else math.nan

    @property
    def p95_ms(self) -> float:
        return _quantile(self.samples, 0.95)

    @property
    def parent(self) -> str | None:
        """Dominant parent span name (``None`` for root spans)."""
        if not self.parents:
            return None
        return self.parents.most_common(1)[0][0]

    def add(self, wall_ms: float, cpu_ms: float, self_ms: float, parent: str | None) -> None:
        self.count += 1
        self.total_ms += wall_ms
        self.cpu_ms += cpu_ms
        self.self_ms += self_ms
        if len(self.samples) < self._MAX_SAMPLES:
            self.samples.append(wall_ms)
        self.parents[parent] += 1

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "self_ms": round(self.self_ms, 3),
            "parent": self.parent,
        }


@dataclass
class TraceSummary:
    """Merged view over one or many per-process trace streams.

    Merge semantics (DESIGN.md §12): span and event lines are append-only
    facts and simply aggregate; metrics snapshots are cumulative per
    stream, so only the highest-``seq`` snapshot of each stream
    contributes — counters then sum across streams, gauges keep the most
    recent write, and fixed-bucket histograms add bucket-wise.
    """

    files: int = 0
    streams: int = 0
    spans: dict[str, SpanStats] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    events_by_level: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "streams": self.streams,
            "spans": {name: stats.to_dict() for name, stats in self._ordered_spans()},
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histograms[name].summary() for name in sorted(self.histograms)
            },
            "events": dict(sorted(self.events.items())),
            "events_by_level": dict(sorted(self.events_by_level.items())),
        }

    def lines(self) -> list[str]:
        """Human-readable rendering: span tree, counters, histograms, events."""
        out = [f"trace summary: {self.files} file(s), {self.streams} stream(s)"]
        if self.spans:
            out.append("spans (count / total / mean / p95 / self):")
            children: dict[str | None, list[str]] = {}
            for name, stats in self._ordered_spans():
                parent = stats.parent if stats.parent in self.spans else None
                children.setdefault(parent, []).append(name)
            rendered: set[str] = set()

            def render(name: str, depth: int) -> None:
                if name in rendered:
                    return
                rendered.add(name)
                stats = self.spans[name]
                out.append(
                    f"  {'  ' * depth}{name:<{max(40 - 2 * depth, 8)}} "
                    f"{stats.count:>6}  {stats.total_ms:>10.1f}ms  "
                    f"mean {stats.mean_ms:>8.2f}ms  p95 {stats.p95_ms:>8.2f}ms  "
                    f"self {stats.self_ms:>10.1f}ms"
                )
                for child in children.get(name, []):
                    render(child, depth + 1)

            for root in children.get(None, []):
                render(root, 0)
            for name, _ in self._ordered_spans():  # orphans (cycles, truncation)
                render(name, 0)
        if self.counters:
            out.append("counters:")
            for name, value in sorted(self.counters.items()):
                shown = int(value) if float(value).is_integer() else value
                out.append(f"  {name:<44} {shown}")
        if self.gauges:
            out.append("gauges:")
            for name, value in sorted(self.gauges.items()):
                out.append(f"  {name:<44} {value:g}")
        if self.histograms:
            out.append("histograms (ms):")
            for name in sorted(self.histograms):
                s = self.histograms[name].summary()
                if s["count"]:
                    out.append(
                        f"  {name:<44} count={s['count']} mean={s['mean']:.2f} "
                        f"p50={s['p50']:.2f} p95={s['p95']:.2f} p99={s['p99']:.2f}"
                    )
        if self.events:
            out.append("events:")
            for name, value in sorted(self.events.items()):
                out.append(f"  {name:<44} {value}")
        return out

    def _ordered_spans(self):
        return sorted(self.spans.items(), key=lambda item: -item[1].total_ms)


# ---------------------------------------------------------------------- #
def _resolve_files(sources) -> list[Path]:
    if isinstance(sources, (str, Path)):
        sources = [sources]
    files: list[Path] = []
    for source in sources:
        path = Path(source)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    return files


def read_trace(sources) -> list[dict]:
    """Parse trace records from files/directories, tolerating a truncated
    final line (the one a ``SIGKILL`` may have cut mid-write)."""
    records: list[dict] = []
    for path in _resolve_files(sources):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    record["_file"] = str(path)
                    records.append(record)
    return records


def trace_summary(sources) -> TraceSummary:
    """Summarize trace files, directories, or pre-parsed record iterables.

    Accepts a path, a list of paths/directories, or an iterable of record
    dicts (as from :func:`read_trace`); many per-worker traces merge into
    one fleet view.
    """
    if isinstance(sources, (str, Path)):
        records = read_trace([sources])
    elif sources and all(isinstance(item, dict) for item in sources):
        records = list(sources)
    else:
        records = read_trace(sources)

    summary = TraceSummary()
    summary.files = len({record.get("_file") for record in records if "_file" in record})

    # Pass 1: per-process span-id → name maps (rotated files of the same
    # process share pid + ids, so group by (host-of-file, pid)).
    file_host: dict[str, str] = {}
    for record in records:
        if record.get("t") == "meta":
            file_host[record.get("_file", "")] = record.get("host", "unknown")
    id_names: dict[tuple, str] = {}
    for record in records:
        if record.get("t") == "span":
            host = file_host.get(record.get("_file", ""), "unknown")
            id_names[(host, record.get("pid"), record.get("id"))] = record["name"]

    latest_metrics: dict[str, dict] = {}
    for record in records:
        kind = record.get("t")
        if kind == "span":
            host = file_host.get(record.get("_file", ""), "unknown")
            parent = id_names.get((host, record.get("pid"), record.get("parent")))
            stats = summary.spans.get(record["name"])
            if stats is None:
                stats = summary.spans[record["name"]] = SpanStats(record["name"])
            stats.add(
                record.get("wall_ms", 0.0),
                record.get("cpu_ms", 0.0),
                record.get("self_ms", 0.0),
                parent,
            )
        elif kind == "event":
            name = record.get("name", "?")
            summary.events[name] = summary.events.get(name, 0) + 1
            level = record.get("level", "info")
            summary.events_by_level[level] = summary.events_by_level.get(level, 0) + 1
        elif kind == "metrics":
            stream = record.get("stream") or f"pid-{record.get('pid')}"
            best = latest_metrics.get(stream)
            if best is None or record.get("seq", 0) >= best.get("seq", 0):
                latest_metrics[stream] = record

    summary.streams = len(latest_metrics) or len(
        {record.get("stream") for record in records if record.get("t") == "meta"}
    )
    gauge_ts: dict[str, float] = {}
    for record in latest_metrics.values():
        for name, value in (record.get("counters") or {}).items():
            summary.counters[name] = summary.counters.get(name, 0) + value
        ts = record.get("ts", 0.0)
        for name, value in (record.get("gauges") or {}).items():
            if ts >= gauge_ts.get(name, -math.inf):
                summary.gauges[name] = value
                gauge_ts[name] = ts
        for name, payload in (record.get("histograms") or {}).items():
            histogram = Histogram.from_dict(payload)
            existing = summary.histograms.get(name)
            if existing is None:
                summary.histograms[name] = histogram
            else:
                existing.merge(histogram)
    return summary
