"""Population summaries of latency and energy (paper Tables 3 and 4, Figure 6).

Table 3 reports, per accelerator class and over the models with at least 70%
mean validation accuracy, the minimum / maximum / average inference latency
and energy, annotating the extremes with the accuracy of the model that
attains them.  Table 4 reports the latency and energy of the single
highest-accuracy model.  Figure 6 is the latency-vs-energy scatter for V1 and
V2 over the same filtered population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..simulator.runner import MeasurementSet


@dataclass(frozen=True)
class ExtremeValue:
    """A min or max metric value plus the accuracy of the model attaining it."""

    value: float
    accuracy: float
    model_index: int


@dataclass(frozen=True)
class ConfigSummary:
    """One column of Table 3: latency/energy summary for one configuration."""

    config_name: str
    num_models: int
    min_latency: ExtremeValue
    max_latency: ExtremeValue
    avg_latency_ms: float
    min_energy: ExtremeValue | None
    max_energy: ExtremeValue | None
    avg_energy_mj: float | None

    @property
    def energy_available(self) -> bool:
        """Whether the energy model was available for this configuration."""
        return self.avg_energy_mj is not None


def summarize_configuration(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> ConfigSummary:
    """Build the Table 3 column for *config_name*."""
    mask = measurements.accuracy_mask(min_accuracy)
    if not mask.any():
        raise DatasetError("no models pass the accuracy filter")
    indices = np.nonzero(mask)[0]
    accuracies = measurements.dataset.accuracies()[mask]
    latencies = measurements.latencies(config_name)[mask]
    energies = measurements.energies(config_name)[mask]

    def extreme(values: np.ndarray, argfn) -> ExtremeValue:
        position = int(argfn(values))
        return ExtremeValue(
            value=float(values[position]),
            accuracy=float(accuracies[position]),
            model_index=int(indices[position]),
        )

    has_energy = bool(np.isfinite(energies).any())
    return ConfigSummary(
        config_name=config_name,
        num_models=int(mask.sum()),
        min_latency=extreme(latencies, np.argmin),
        max_latency=extreme(latencies, np.argmax),
        avg_latency_ms=float(latencies.mean()),
        min_energy=extreme(energies, np.nanargmin) if has_energy else None,
        max_energy=extreme(energies, np.nanargmax) if has_energy else None,
        avg_energy_mj=float(np.nanmean(energies)) if has_energy else None,
    )


def summarize_all(
    measurements: MeasurementSet, min_accuracy: float = 0.70
) -> dict[str, ConfigSummary]:
    """Table 3: one :class:`ConfigSummary` per measured configuration."""
    return {
        name: summarize_configuration(measurements, name, min_accuracy)
        for name in measurements.config_names
    }


@dataclass(frozen=True)
class BestModelReport:
    """Table 4: latency and energy of the highest-accuracy model."""

    model_index: int
    accuracy: float
    trainable_parameters: int
    latency_ms: dict[str, float]
    energy_mj: dict[str, float | None]


def best_model_report(measurements: MeasurementSet) -> BestModelReport:
    """Build Table 4 from the measurement set (argmax accuracy model)."""
    accuracies = measurements.dataset.accuracies()
    best_index = int(np.argmax(accuracies))
    record = measurements.dataset[best_index]
    latency = {
        name: float(measurements.latencies(name)[best_index])
        for name in measurements.config_names
    }
    energy: dict[str, float | None] = {}
    for name in measurements.config_names:
        value = float(measurements.energies(name)[best_index])
        energy[name] = None if np.isnan(value) else value
    return BestModelReport(
        model_index=best_index,
        accuracy=float(accuracies[best_index]),
        trainable_parameters=record.trainable_parameters,
        latency_ms=latency,
        energy_mj=energy,
    )


@dataclass(frozen=True)
class LatencyEnergyPoint:
    """One point of the Figure 6 scatter."""

    latency_ms: float
    energy_mj: float


def latency_energy_scatter(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> list[LatencyEnergyPoint]:
    """Figure 6 series: (latency, energy) pairs for one configuration."""
    mask = measurements.accuracy_mask(min_accuracy)
    latencies = measurements.latencies(config_name)[mask]
    energies = measurements.energies(config_name)[mask]
    return [
        LatencyEnergyPoint(float(lat), float(en))
        for lat, en in zip(latencies, energies)
        if np.isfinite(en)
    ]


def energy_latency_linear_fit(points: list[LatencyEnergyPoint]) -> tuple[float, float]:
    """Least-squares slope/intercept of energy vs latency (Figure 6's linearity)."""
    if len(points) < 2:
        raise DatasetError("need at least two points to fit a line")
    latencies = np.array([point.latency_ms for point in points])
    energies = np.array([point.energy_mj for point in points])
    slope, intercept = np.polyfit(latencies, energies, 1)
    return float(slope), float(intercept)
