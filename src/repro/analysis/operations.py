"""Operation-count and model-size analyses (paper Figures 12, 13 and 14).

* Figure 12: for each operation type (3x3 convolution, 1x1 convolution, 3x3
  max-pooling), the scatter of operation count vs measured latency, annotated
  with the models attaining the maximum and minimum accuracy in each
  operation-count category.
* Figure 13: among the cells with a given number of 3x3 convolutions, the
  cells with the lowest and highest latency (shallow-and-wide vs deep chains).
* Figure 14: trainable parameters vs latency per configuration, plus the
  crossover analysis (which configuration is fastest in which size band).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..nasbench.dataset import ModelRecord
from ..simulator.runner import MeasurementSet

#: CellMetrics attribute per operation category of Figure 12.
OPERATION_ATTRIBUTES = {
    "conv3x3": "num_conv3x3",
    "conv1x1": "num_conv1x1",
    "maxpool3x3": "num_maxpool3x3",
}


@dataclass(frozen=True)
class OperationCountGroup:
    """One horizontal band of a Figure 12 scatter: a fixed operation count."""

    operation: str
    count: int
    num_models: int
    avg_latency_ms: float
    min_latency_ms: float
    max_latency_ms: float
    max_accuracy: float
    min_accuracy: float


@dataclass(frozen=True)
class AccuracyAnnotation:
    """A Figure 12 star marker: extreme accuracy and its operation count."""

    accuracy: float
    operation_count: int
    model_index: int


def operation_count_vs_latency(
    measurements: MeasurementSet,
    config_name: str,
    operation: str,
) -> list[OperationCountGroup]:
    """Figure 12 rows for one operation type and one configuration."""
    attribute = _attribute_for(operation)
    latencies = measurements.latencies(config_name)
    accuracies = measurements.dataset.accuracies()

    groups: dict[int, list[int]] = {}
    for record in measurements.dataset:
        groups.setdefault(int(getattr(record.metrics, attribute)), []).append(record.index)

    results = []
    for count, indices in sorted(groups.items()):
        idx = np.array(indices, dtype=int)
        results.append(
            OperationCountGroup(
                operation=operation,
                count=count,
                num_models=int(idx.size),
                avg_latency_ms=float(latencies[idx].mean()),
                min_latency_ms=float(latencies[idx].min()),
                max_latency_ms=float(latencies[idx].max()),
                max_accuracy=float(accuracies[idx].max()),
                min_accuracy=float(accuracies[idx].min()),
            )
        )
    return results


def accuracy_annotations(
    measurements: MeasurementSet, operation: str
) -> tuple[AccuracyAnnotation, AccuracyAnnotation]:
    """Figure 12 star markers: (max accuracy, min accuracy) for one operation type."""
    attribute = _attribute_for(operation)
    accuracies = measurements.dataset.accuracies()
    best = int(np.argmax(accuracies))
    worst = int(np.argmin(accuracies))
    return (
        AccuracyAnnotation(
            accuracy=float(accuracies[best]),
            operation_count=int(getattr(measurements.dataset[best].metrics, attribute)),
            model_index=best,
        ),
        AccuracyAnnotation(
            accuracy=float(accuracies[worst]),
            operation_count=int(getattr(measurements.dataset[worst].metrics, attribute)),
            model_index=worst,
        ),
    )


@dataclass(frozen=True)
class LatencyExtremeCell:
    """Figure 13: one of the latency extremes among same-op-count cells."""

    record: ModelRecord
    latency_ms: float
    depth: int


def latency_extremes_for_conv_count(
    measurements: MeasurementSet,
    config_name: str,
    num_conv3x3: int = 5,
) -> tuple[LatencyExtremeCell, LatencyExtremeCell]:
    """Figure 13: lowest- and highest-latency cells with *num_conv3x3* 3x3 convs."""
    candidates = [
        record
        for record in measurements.dataset
        if record.metrics.num_conv3x3 == num_conv3x3
    ]
    if len(candidates) < 2:
        raise DatasetError(f"need at least two models with {num_conv3x3} conv3x3 operations")
    latencies = measurements.latencies(config_name)

    def to_extreme(record: ModelRecord) -> LatencyExtremeCell:
        return LatencyExtremeCell(
            record=record,
            latency_ms=float(latencies[record.index]),
            depth=record.metrics.depth,
        )

    ordered = sorted(candidates, key=lambda record: latencies[record.index])
    return to_extreme(ordered[0]), to_extreme(ordered[-1])


@dataclass(frozen=True)
class SizeBand:
    """Figure 14 crossover analysis: fastest configuration in a size band."""

    lower_parameters: float
    upper_parameters: float
    num_models: int
    avg_latency_ms: dict[str, float]
    fastest_config: str


def parameters_vs_latency(
    measurements: MeasurementSet, config_name: str
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 14 series: (trainable parameters, latency) arrays for one config."""
    return (
        measurements.dataset.parameter_counts().astype(float),
        measurements.latencies(config_name).copy(),
    )


def latency_parameter_correlation(
    measurements: MeasurementSet, config_name: str
) -> float:
    """Pearson correlation between trainable parameters and latency (Figure 14)."""
    parameters, latencies = parameters_vs_latency(measurements, config_name)
    return float(np.corrcoef(parameters, latencies)[0, 1])


def crossover_analysis(
    measurements: MeasurementSet,
    band_edges: tuple[float, ...] = (0.0, 2e6, 5e6, 10e6, 20e6, 30e6, 1e9),
) -> list[SizeBand]:
    """Figure 14 crossover: fastest configuration per parameter-size band."""
    parameters = measurements.dataset.parameter_counts().astype(float)
    bands = []
    for lower, upper in zip(band_edges[:-1], band_edges[1:]):
        mask = (parameters >= lower) & (parameters < upper)
        if not mask.any():
            continue
        avg_latency = {
            name: float(measurements.latencies(name)[mask].mean())
            for name in measurements.config_names
        }
        fastest = min(avg_latency, key=avg_latency.get)
        bands.append(
            SizeBand(
                lower_parameters=lower,
                upper_parameters=upper,
                num_models=int(mask.sum()),
                avg_latency_ms=avg_latency,
                fastest_config=fastest,
            )
        )
    return bands


def _attribute_for(operation: str) -> str:
    try:
        return OPERATION_ATTRIBUTES[operation]
    except KeyError as exc:
        raise DatasetError(
            f"unknown operation {operation!r}; expected one of {sorted(OPERATION_ATTRIBUTES)}"
        ) from exc
