"""Accuracy-latency trade-off analyses (paper Figures 5, 7, 8 and 9).

Figure 5 is the accuracy-vs-latency scatter of the whole (filtered)
population per accelerator class; Figures 7/8 look at the two most accurate
cells individually; Figure 9 ranks the top-five most accurate models and
reports which accelerator class serves each with the lowest latency.

The entry points are array-first: :func:`accuracy_latency_arrays` and
:func:`pareto_front_mask` operate directly on the aligned arrays of a
:class:`~repro.simulator.runner.MeasurementSet` (the shape the experiment
pipeline produces), and the point-list functions the figure benchmarks
consume are thin wrappers that materialize those arrays into dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..nasbench.dataset import ModelRecord
from ..simulator.runner import MeasurementSet


@dataclass(frozen=True)
class AccuracyLatencyPoint:
    """One point of the Figure 5 scatter."""

    latency_ms: float
    accuracy: float
    model_index: int


def accuracy_latency_arrays(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aligned ``(latencies, accuracies, model_indices)`` arrays of Figure 5.

    Applies the paper's accuracy filter and returns plain arrays, so
    pipeline/measurement output feeds the analysis without per-model loops.
    """
    mask = measurements.accuracy_mask(min_accuracy)
    indices = np.nonzero(mask)[0]
    return (
        measurements.latencies(config_name)[indices],
        measurements.dataset.accuracies()[indices],
        indices,
    )


def pareto_front_mask(latencies: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated (latency ↓, accuracy ↑) points.

    Vectorized: points are ranked by latency ascending, then accuracy
    descending (stable, so exact duplicates keep input order), and a point
    survives iff its accuracy strictly exceeds the running maximum of every
    earlier-ranked point.  Latency ties are therefore resolved correctly:
    among equal-latency points only the most accurate survives (the earlier
    one in input order on exact duplicates), since the cheaper-or-equal
    better point dominates the rest.
    """
    latencies = np.asarray(latencies, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    if latencies.shape != accuracies.shape or latencies.ndim != 1:
        raise DatasetError("latencies and accuracies must be 1-D arrays of equal length")
    if latencies.size == 0:
        return np.zeros(0, dtype=bool)
    # lexsort is stable and keys right-to-left: latency is primary.
    order = np.lexsort((-accuracies, latencies))
    ordered_accuracy = accuracies[order]
    best_before = np.concatenate([[-np.inf], np.maximum.accumulate(ordered_accuracy)[:-1]])
    mask = np.zeros(latencies.size, dtype=bool)
    mask[order[ordered_accuracy > best_before]] = True
    return mask


def pareto_front_indices(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> np.ndarray:
    """Dataset indices of the frontier models, sorted by ascending latency.

    The array form of :func:`latency_accuracy_frontier`, used by the sweep
    service to answer Pareto queries without materializing point objects.
    """
    latencies, accuracies, indices = accuracy_latency_arrays(
        measurements, config_name, min_accuracy
    )
    mask = pareto_front_mask(latencies, accuracies)
    order = np.argsort(latencies[mask], kind="stable")
    return indices[mask][order]


def accuracy_latency_scatter(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> list[AccuracyLatencyPoint]:
    """Figure 5 series for one configuration (models above the accuracy filter)."""
    latencies, accuracies, indices = accuracy_latency_arrays(
        measurements, config_name, min_accuracy
    )
    return [
        AccuracyLatencyPoint(float(latency), float(accuracy), int(index))
        for latency, accuracy, index in zip(latencies, accuracies, indices)
    ]


@dataclass(frozen=True)
class TopModelEntry:
    """Figure 9 entry: one of the top-k accuracy models with its latencies."""

    rank: int
    record: ModelRecord
    accuracy: float
    latency_ms: dict[str, float]
    fastest_config: str
    speedup_over_best_model: dict[str, float]


def top_models_by_accuracy(
    measurements: MeasurementSet, k: int = 5
) -> list[TopModelEntry]:
    """Figure 9: the top-*k* accuracy models, annotated with per-config latency.

    The ``speedup_over_best_model`` field expresses, per configuration, how
    much faster the entry runs than the rank-1 (highest accuracy) model on the
    same configuration — the Figure 8 "1.78x" style numbers.
    """
    if k < 1:
        raise DatasetError("k must be at least 1")
    ranked = measurements.dataset.top_k_by_accuracy(k)
    best = ranked[0]
    entries = []
    for rank, record in enumerate(ranked, start=1):
        latency = {
            name: float(measurements.latencies(name)[record.index])
            for name in measurements.config_names
        }
        best_latency = {
            name: float(measurements.latencies(name)[best.index])
            for name in measurements.config_names
        }
        entries.append(
            TopModelEntry(
                rank=rank,
                record=record,
                accuracy=record.mean_validation_accuracy,
                latency_ms=latency,
                fastest_config=min(latency, key=latency.get),
                speedup_over_best_model={
                    name: best_latency[name] / latency[name] for name in latency
                },
            )
        )
    return entries


def latency_accuracy_frontier(
    measurements: MeasurementSet, config_name: str, min_accuracy: float = 0.70
) -> list[AccuracyLatencyPoint]:
    """Pareto frontier (non-dominated points) of the Figure 5 scatter."""
    latencies, accuracies, indices = accuracy_latency_arrays(
        measurements, config_name, min_accuracy
    )
    mask = pareto_front_mask(latencies, accuracies)
    front_latencies = latencies[mask]
    front_accuracies = accuracies[mask]
    front_indices = indices[mask]
    order = np.argsort(front_latencies, kind="stable")
    return [
        AccuracyLatencyPoint(
            float(front_latencies[position]),
            float(front_accuracies[position]),
            int(front_indices[position]),
        )
        for position in order
    ]
