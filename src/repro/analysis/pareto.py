"""Accuracy-latency trade-off analyses (paper Figures 5, 7, 8 and 9).

Figure 5 is the accuracy-vs-latency scatter of the whole (filtered)
population per accelerator class; Figures 7/8 look at the two most accurate
cells individually; Figure 9 ranks the top-five most accurate models and
reports which accelerator class serves each with the lowest latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..nasbench.dataset import ModelRecord
from ..simulator.runner import MeasurementSet


@dataclass(frozen=True)
class AccuracyLatencyPoint:
    """One point of the Figure 5 scatter."""

    latency_ms: float
    accuracy: float
    model_index: int


def accuracy_latency_scatter(
    measurements: MeasurementSet,
    config_name: str,
    min_accuracy: float = 0.70,
) -> list[AccuracyLatencyPoint]:
    """Figure 5 series for one configuration (models above the accuracy filter)."""
    mask = measurements.accuracy_mask(min_accuracy)
    accuracies = measurements.dataset.accuracies()
    latencies = measurements.latencies(config_name)
    return [
        AccuracyLatencyPoint(float(latencies[i]), float(accuracies[i]), int(i))
        for i in np.nonzero(mask)[0]
    ]


@dataclass(frozen=True)
class TopModelEntry:
    """Figure 9 entry: one of the top-k accuracy models with its latencies."""

    rank: int
    record: ModelRecord
    accuracy: float
    latency_ms: dict[str, float]
    fastest_config: str
    speedup_over_best_model: dict[str, float]


def top_models_by_accuracy(
    measurements: MeasurementSet, k: int = 5
) -> list[TopModelEntry]:
    """Figure 9: the top-*k* accuracy models, annotated with per-config latency.

    The ``speedup_over_best_model`` field expresses, per configuration, how
    much faster the entry runs than the rank-1 (highest accuracy) model on the
    same configuration — the Figure 8 "1.78x" style numbers.
    """
    if k < 1:
        raise DatasetError("k must be at least 1")
    ranked = measurements.dataset.top_k_by_accuracy(k)
    best = ranked[0]
    entries = []
    for rank, record in enumerate(ranked, start=1):
        latency = {
            name: float(measurements.latencies(name)[record.index])
            for name in measurements.config_names
        }
        best_latency = {
            name: float(measurements.latencies(name)[best.index])
            for name in measurements.config_names
        }
        entries.append(
            TopModelEntry(
                rank=rank,
                record=record,
                accuracy=record.mean_validation_accuracy,
                latency_ms=latency,
                fastest_config=min(latency, key=latency.get),
                speedup_over_best_model={
                    name: best_latency[name] / latency[name] for name in latency
                },
            )
        )
    return entries


def latency_accuracy_frontier(
    measurements: MeasurementSet, config_name: str, min_accuracy: float = 0.70
) -> list[AccuracyLatencyPoint]:
    """Pareto frontier (non-dominated points) of the Figure 5 scatter."""
    points = accuracy_latency_scatter(measurements, config_name, min_accuracy)
    ordered = sorted(points, key=lambda point: point.latency_ms)
    frontier: list[AccuracyLatencyPoint] = []
    best_accuracy = -np.inf
    for point in ordered:
        if point.accuracy > best_accuracy:
            frontier.append(point)
            best_accuracy = point.accuracy
    return frontier
