"""Operation-swap impact analysis (paper Figure 15).

The paper measures how replacing one cell operation type with another changes
inference latency: for every NASBench cell, each operation of type A is
replaced by type B (keeping the adjacency matrix), the resulting model is
evaluated, and the latency differences are averaged into a 3x3 matrix per
accelerator class (absolute change in ms and percentage change).

The original methodology looks the swapped cell up in the NASBench dataset
(skipping swaps whose result does not exist there); since this reproduction
owns the performance simulator, the swapped cell is simulated directly, which
evaluates every swap instead of a subset.  Swaps that do not change the cell
(the operation does not occur) are skipped, as in the paper.

By default every baseline and swapped network of the population is flattened
into **one** vectorized :class:`~repro.simulator.batch.BatchSimulator` sweep
(up to seven networks per model) instead of thousands of scalar
``simulate()`` calls; ``strategy="scalar"`` keeps the original per-model walk
as the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..arch.config import AcceleratorConfig
from ..errors import SimulationError
from ..nasbench.cell import Cell
from ..nasbench.dataset import ModelRecord
from ..nasbench.network import NetworkConfig, build_network
from ..nasbench.ops import CONV1X1, CONV3X3, INTERIOR_OPS, MAXPOOL3X3
from ..simulator.batch import BatchSimulator
from ..simulator.engine import PerformanceSimulator

#: Display order of the Figure 15 rows/columns.
SWAP_OPERATIONS: tuple[str, ...] = (CONV3X3, CONV1X1, MAXPOOL3X3)


def swap_operations(cell: Cell, from_op: str, to_op: str) -> Cell | None:
    """Return *cell* with every *from_op* vertex relabelled to *to_op*.

    Returns ``None`` when the cell does not contain *from_op* (the swap would
    be a no-op) or when the swap is the identity.
    """
    if from_op == to_op:
        return None
    if from_op not in INTERIOR_OPS or to_op not in INTERIOR_OPS:
        raise ValueError(f"swap operations must be interior ops, got {from_op!r} -> {to_op!r}")
    if cell.op_count(from_op) == 0:
        return None
    new_ops = [to_op if op == from_op else op for op in cell.ops]
    return Cell(cell.numpy_matrix(), new_ops)


@dataclass(frozen=True)
class SwapImpact:
    """Aggregate latency impact of one (from_op -> to_op) replacement."""

    from_op: str
    to_op: str
    num_swaps: int
    avg_change_ms: float
    avg_change_percent: float


@dataclass(frozen=True)
class SwapMatrix:
    """Figure 15 for one accelerator configuration."""

    config_name: str
    impacts: dict[tuple[str, str], SwapImpact]

    def change_ms(self, from_op: str, to_op: str) -> float:
        """Average absolute latency change of one swap (0 for the diagonal)."""
        if from_op == to_op:
            return 0.0
        return self.impacts[(from_op, to_op)].avg_change_ms

    def change_percent(self, from_op: str, to_op: str) -> float:
        """Average percentage latency change of one swap (0 for the diagonal)."""
        if from_op == to_op:
            return 0.0
        return self.impacts[(from_op, to_op)].avg_change_percent


def operation_swap_matrix(
    records: Sequence[ModelRecord],
    config: AcceleratorConfig,
    network_config: NetworkConfig | None = None,
    max_models: int | None = None,
    seed: int = 0,
    strategy: str = "vectorized",
) -> SwapMatrix:
    """Compute the Figure 15 matrix for one configuration.

    Parameters
    ----------
    records:
        The model population to average over.
    config:
        Target accelerator configuration.
    max_models:
        Optional cap on how many models are swapped (a deterministic random
        subset is used); the full population is used when ``None``.
    strategy:
        ``"vectorized"`` (default) sweeps every baseline and swapped network
        in one :class:`BatchSimulator` pass; ``"scalar"`` walks them one
        ``simulate()`` call at a time (reference path for equivalence tests).
    """
    if max_models is not None and len(records) > max_models:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(records), size=max_models, replace=False)
        records = [records[int(i)] for i in chosen]

    if strategy == "vectorized":
        return _swap_matrix_vectorized(records, config, network_config)
    if strategy != "scalar":
        raise SimulationError(
            f"unknown swap strategy {strategy!r}; expected 'vectorized' or 'scalar'"
        )

    simulator = PerformanceSimulator(config)
    baseline_cache: dict[int, float] = {}
    changes: dict[tuple[str, str], list[tuple[float, float]]] = {
        (a, b): [] for a in SWAP_OPERATIONS for b in SWAP_OPERATIONS if a != b
    }

    for position, record in enumerate(records):
        baseline = baseline_cache.get(position)
        if baseline is None:
            baseline = simulator.simulate(
                build_network(record.cell, network_config)
            ).latency_ms
            baseline_cache[position] = baseline
        for from_op in SWAP_OPERATIONS:
            for to_op in SWAP_OPERATIONS:
                if from_op == to_op:
                    continue
                swapped = swap_operations(record.cell, from_op, to_op)
                if swapped is None:
                    continue
                swapped_latency = simulator.simulate(
                    build_network(swapped, network_config)
                ).latency_ms
                delta = swapped_latency - baseline
                percent = 100.0 * delta / baseline
                changes[(from_op, to_op)].append((delta, percent))

    impacts = {}
    for key, values in changes.items():
        if values:
            deltas = np.array([v[0] for v in values])
            percents = np.array([v[1] for v in values])
            impacts[key] = SwapImpact(
                from_op=key[0],
                to_op=key[1],
                num_swaps=len(values),
                avg_change_ms=float(deltas.mean()),
                avg_change_percent=float(percents.mean()),
            )
        else:
            impacts[key] = SwapImpact(key[0], key[1], 0, 0.0, 0.0)
    return SwapMatrix(config_name=config.name, impacts=impacts)


def _swap_matrix_vectorized(
    records: Sequence[ModelRecord],
    config: AcceleratorConfig,
    network_config: NetworkConfig | None,
) -> SwapMatrix:
    """One-sweep Figure 15: all baselines and swaps in a single LayerTable.

    Each model contributes its baseline network plus one network per
    applicable swap; the whole collection is flattened once and swept by the
    batch engine, and the per-pair deltas are computed as array arithmetic
    over index vectors into the resulting latency array.
    """
    pairs = [(a, b) for a in SWAP_OPERATIONS for b in SWAP_OPERATIONS if a != b]
    networks = []
    pair_indices: dict[tuple[str, str], list[tuple[int, int]]] = {pair: [] for pair in pairs}
    for record in records:
        baseline_index = len(networks)
        networks.append(build_network(record.cell, network_config))
        for pair in pairs:
            swapped = swap_operations(record.cell, *pair)
            if swapped is None:
                continue
            pair_indices[pair].append((baseline_index, len(networks)))
            networks.append(build_network(swapped, network_config))

    latencies = None
    if networks:
        latencies, _ = BatchSimulator().evaluate_networks(networks, config)

    impacts = {}
    for pair in pairs:
        if not pair_indices[pair]:
            impacts[pair] = SwapImpact(pair[0], pair[1], 0, 0.0, 0.0)
            continue
        index_pairs = np.asarray(pair_indices[pair], dtype=np.int64)
        baselines = latencies[index_pairs[:, 0]]
        swapped_latencies = latencies[index_pairs[:, 1]]
        deltas = swapped_latencies - baselines
        percents = 100.0 * deltas / baselines
        impacts[pair] = SwapImpact(
            from_op=pair[0],
            to_op=pair[1],
            num_swaps=len(index_pairs),
            avg_change_ms=float(deltas.mean()),
            avg_change_percent=float(percents.mean()),
        )
    return SwapMatrix(config_name=config.name, impacts=impacts)
