"""Graph-structure analyses: depth/width vs accuracy and latency.

Covers Table 7 (average trainable parameters per graph depth), Figure 10
(mean validation accuracy vs graph depth and width) and Figure 11 (latency vs
graph depth and width for every accelerator class).  The box-and-whisker
content of the figures is summarized by per-group distribution statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nasbench.dataset import NASBenchDataset
from ..simulator.runner import MeasurementSet


@dataclass(frozen=True)
class GroupStatistics:
    """Distribution summary of one metric within one structural group."""

    group: int
    count: int
    mean: float
    median: float
    p25: float
    p75: float
    minimum: float
    maximum: float


def _group_statistics(values: np.ndarray, group: int) -> GroupStatistics:
    return GroupStatistics(
        group=group,
        count=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p25=float(np.percentile(values, 25)),
        p75=float(np.percentile(values, 75)),
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def _grouped(dataset: NASBenchDataset, attribute: str) -> dict[int, np.ndarray]:
    """Indices of dataset records grouped by a CellMetrics attribute."""
    groups: dict[int, list[int]] = {}
    for record in dataset:
        key = int(getattr(record.metrics, attribute))
        groups.setdefault(key, []).append(record.index)
    return {key: np.array(indices, dtype=int) for key, indices in sorted(groups.items())}


def accuracy_by_structure(
    dataset: NASBenchDataset, attribute: str = "depth"
) -> list[GroupStatistics]:
    """Figure 10: accuracy distribution per graph depth (or width)."""
    accuracies = dataset.accuracies()
    return [
        _group_statistics(accuracies[indices], group)
        for group, indices in _grouped(dataset, attribute).items()
    ]


def latency_by_structure(
    measurements: MeasurementSet,
    config_name: str,
    attribute: str = "depth",
    min_accuracy: float | None = 0.70,
) -> list[GroupStatistics]:
    """Figure 11: latency distribution per graph depth (or width) for one config."""
    latencies = measurements.latencies(config_name)
    mask = (
        measurements.accuracy_mask(min_accuracy)
        if min_accuracy is not None
        else np.ones(len(latencies), dtype=bool)
    )
    results = []
    for group, indices in _grouped(measurements.dataset, attribute).items():
        kept = indices[mask[indices]]
        if kept.size == 0:
            continue
        results.append(_group_statistics(latencies[kept], group))
    return results


@dataclass(frozen=True)
class DepthParameterRow:
    """Table 7 row: average number of trainable parameters at one graph depth."""

    depth: int
    num_models: int
    avg_trainable_parameters: float


def parameters_by_depth(dataset: NASBenchDataset) -> list[DepthParameterRow]:
    """Table 7: average trainable-parameter count per graph depth."""
    parameters = dataset.parameter_counts().astype(float)
    rows = []
    for depth, indices in _grouped(dataset, "depth").items():
        rows.append(
            DepthParameterRow(
                depth=depth,
                num_models=int(indices.size),
                avg_trainable_parameters=float(parameters[indices].mean()),
            )
        )
    return rows


def optimal_structure(
    dataset: NASBenchDataset, min_group_size: int | None = None
) -> dict[str, int]:
    """Depth and width with the highest median accuracy (paper: depth 3, width 5).

    Groups smaller than *min_group_size* (default: 1% of the population, at
    least 5 models) are ignored so that a handful of outlier graphs cannot
    claim the optimum.
    """
    if min_group_size is None:
        min_group_size = max(5, len(dataset) // 100)
    best: dict[str, int] = {}
    for attribute in ("depth", "width"):
        stats = [s for s in accuracy_by_structure(dataset, attribute) if s.count >= min_group_size]
        if not stats:
            stats = accuracy_by_structure(dataset, attribute)
        best[attribute] = max(stats, key=lambda s: s.median).group
    return best
