"""Per-configuration winner buckets (paper Tables 5 and 6).

The paper splits the NASBench population into three buckets — one per
accelerator class — where bucket X contains every model whose measured
inference latency is lowest on configuration X.  Table 5 reports the bucket
sizes and the average latency/energy of each bucket's models on *all three*
configurations; Table 6 contrasts the model characteristics (operation counts,
graph depth, trainable parameters) of the first and last buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..nasbench.dataset import ModelRecord
from ..simulator.runner import MeasurementSet


@dataclass(frozen=True)
class WinnerBucket:
    """Table 5 row: models won by one configuration."""

    winner: str
    num_models: int
    avg_latency_ms: dict[str, float]
    avg_energy_mj: dict[str, float | None]
    model_indices: tuple[int, ...]


@dataclass(frozen=True)
class BucketCharacteristics:
    """Table 6 column: average structural characteristics of a bucket."""

    winner: str
    num_models: int
    avg_conv3x3: float
    avg_conv1x1: float
    avg_maxpool3x3: float
    avg_graph_depth: float
    avg_graph_width: float
    avg_trainable_parameters: float


def winner_buckets(measurements: MeasurementSet) -> dict[str, WinnerBucket]:
    """Split the population into per-configuration winner buckets (Table 5)."""
    winners = np.array(measurements.best_config_per_model())
    buckets: dict[str, WinnerBucket] = {}
    for config_name in measurements.config_names:
        mask = winners == config_name
        indices = tuple(int(i) for i in np.nonzero(mask)[0])
        avg_latency: dict[str, float] = {}
        avg_energy: dict[str, float | None] = {}
        for other in measurements.config_names:
            if mask.any():
                avg_latency[other] = float(measurements.latencies(other)[mask].mean())
                energies = measurements.energies(other)[mask]
                avg_energy[other] = (
                    float(np.nanmean(energies)) if np.isfinite(energies).any() else None
                )
            else:
                avg_latency[other] = float("nan")
                avg_energy[other] = None
        buckets[config_name] = WinnerBucket(
            winner=config_name,
            num_models=int(mask.sum()),
            avg_latency_ms=avg_latency,
            avg_energy_mj=avg_energy,
            model_indices=indices,
        )
    return buckets


def bucket_records(
    measurements: MeasurementSet, bucket: WinnerBucket
) -> list[ModelRecord]:
    """Return the dataset records belonging to *bucket*."""
    return [measurements.dataset[index] for index in bucket.model_indices]


def bucket_characteristics(
    measurements: MeasurementSet, bucket: WinnerBucket
) -> BucketCharacteristics:
    """Compute the Table 6 characteristics of one winner bucket."""
    records = bucket_records(measurements, bucket)
    if not records:
        raise DatasetError(f"bucket {bucket.winner!r} contains no models")
    return BucketCharacteristics(
        winner=bucket.winner,
        num_models=len(records),
        avg_conv3x3=float(np.mean([r.metrics.num_conv3x3 for r in records])),
        avg_conv1x1=float(np.mean([r.metrics.num_conv1x1 for r in records])),
        avg_maxpool3x3=float(np.mean([r.metrics.num_maxpool3x3 for r in records])),
        avg_graph_depth=float(np.mean([r.metrics.depth for r in records])),
        avg_graph_width=float(np.mean([r.metrics.width for r in records])),
        avg_trainable_parameters=float(np.mean([r.trainable_parameters for r in records])),
    )


def bucket_speedups(bucket: WinnerBucket) -> dict[str, float]:
    """Average speedup of the winning configuration over every configuration.

    For the paper's last bucket (won by V3) this is the "10.4x over V1 and
    1.24x over V2" style statement.
    """
    winner_latency = bucket.avg_latency_ms[bucket.winner]
    if not winner_latency or np.isnan(winner_latency):
        raise DatasetError(f"bucket {bucket.winner!r} has no latency data")
    return {
        name: latency / winner_latency
        for name, latency in bucket.avg_latency_ms.items()
        if not np.isnan(latency)
    }
