"""Persistent Pareto archive with hypervolume tracking.

The search subsystem (:mod:`repro.search`) is multi-objective: it minimizes a
hardware cost (latency in ms, or energy in mJ) while maximizing model
accuracy.  :class:`ParetoArchive` accumulates every non-dominated
(cost ↓, accuracy ↑) point a search discovers, evicting entries as they
become dominated, and tracks the quality of the frontier over time through
the 2-D dominated **hypervolume** with respect to a fixed reference point —
the standard scalar progress measure of multi-objective search (a strictly
better frontier has a strictly larger hypervolume).

Archives persist as a single npz file (cells serialized as JSON), so a
finished search's frontier can be reloaded and queried without re-running
anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from ..nasbench.cell import Cell
from ..nasbench.macro import MacroSpec, architecture_from_dict, architecture_to_dict
from .pareto import pareto_front_mask

#: Bump to invalidate persisted archives when the on-disk format changes.
ARCHIVE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ArchiveEntry:
    """One non-dominated point of the archive.

    ``cell`` holds the archived architecture — a :class:`Cell` or a
    :class:`~repro.nasbench.macro.MacroSpec`; both expose ``fingerprint``
    and ``to_dict``, which is all the archive needs.
    """

    cell: Cell | MacroSpec
    fingerprint: str
    cost: float
    accuracy: float
    generation: int

    def dominates(self, cost: float, accuracy: float) -> bool:
        """Whether this entry is at least as good as ``(cost, accuracy)``.

        Weak dominance: equal points are "dominated" too, so duplicates of an
        archived trade-off are rejected by :meth:`ParetoArchive.update`.
        """
        return self.cost <= cost and self.accuracy >= accuracy


def hypervolume_2d(
    costs: np.ndarray,
    accuracies: np.ndarray,
    ref_cost: float,
    ref_accuracy: float,
) -> float:
    """Dominated hypervolume of a (cost ↓, accuracy ↑) point set.

    The hypervolume is the area jointly dominated by the points and bounded
    by the reference corner ``(ref_cost, ref_accuracy)`` (a point worse than
    the whole set: higher cost, lower accuracy).  Points outside the
    reference box contribute nothing; dominated points are ignored, so the
    function accepts raw point clouds, not just frontiers.
    """
    costs = np.asarray(costs, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    if costs.shape != accuracies.shape or costs.ndim != 1:
        raise DatasetError("costs and accuracies must be 1-D arrays of equal length")
    finite = np.isfinite(costs) & np.isfinite(accuracies)
    if not finite.any():
        return 0.0
    costs, accuracies = costs[finite], accuracies[finite]
    mask = pareto_front_mask(costs, accuracies)
    order = np.argsort(costs[mask], kind="stable")
    front_costs = costs[mask][order]
    front_accuracies = accuracies[mask][order]
    # Along a (cost ↓, accuracy ↑) frontier sorted by ascending cost, the
    # accuracies ascend too; sweep accuracy slabs, each covered by the
    # cheapest point at or above that accuracy.
    previous = np.concatenate(([ref_accuracy], front_accuracies[:-1]))
    heights = np.clip(front_accuracies - np.maximum(previous, ref_accuracy), 0.0, None)
    widths = np.clip(ref_cost - front_costs, 0.0, None)
    return float(np.sum(widths * heights))


class ParetoArchive:
    """Non-dominated (cost ↓, accuracy ↑) archive of search discoveries.

    Parameters
    ----------
    ref_cost, ref_accuracy:
        The fixed reference corner hypervolumes are measured against.  It
        must stay constant over a search for the hypervolume trajectory to be
        monotone, so it is part of the archive's identity and persists with
        it.
    """

    def __init__(self, ref_cost: float, ref_accuracy: float = 0.0):
        if not np.isfinite(ref_cost) or not np.isfinite(ref_accuracy):
            raise DatasetError("the hypervolume reference point must be finite")
        self.ref_cost = float(ref_cost)
        self.ref_accuracy = float(ref_accuracy)
        self._entries: dict[str, ArchiveEntry] = {}
        self.hypervolume_history: list[float] = []

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cell: Cell) -> bool:
        return cell.fingerprint in self._entries

    @property
    def entries(self) -> list[ArchiveEntry]:
        """The frontier, sorted by ascending cost."""
        return sorted(self._entries.values(), key=lambda entry: (entry.cost, -entry.accuracy))

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(
        self,
        cell: Cell,
        cost: float,
        accuracy: float,
        generation: int = 0,
        key: str | None = None,
    ) -> bool:
        """Offer one evaluated point; returns ``True`` if it joins the front.

        A point enters iff no archived entry weakly dominates it; entries it
        dominates are evicted.  Non-finite costs (penalized or unavailable
        measurements) never enter.

        Entries are identified by *key*, defaulting to the cell's isomorphism
        fingerprint.  Searches whose points are not plain cells — the
        hardware co-search archives (cell, configuration) pairs — pass an
        explicit key so the same cell may appear once per configuration.
        """
        cost = float(cost)
        accuracy = float(accuracy)
        if not np.isfinite(cost) or not np.isfinite(accuracy):
            return False
        fingerprint = cell.fingerprint if key is None else str(key)
        if fingerprint in self._entries:
            return False
        if any(entry.dominates(cost, accuracy) for entry in self._entries.values()):
            return False
        self._entries = {
            print_: entry
            for print_, entry in self._entries.items()
            if not (cost <= entry.cost and accuracy >= entry.accuracy)
        }
        self._entries[fingerprint] = ArchiveEntry(
            cell=cell,
            fingerprint=fingerprint,
            cost=cost,
            accuracy=accuracy,
            generation=int(generation),
        )
        return True

    def update_many(
        self,
        cells: list[Cell],
        costs: np.ndarray,
        accuracies: np.ndarray,
        generation: int = 0,
    ) -> int:
        """Offer a batch of evaluated points; returns how many were admitted."""
        if len(cells) != len(costs) or len(cells) != len(accuracies):
            raise DatasetError("cells, costs and accuracies must have equal length")
        return sum(
            self.update(cell, cost, accuracy, generation)
            for cell, cost, accuracy in zip(cells, costs, accuracies)
        )

    # ------------------------------------------------------------------ #
    # Hypervolume tracking
    # ------------------------------------------------------------------ #
    def hypervolume(self) -> float:
        """Dominated hypervolume of the current front w.r.t. the reference."""
        if not self._entries:
            return 0.0
        entries = self.entries
        return hypervolume_2d(
            np.array([entry.cost for entry in entries]),
            np.array([entry.accuracy for entry in entries]),
            self.ref_cost,
            self.ref_accuracy,
        )

    def checkpoint(self) -> float:
        """Record the current hypervolume in the history and return it.

        Called once per search generation; because the archive only ever
        improves and the reference point is fixed, the recorded trajectory is
        non-decreasing.
        """
        value = self.hypervolume()
        self.hypervolume_history.append(value)
        return value

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the archive (entries, reference, history) as one npz file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        entries = self.entries
        np.savez_compressed(
            path,
            version=np.array(ARCHIVE_FORMAT_VERSION),
            reference=np.array([self.ref_cost, self.ref_accuracy]),
            fingerprints=np.array([entry.fingerprint for entry in entries]),
            costs=np.array([entry.cost for entry in entries]),
            accuracies=np.array([entry.accuracy for entry in entries]),
            generations=np.array([entry.generation for entry in entries], dtype=np.int64),
            cells=np.array(
                [json.dumps(architecture_to_dict(entry.cell)) for entry in entries]
            ),
            hypervolume_history=np.array(self.hypervolume_history, dtype=float),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ParetoArchive":
        """Reload a persisted archive; raises :class:`DatasetError` on failure."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"no archive file at {path}")
        try:
            with np.load(path, allow_pickle=False) as stored:
                version = int(stored["version"])
                if version != ARCHIVE_FORMAT_VERSION:
                    raise DatasetError(
                        f"archive at {path} has format version {version}, "
                        f"expected {ARCHIVE_FORMAT_VERSION}"
                    )
                ref_cost, ref_accuracy = np.asarray(stored["reference"], dtype=float)
                archive = cls(ref_cost, ref_accuracy)
                for payload, fingerprint, cost, accuracy, generation in zip(
                    stored["cells"],
                    stored["fingerprints"],
                    stored["costs"],
                    stored["accuracies"],
                    stored["generations"],
                ):
                    cell = architecture_from_dict(json.loads(str(payload)))
                    archive._entries[str(fingerprint)] = ArchiveEntry(
                        cell=cell,
                        fingerprint=str(fingerprint),
                        cost=float(cost),
                        accuracy=float(accuracy),
                        generation=int(generation),
                    )
                archive.hypervolume_history = [
                    float(value) for value in stored["hypervolume_history"]
                ]
                return archive
        except (OSError, ValueError, KeyError) as exc:
            raise DatasetError(f"failed to load archive at {path}: {exc}") from exc
