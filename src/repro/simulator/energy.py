"""Per-layer and whole-model energy accounting.

See :mod:`repro.arch.energy` for the coefficient definitions.  The model adds
up, per layer: useful-MAC switching energy, idle-lane clocking energy (the
penalty a wide accelerator pays on thin layers), on-chip SRAM traffic (weights
staged into core memory plus activations through PE memory), and DRAM traffic;
the whole-model energy adds static power integrated over the latency.
"""

from __future__ import annotations

import numpy as np

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.energy import EnergyParameters
from ..compiler.schedule import CompiledLayer, CompiledTable
from .latency import LayerTiming, TimingTable

_PJ_TO_MJ = 1e-9


def layer_energy_mj(
    layer: CompiledLayer,
    timing: LayerTiming,
    config: AcceleratorConfig,
    params: EnergyParameters,
) -> float:
    """Dynamic energy of one layer in millijoules (no static contribution).

    Per batched inference: MAC, idle-lane and activation-SRAM terms scale
    with ``config.batch_size`` (``timing.compute_cycles`` is already per
    batch), while the weight-SRAM staging traffic is charged once per batch.
    Byte footprints are rescaled by the configured bit-widths.
    """
    batch = config.batch_size
    macs = batch * layer.spec.macs
    mac_energy = params.mac_energy_pj * macs

    idle_energy = 0.0
    if macs > 0:
        issued_slots = timing.compute_cycles * config.macs_per_cycle
        idle_energy = params.idle_lane_energy_pj * max(0, issued_slots - macs)

    sram_bytes = scaled_bytes(layer.spec.weight_bytes, config.weight_bits) + batch * (
        scaled_bytes(
            layer.spec.input_activation_bytes + layer.spec.output_activation_bytes,
            config.activation_bits,
        )
    )
    sram_energy = params.sram_byte_energy_pj * sram_bytes
    dram_energy = params.dram_byte_energy_pj * timing.dram_bytes

    return (mac_energy + idle_energy + sram_energy + dram_energy) * _PJ_TO_MJ


def layer_energy_table(
    compiled: CompiledTable,
    timing: TimingTable,
    params: EnergyParameters,
) -> np.ndarray:
    """Vectorized :func:`layer_energy_mj`: per-layer dynamic energy in mJ."""
    table = compiled.table
    config = compiled.config
    macs = config.batch_size * table.macs
    mac_energy = params.mac_energy_pj * macs

    issued_slots = timing.compute_cycles * config.macs_per_cycle
    idle_energy = np.where(
        macs > 0,
        params.idle_lane_energy_pj * np.maximum(0, issued_slots - macs),
        0.0,
    )

    sram_bytes = scaled_bytes(table.weight_bytes, config.weight_bits) + config.batch_size * (
        scaled_bytes(
            table.input_activation_bytes + table.output_activation_bytes,
            config.activation_bits,
        )
    )
    sram_energy = params.sram_byte_energy_pj * sram_bytes
    dram_energy = params.dram_byte_energy_pj * timing.dram_bytes

    return (mac_energy + idle_energy + sram_energy + dram_energy) * _PJ_TO_MJ


def static_energy_mj(latency_ms: float, params: EnergyParameters) -> float:
    """Static (leakage + always-on clock) energy over the inference, in mJ.

    Works elementwise on an array of latencies as well as on one scalar.
    """
    return params.static_power_w * latency_ms  # W * ms == mJ
