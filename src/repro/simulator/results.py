"""Result records produced by the performance simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerResult:
    """Per-layer timing and energy breakdown."""

    name: str
    kind: str
    compute_cycles: int
    dram_bytes: int
    on_chip_refill_bytes: int
    memory_cycles: float
    total_cycles: float
    energy_mj: float
    utilization: float

    @property
    def is_memory_bound(self) -> bool:
        """``True`` when DRAM/refill traffic, not compute, sets the layer time."""
        return self.memory_cycles > self.compute_cycles


@dataclass(frozen=True)
class SimulationResult:
    """Whole-model simulation outcome on one accelerator configuration."""

    config_name: str
    latency_ms: float
    energy_mj: float | None
    total_cycles: float
    compute_cycles: int
    memory_cycles: float
    dram_bytes: int
    cached_weight_bytes: int
    streamed_weight_bytes: int
    total_weight_bytes: int
    average_utilization: float
    layer_results: tuple[LayerResult, ...] = field(repr=False, default=())

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_ms / 1e3

    @property
    def energy_available(self) -> bool:
        """Whether an energy model was available for the configuration."""
        return self.energy_mj is not None

    @property
    def fully_cached(self) -> bool:
        """``True`` when all weights were resident on-chip (no DRAM weight traffic)."""
        return self.streamed_weight_bytes == 0

    def bound_fraction(self) -> float:
        """Fraction of layer time spent in memory-bound layers (diagnostic)."""
        if not self.layer_results:
            return 0.0
        memory_time = sum(
            layer.total_cycles for layer in self.layer_results if layer.is_memory_bound
        )
        total_time = sum(layer.total_cycles for layer in self.layer_results)
        return memory_time / total_time if total_time else 0.0
