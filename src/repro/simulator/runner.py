"""Batch evaluation of a dataset of models across accelerator configurations.

The paper's headline experiment simulates every NASBench model on all three
Edge TPU classes (Section 6, "Inference latency and energy measurements"):
roughly 1.5 million latency measurements and 900 thousand energy measurements.
:func:`evaluate_dataset` reproduces that sweep over a
:class:`~repro.nasbench.dataset.NASBenchDataset`, and
:class:`MeasurementSet` stores the aligned result arrays that the analysis
and benchmark modules consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..arch.config import STUDIED_CONFIGS, AcceleratorConfig
from ..errors import SimulationError
from ..nasbench.dataset import ModelRecord, NASBenchDataset
from .engine import PerformanceSimulator
from .results import SimulationResult


@dataclass(frozen=True)
class ModelMeasurement:
    """Latency/energy of one model on one accelerator configuration."""

    model_index: int
    fingerprint: str
    config_name: str
    latency_ms: float
    energy_mj: float | None


class MeasurementSet:
    """Aligned latency/energy arrays for a dataset across configurations.

    The arrays returned by :meth:`latencies` and :meth:`energies` are indexed
    exactly like ``dataset.records``, which makes joint filtering (for example
    the paper's 70% accuracy threshold) a matter of boolean masking.
    """

    def __init__(
        self,
        dataset: NASBenchDataset,
        latencies_ms: dict[str, np.ndarray],
        energies_mj: dict[str, np.ndarray],
    ):
        self._dataset = dataset
        self._latencies = {
            name: np.asarray(values, dtype=float) for name, values in latencies_ms.items()
        }
        self._energies = {
            name: np.asarray(values, dtype=float) for name, values in energies_mj.items()
        }
        if set(self._latencies) != set(self._energies):
            raise SimulationError(
                "latency and energy arrays cover different configurations: "
                f"{sorted(set(self._latencies) ^ set(self._energies))} "
                "(configurations without an energy model must pass NaN arrays)"
            )
        for kind, arrays in (("latency", self._latencies), ("energy", self._energies)):
            for name, values in arrays.items():
                if len(values) != len(dataset):
                    raise SimulationError(
                        f"{kind} array for {name} has {len(values)} entries for "
                        f"{len(dataset)} models"
                    )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> NASBenchDataset:
        """The dataset the measurements were taken on."""
        return self._dataset

    @property
    def config_names(self) -> list[str]:
        """Names of the accelerator configurations measured."""
        return list(self._latencies)

    def latencies(self, config_name: str) -> np.ndarray:
        """Latency in ms of every model on *config_name* (dataset order)."""
        return self._latencies[config_name]

    def energies(self, config_name: str) -> np.ndarray:
        """Energy in mJ of every model on *config_name* (NaN when unavailable)."""
        return self._energies[config_name]

    def has_energy(self, config_name: str) -> bool:
        """Whether an energy model was available for *config_name*."""
        return bool(np.isfinite(self._energies[config_name]).any())

    def latency_of(self, record: ModelRecord, config_name: str) -> float:
        """Latency of one dataset record on *config_name*."""
        return float(self._latencies[config_name][record.index])

    def energy_of(self, record: ModelRecord, config_name: str) -> float | None:
        """Energy of one dataset record on *config_name* (None if unavailable)."""
        value = float(self._energies[config_name][record.index])
        return None if np.isnan(value) else value

    # ------------------------------------------------------------------ #
    # Derived groupings
    # ------------------------------------------------------------------ #
    def best_config_per_model(self) -> list[str]:
        """Name of the lowest-latency configuration for every model."""
        names = self.config_names
        stacked = np.vstack([self._latencies[name] for name in names])
        winners = np.argmin(stacked, axis=0)
        return [names[index] for index in winners]

    def accuracy_mask(self, min_accuracy: float = 0.70) -> np.ndarray:
        """Boolean mask of models meeting the accuracy threshold."""
        return self._dataset.accuracies() >= min_accuracy

    def subset(self, mask: np.ndarray) -> "MeasurementSubset":
        """Return a filtered view (used for the >=70% accuracy population)."""
        return MeasurementSubset(self, np.asarray(mask, dtype=bool))


class MeasurementSubset:
    """A boolean-mask view over a :class:`MeasurementSet`."""

    def __init__(self, measurements: MeasurementSet, mask: np.ndarray):
        if mask.shape != (len(measurements.dataset),):
            raise SimulationError("mask shape does not match the dataset")
        self._measurements = measurements
        self._mask = mask

    @property
    def mask(self) -> np.ndarray:
        """The boolean mask defining the subset."""
        return self._mask

    @property
    def size(self) -> int:
        """Number of models in the subset."""
        return int(self._mask.sum())

    def latencies(self, config_name: str) -> np.ndarray:
        """Latencies of the subset on *config_name*."""
        return self._measurements.latencies(config_name)[self._mask]

    def energies(self, config_name: str) -> np.ndarray:
        """Energies of the subset on *config_name*."""
        return self._measurements.energies(config_name)[self._mask]

    def accuracies(self) -> np.ndarray:
        """Accuracies of the subset models."""
        return self._measurements.dataset.accuracies()[self._mask]

    def records(self) -> list[ModelRecord]:
        """Dataset records of the subset."""
        return [
            record
            for record, keep in zip(self._measurements.dataset.records, self._mask)
            if keep
        ]


def evaluate_dataset(
    dataset: NASBenchDataset,
    configs: Iterable[AcceleratorConfig] | None = None,
    enable_parameter_caching: bool = True,
    progress_callback: Callable[[str, int, int], None] | None = None,
    strategy: str = "vectorized",
    n_jobs: int = 1,
    store=None,
) -> MeasurementSet:
    """Simulate every model of *dataset* on every configuration.

    Parameters
    ----------
    dataset:
        The model population.
    configs:
        Accelerator configurations to evaluate (defaults to the paper's V1,
        V2 and V3).
    enable_parameter_caching:
        Forwarded to the simulator; the paper's results have it enabled.
    progress_callback:
        Optional ``callback(config_name, done, total)`` hook for long sweeps.
        The scalar walk ticks every 500 models plus a guaranteed final
        ``(total, total)`` tick; the vectorized engine reports once per
        completed configuration, or per shard when sharded (``n_jobs > 1``
        or a *store*).
    strategy:
        ``"vectorized"`` (default) dispatches to the structure-of-arrays
        :class:`~repro.simulator.batch.BatchSimulator`; ``"scalar"`` walks the
        population one model at a time through the
        :class:`PerformanceSimulator` (escape hatch, used by the equivalence
        tests and throughput benchmarks).
    n_jobs:
        Number of worker processes sharding the vectorized sweep over model
        ranges (ignored by the scalar strategy).
    store:
        Optional :class:`~repro.service.store.MeasurementStore` making the
        vectorized sweep resumable: shards already on disk are loaded and
        only missing (shard, configuration) pairs are simulated (rejected by
        the scalar strategy).
    """
    if strategy == "vectorized":
        from .batch import BatchSimulator  # deferred: batch imports MeasurementSet

        return BatchSimulator(enable_parameter_caching=enable_parameter_caching).evaluate(
            dataset,
            configs=configs,
            n_jobs=n_jobs,
            progress_callback=progress_callback,
            store=store,
        )
    if strategy != "scalar":
        raise SimulationError(
            f"unknown sweep strategy {strategy!r}; expected 'vectorized' or 'scalar'"
        )
    if store is not None:
        raise SimulationError(
            "the scalar sweep strategy does not support a measurement store; "
            "use strategy='vectorized'"
        )

    config_list: Sequence[AcceleratorConfig] = (
        list(configs) if configs is not None else list(STUDIED_CONFIGS.values())
    )
    if not config_list:
        raise SimulationError("no accelerator configurations were provided")

    latencies: dict[str, np.ndarray] = {}
    energies: dict[str, np.ndarray] = {}
    total = len(dataset)

    # Networks are built once and shared across configurations (they do not
    # depend on the accelerator), instead of once per configuration.
    networks = [record.build_network(dataset.network_config) for record in dataset]

    for config in config_list:
        simulator = PerformanceSimulator(config, enable_parameter_caching=enable_parameter_caching)
        latency_array = np.empty(total, dtype=float)
        energy_array = np.full(total, np.nan, dtype=float)
        for index, network in enumerate(networks):
            result = simulator.simulate(network)
            latency_array[index] = result.latency_ms
            if result.energy_mj is not None:
                energy_array[index] = result.energy_mj
            if progress_callback is not None and (index + 1) % 500 == 0:
                progress_callback(config.name, index + 1, total)
        # The 500-model cadence alone would skip the completion tick whenever
        # the population size is not a multiple of 500.
        if progress_callback is not None and total % 500 != 0:
            progress_callback(config.name, total, total)
        latencies[config.name] = latency_array
        energies[config.name] = energy_array

    return MeasurementSet(dataset, latencies, energies)


def simulate_records(
    records: Iterable[ModelRecord],
    config: AcceleratorConfig,
    enable_parameter_caching: bool = True,
) -> list[SimulationResult]:
    """Simulate a handful of records on one configuration (detailed results)."""
    simulator = PerformanceSimulator(
        config,
        enable_parameter_caching=enable_parameter_caching,
        collect_layer_results=True,
    )
    return [simulator.simulate(record.build_network()) for record in records]
