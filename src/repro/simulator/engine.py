"""The performance simulator: compile a model and estimate latency and energy.

This is the stand-in for the paper's in-house fully-parameterized
cycle-accurate performance model (Section 5, "Microarchitectural
simulations").  It is an analytical, per-layer cycle model rather than a
cycle-by-cycle simulation, which keeps whole-population sweeps tractable while
preserving the first-order effects the paper's conclusions rest on: compute
vs. bandwidth rooflines, parameter caching, clock frequency, and PE-count
dependent sustained bandwidth.
"""

from __future__ import annotations

from ..arch.config import AcceleratorConfig
from ..arch.energy import EnergyParameters, energy_parameters_for
from ..compiler import CompiledModel, compile_model
from ..errors import SimulationError
from ..nasbench.cell import Cell
from ..nasbench.network import NetworkConfig, NetworkSpec, build_network
from .energy import layer_energy_mj, static_energy_mj
from .latency import (
    cycles_to_milliseconds,
    model_input_output_bytes,
    model_latency_cycles,
    time_layer,
)
from .results import LayerResult, SimulationResult


class PerformanceSimulator:
    """Latency/energy estimator for one accelerator configuration.

    Parameters
    ----------
    config:
        The accelerator configuration to simulate.
    enable_parameter_caching:
        The paper enables parameter caching in all simulations; disabling it
        here is used by the ablation benchmarks.
    energy_parameters:
        Optional override of the energy coefficients (defaults to
        :func:`repro.arch.energy.energy_parameters_for`).
    collect_layer_results:
        When ``True`` the per-layer breakdown is attached to every
        :class:`SimulationResult`; population sweeps switch it off to save
        memory.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        enable_parameter_caching: bool = True,
        energy_parameters: EnergyParameters | None = None,
        collect_layer_results: bool = False,
    ):
        self.config = config
        self.enable_parameter_caching = enable_parameter_caching
        self.energy_parameters = energy_parameters or energy_parameters_for(config)
        self.collect_layer_results = collect_layer_results

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def simulate_cell(
        self, cell: Cell, network_config: NetworkConfig | None = None
    ) -> SimulationResult:
        """Expand *cell* into its full network and simulate one inference."""
        return self.simulate(build_network(cell, network_config))

    def simulate(self, network: NetworkSpec) -> SimulationResult:
        """Simulate one steady-state inference of *network*."""
        compiled = compile_model(
            network, self.config, enable_parameter_caching=self.enable_parameter_caching
        )
        return self.simulate_compiled(compiled)

    def simulate_compiled(self, compiled: CompiledModel) -> SimulationResult:
        """Simulate one steady-state inference of an already-compiled model."""
        if compiled.config is not self.config and compiled.config != self.config:
            raise SimulationError(
                "compiled model targets a different accelerator configuration "
                f"({compiled.config.name!r} vs {self.config.name!r})"
            )
        if not compiled.layers:
            raise SimulationError("compiled model has no layers")

        input_bytes, output_bytes = model_input_output_bytes(compiled)
        timings = []
        layer_results: list[LayerResult] = []
        dynamic_energy = 0.0

        for index, layer in enumerate(compiled.layers):
            extra = 0
            if index == 0:
                extra += input_bytes
            if index == len(compiled.layers) - 1:
                extra += output_bytes
            timing = time_layer(layer, self.config, extra_dram_bytes=extra)
            timings.append(timing)
            energy = layer_energy_mj(layer, timing, self.config, self.energy_parameters)
            dynamic_energy += energy
            if self.collect_layer_results:
                layer_results.append(
                    LayerResult(
                        name=layer.spec.name,
                        kind=layer.spec.kind,
                        compute_cycles=timing.compute_cycles,
                        dram_bytes=timing.dram_bytes,
                        on_chip_refill_bytes=timing.on_chip_refill_bytes,
                        memory_cycles=timing.memory_cycles,
                        total_cycles=timing.total_cycles,
                        energy_mj=energy,
                        utilization=layer.mapping.utilization,
                    )
                )

        total_cycles = model_latency_cycles(timings, self.config)
        latency_ms = cycles_to_milliseconds(total_cycles, self.config)

        energy_mj: float | None = None
        if self.energy_parameters.available:
            energy_mj = dynamic_energy + static_energy_mj(latency_ms, self.energy_parameters)

        return SimulationResult(
            config_name=self.config.name,
            latency_ms=latency_ms,
            energy_mj=energy_mj,
            total_cycles=total_cycles,
            compute_cycles=compiled.total_compute_cycles,
            memory_cycles=sum(timing.memory_cycles for timing in timings),
            dram_bytes=sum(timing.dram_bytes for timing in timings),
            cached_weight_bytes=compiled.cache_plan.cached_bytes,
            streamed_weight_bytes=compiled.cache_plan.streamed_bytes,
            total_weight_bytes=compiled.cache_plan.total_weight_bytes,
            average_utilization=compiled.average_utilization,
            layer_results=tuple(layer_results),
        )
