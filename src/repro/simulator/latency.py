"""Per-layer latency model.

Each layer's execution time is the maximum of three overlapped activities plus
a small fixed dispatch overhead:

* datapath cycles (from the compiler's :class:`LayerMapping`);
* DRAM transfer cycles for weights that are not resident on-chip and for
  activation traffic that does not fit in PE memory;
* on-chip refill cycles moving cached weights from the parameter cache into
  the per-core staging memories.

Weight streaming is double buffered against compute (as in the real device),
hence the ``max`` rather than a sum.  The whole-model latency adds a fixed
per-inference overhead covering host synchronization and input/output DMA.

Latency is per *batched* inference: compute cycles and activation DRAM
traffic scale with ``config.batch_size`` while weight streaming and cache
refills are charged once per batch (the batch amortizes weight fetch).
Activation byte counts are rescaled from the canonical int8 footprints by
``config.activation_bits`` before they touch the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.interconnect import on_chip_bytes_per_cycle, sustained_bytes_per_cycle
from ..compiler.schedule import CompiledLayer, CompiledModel, CompiledTable


@dataclass(frozen=True)
class LayerTiming:
    """Timing decomposition of one compiled layer."""

    compute_cycles: int
    dram_bytes: int
    on_chip_refill_bytes: int
    memory_cycles: float
    total_cycles: float


@dataclass(frozen=True)
class TimingTable:
    """Structure-of-arrays :class:`LayerTiming` for a whole compiled table."""

    compute_cycles: np.ndarray
    dram_bytes: np.ndarray
    on_chip_refill_bytes: np.ndarray
    memory_cycles: np.ndarray
    total_cycles: np.ndarray


def activation_spill_bytes(layer: CompiledLayer, config: AcceleratorConfig) -> int:
    """Per-image DRAM activation traffic when the working set overflows PE memory."""
    working_set = scaled_bytes(
        layer.spec.input_activation_bytes + layer.spec.output_activation_bytes,
        config.activation_bits,
    )
    if working_set > config.total_pe_memory_bytes:
        return working_set
    return 0


def time_layer(
    layer: CompiledLayer,
    config: AcceleratorConfig,
    extra_dram_bytes: int = 0,
) -> LayerTiming:
    """Compute the :class:`LayerTiming` of one compiled layer.

    ``extra_dram_bytes`` lets the engine charge the model input/output tensors
    to the first/last layer; like the spill traffic it is per-image activation
    data (already bit-width scaled) and is multiplied by the batch size, while
    the weight stream and cache refill are charged once per batch.
    """
    activation_dram = activation_spill_bytes(layer, config) + extra_dram_bytes
    dram_bytes = layer.streamed_weight_bytes + config.batch_size * activation_dram
    refill_bytes = layer.cached_weight_bytes
    compute_cycles = config.batch_size * layer.mapping.compute_cycles

    dram_cycles = dram_bytes / sustained_bytes_per_cycle(config) if dram_bytes else 0.0
    refill_cycles = refill_bytes / on_chip_bytes_per_cycle(config) if refill_bytes else 0.0
    memory_cycles = max(dram_cycles, refill_cycles)

    total = max(compute_cycles, memory_cycles) + config.layer_overhead_cycles
    return LayerTiming(
        compute_cycles=compute_cycles,
        dram_bytes=dram_bytes,
        on_chip_refill_bytes=refill_bytes,
        memory_cycles=memory_cycles,
        total_cycles=total,
    )


def time_layer_table(compiled: CompiledTable) -> TimingTable:
    """Vectorized :func:`time_layer` over every layer row of a compiled table.

    The model input image and classifier output DRAM traffic are charged to
    the first and last layer of every model segment, exactly as the scalar
    engine does via ``extra_dram_bytes``.  For a table compiled against a
    :class:`~repro.arch.config_table.ConfigTable` the timing arrays carry the
    compiled arrays' leading configuration axis (the config columns broadcast
    through the same formulas).
    """
    table = compiled.table
    config = compiled.config

    working_set = scaled_bytes(
        table.input_activation_bytes + table.output_activation_bytes,
        config.activation_bits,
    )
    spill = np.where(working_set > config.total_pe_memory_bytes, working_set, 0)

    first_rows = table.model_offsets[:-1]
    last_rows = table.model_offsets[1:] - 1
    input_bytes = scaled_bytes(table.input_activation_bytes, config.activation_bits)
    output_bytes = scaled_bytes(table.output_activation_bytes, config.activation_bits)
    extra = np.zeros(spill.shape, dtype=np.int64)
    extra[..., first_rows] += input_bytes[..., first_rows]
    extra[..., last_rows] += output_bytes[..., last_rows]

    dram_bytes = compiled.streamed_weight_bytes + config.batch_size * (spill + extra)
    refill_bytes = compiled.cached_weight_bytes
    compute_cycles = config.batch_size * compiled.mapping.compute_cycles
    dram_cycles = dram_bytes / sustained_bytes_per_cycle(config)
    refill_cycles = refill_bytes / on_chip_bytes_per_cycle(config)
    memory_cycles = np.maximum(dram_cycles, refill_cycles)

    total = np.maximum(compute_cycles, memory_cycles) + config.layer_overhead_cycles
    return TimingTable(
        compute_cycles=compute_cycles,
        dram_bytes=dram_bytes,
        on_chip_refill_bytes=refill_bytes,
        memory_cycles=memory_cycles,
        total_cycles=total,
    )


def model_latency_cycles(timings: list[LayerTiming], config: AcceleratorConfig) -> float:
    """Total model latency in cycles, including the per-inference overhead."""
    return config.inference_overhead_cycles + sum(timing.total_cycles for timing in timings)


def model_latency_cycles_table(
    timing: TimingTable, model_offsets: np.ndarray, config
) -> np.ndarray:
    """Per-model latency in cycles via a segment reduction over the layer axis.

    Elementwise in the configuration: *config* is one
    :class:`AcceleratorConfig` (result shape ``(num_models,)``) or a
    :class:`~repro.arch.config_table.ConfigTable` matching the timing arrays'
    leading axis (result shape ``(num_configs, num_models)``).
    """
    return config.inference_overhead_cycles + np.add.reduceat(
        timing.total_cycles, model_offsets[:-1], axis=-1
    )


def cycles_to_milliseconds(cycles, config):
    """Convert accelerator cycles to milliseconds for *config* (elementwise)."""
    return cycles / config.clock_hz * 1e3


def model_input_output_bytes(model: CompiledModel) -> tuple[int, int]:
    """Per-image DRAM bytes for the model input image and the classifier output.

    Scaled to the configuration's activation bit-width so the scalar engine's
    ``extra_dram_bytes`` matches the table path exactly.
    """
    bits = model.config.activation_bits
    first = model.layers[0].spec
    last = model.layers[-1].spec
    return (
        scaled_bytes(first.input_activation_bytes, bits),
        scaled_bytes(last.output_activation_bytes, bits),
    )
