"""Fused mapping→cache→timing→energy grid kernel with config sensitivities.

:meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid` runs the
grid as four staged array passes, each materializing full
``(num_configs, num_layers)`` intermediates — a dozen-plus arrays of that
shape for a large sweep, all streamed through DRAM once per stage.
:func:`compile_and_time_table` fuses the chain: the mapping and cache kernels
still run factorized over the *distinct* sub-configurations they read
(exactly like the staged path), but nothing is ever gathered back to the full
configuration axis.  Instead the timing/energy arithmetic walks the config
axis in small chunks, threading a handful of reusable scratch buffers whose
rows are gathered straight from the unique-level arrays — the only full-size
traffic left is the per-chunk reads of four unique-level rows.

The result is bit-for-bit the staged path's (the grid-equivalence suite
asserts exact equality): every elementwise operation is the same numpy
operation on the same values in the same association order, and both
``np.add.reduceat`` and the scalar accumulation of the numba loop nest reduce
segments sequentially in row order.

On top of the fused primal, the kernel optionally propagates forward-mode
dual numbers through the timing chain, yielding two per-(config, model)
sensitivity columns:

``d latency / d clock_ghz``
    Exact for the real pipeline: no discrete compiler decision reads the
    clock (it is in neither ``MAPPING_CONFIG_FIELDS`` nor
    ``CACHE_CONFIG_FIELDS``), so away from branch ties the dual equals the
    true derivative of ``evaluate_table_grid`` in the clock.
``d latency / d sram_byte``
    Defined under a documented *relaxed* cache model: discrete decisions
    (greedy layer selection, spill thresholds, capacity truncation) are
    frozen at the planned operating point, and a marginal byte of effective
    capacity displaces streamed DRAM traffic proportionally to each layer's
    share of the streamed bytes.  The ``sram_scale`` knob evaluates the same
    relaxed, frozen-plan chain at a scaled SRAM size — it is exactly linear
    in the scale, which is what the central-finite-difference validation
    tests exploit.

Branch conventions for the duals (ties resolved as the primal ``max`` does):
the memory term is active when ``memory_cycles > compute_cycles``, and within
it the DRAM term when ``dram_cycles >= refill_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..arch.config import AcceleratorConfig
from ..arch.config_table import ConfigTable

# The dynamic per-event coefficients are technology constants shared by every
# configuration (only the static power varies); that invariant is what lets
# the MAC/idle/SRAM energy terms collapse out of the config axis below.
from ..arch.energy import (
    _DRAM_BYTE_PJ,
    _IDLE_LANE_PJ,
    _MAC_PJ,
    _SRAM_BYTE_PJ,
    energy_parameters_table,
)
from ..arch.interconnect import on_chip_bytes_per_cycle, sustained_bytes_per_cycle
from ..arch.memory import parameter_cache_bytes
from ..compiler.param_cache import (
    CACHE_CONFIG_FIELDS,
    effective_cache_capacity_array,
    greedy_cache_assign,
)
from ..compiler.tiling import MAPPING_CONFIG_FIELDS, map_layer_table
from ..core.backend import ArrayBackend, get_backend
from ..nasbench.layer_table import LayerTable

try:  # pragma: no cover - exercised only when numba is installed
    from numba import prange
except Exception:  # noqa: BLE001 - any import failure means plain Python
    prange = range

_PJ_TO_MJ = 1e-9


@dataclass(frozen=True)
class FusedGridResult:
    """Outputs of one fused grid evaluation, all shaped ``(C, M)``.

    The sensitivity columns are ``None`` unless the kernel was asked for
    them; energy rows of configurations without a published energy model are
    NaN, matching the staged path.
    """

    latency_ms: np.ndarray
    energy_mj: np.ndarray
    #: d latency_ms / d clock_ghz (frozen-branch forward-mode dual).
    dlatency_dclock_ghz: np.ndarray | None = None
    #: d latency_ms / d on-chip SRAM byte (relaxed frozen-plan model).
    dlatency_dsram_byte: np.ndarray | None = None


@dataclass(frozen=True)
class _UniqueLevelArrays:
    """Everything the chunk loop gathers, at unique-sub-config resolution."""

    #: (Cm, L) int64 — datapath cycles per unique mapping sub-config.
    compute_cycles: np.ndarray
    #: (Cm, L) float64 — idle-lane energy term per unique mapping sub-config.
    idle_energy: np.ndarray
    #: (Cc, L) int64 — DRAM bytes (streamed + spill + model I/O).
    dram_bytes: np.ndarray
    #: (Cc, L) int64 — on-chip refill bytes (cached weights).
    refill_bytes: np.ndarray
    #: (C,) rows into the mapping-unique arrays.
    inverse_mapping: np.ndarray
    #: (C,) rows into the cache-unique arrays.
    inverse_cache: np.ndarray
    #: (Cc, L) float64 — d streamed_bytes / d sram_scale (sensitivity runs).
    dstreamed_dscale: np.ndarray | None = None


def _auto_chunk(num_configs: int, num_layers: int) -> int:
    """Config rows per chunk: keep the scratch buffers near cache size.

    Large layer populations go (nearly) row-by-row so the scratch rows stay
    hot; small populations take wide chunks so the numpy call overhead is
    amortized over the config axis.
    """
    return max(1, min(num_configs, 500_000 // max(1, num_layers)))


def _unique_level_arrays(
    table: LayerTable,
    configs: ConfigTable,
    enable_parameter_caching: bool,
    need_slope: bool,
) -> _UniqueLevelArrays:
    """Run the factorized mapping/cache front end of the fused kernel.

    Identical factorization to the staged ``_grid_mapping``/``_grid_cache``
    helpers, but the results are *kept* at unique resolution: the chunk loop
    gathers individual rows instead of materializing full-(C, L) arrays.
    """
    starts = table.segment_starts
    weights = table.weight_bytes
    working_set = table.input_activation_bytes + table.output_activation_bytes

    # Model input/output DRAM traffic, charged to the first/last layer rows.
    extra = np.zeros(len(table), dtype=np.int64)
    first_rows = table.model_offsets[:-1]
    last_rows = table.model_offsets[1:] - 1
    extra[first_rows] += table.input_activation_bytes[first_rows]
    extra[last_rows] += table.output_activation_bytes[last_rows]

    # --- mapping level: distinct MAPPING_CONFIG_FIELDS rows --------------- #
    unique_m, inverse_m = configs.factor(MAPPING_CONFIG_FIELDS)
    mapping = map_layer_table(table, unique_m)
    compute_cycles = np.ascontiguousarray(
        np.atleast_2d(mapping.compute_cycles), dtype=np.int64
    )
    # The idle-lane energy term only reads mapping fields (issued MAC slots)
    # and the technology-constant idle coefficient, so it collapses to the
    # mapping level too.  Same expressions as layer_energy_table.
    macs = table.macs
    issued_slots = compute_cycles * unique_m.macs_per_cycle
    idle_energy = np.where(
        macs > 0,
        _IDLE_LANE_PJ * np.maximum(0, issued_slots - macs),
        0.0,
    )

    # --- cache level: distinct CACHE_CONFIG_FIELDS rows ------------------- #
    unique_c, inverse_c = configs.factor(CACHE_CONFIG_FIELDS)
    total_weight = np.add.reduceat(weights, starts)
    max_activation = np.maximum.reduceat(working_set, starts)
    capacity = parameter_cache_bytes(unique_c, max_activation)
    if enable_parameter_caching:
        effective = effective_cache_capacity_array(total_weight, capacity)
        cached_mask = greedy_cache_assign(weights, table.model_offsets, effective)
        cached = np.where(cached_mask, weights, 0)
        streamed = weights - cached
    else:
        streamed = np.broadcast_to(weights, capacity.shape[:-1] + (len(table),)).copy()
        cached = weights - streamed

    spill = np.where(working_set > unique_c.total_pe_memory_bytes, working_set, 0)
    dram_bytes = streamed + spill + extra

    dstreamed_dscale = None
    if need_slope:
        if enable_parameter_caching:
            dstreamed_dscale = _relaxed_streamed_slope(
                unique_c, table, streamed, total_weight, max_activation, capacity, effective
            )
        else:
            # No caching: streamed bytes never react to the SRAM size (the
            # spill threshold is a frozen discrete decision).
            dstreamed_dscale = np.zeros(streamed.shape, dtype=np.float64)
    return _UniqueLevelArrays(
        compute_cycles=compute_cycles,
        idle_energy=idle_energy,
        dram_bytes=dram_bytes,
        refill_bytes=cached,
        inverse_mapping=inverse_m,
        inverse_cache=inverse_c,
        dstreamed_dscale=dstreamed_dscale,
    )


def _relaxed_streamed_slope(
    unique_c: ConfigTable,
    table: LayerTable,
    streamed: np.ndarray,
    total_weight: np.ndarray,
    max_activation: np.ndarray,
    capacity: np.ndarray,
    effective: np.ndarray,
) -> np.ndarray:
    """Per-layer ``d streamed_bytes / d sram_scale`` under the relaxed model.

    ``sram_scale`` multiplies every SRAM capacity (PE and core memories)
    uniformly.  With the greedy plan frozen, the chain is

    ``scale → cache capacity → effective capacity → streamed bytes``

    with each link linearized at the operating point:

    * capacity: when the activation reserve binds on the PE memory, scaling
      buys nothing cacheable, so the PE term contributes only where the
      reserve left headroom; the core memories always contribute their full
      size.  Truncation to whole bytes is relaxed to continuous.
    * effective capacity: slope 1 while the weights fit, 1.5 in the
      linear-decay region (a capacity byte also retires half an overflow
      byte's worth of decay), 0 once the cache has fully collapsed.
    * streamed bytes: a marginal effective-capacity byte displaces streamed
      DRAM traffic proportionally to each layer's share of its model's
      streamed bytes (zero for fully-cached models).
    """
    pe_total = unique_c.total_pe_memory_bytes
    reserve = np.minimum(2 * max_activation, pe_total)
    dcapacity = (
        unique_c.pe_memory_cache_fraction
        * pe_total
        * ((2 * max_activation <= pe_total) & (pe_total - reserve > 0))
        + unique_c.total_core_memory_bytes
    )
    deffective = np.where(
        capacity <= 0,
        0.0,
        np.where(total_weight <= capacity, 1.0, np.where(effective > 0, 1.5, 0.0)),
    )
    deffective_dscale = deffective * dcapacity  # (Cc, M)

    streamed_total = np.add.reduceat(streamed, table.segment_starts, axis=-1)
    model_ids = table.model_ids
    share = streamed / np.maximum(streamed_total[..., model_ids], 1)
    return -share * deffective_dscale[..., model_ids]


def compile_and_time_table(
    table: LayerTable,
    configs: "Sequence[AcceleratorConfig] | ConfigTable",
    enable_parameter_caching: bool = True,
    backend: "str | ArrayBackend | None" = None,
    config_chunk: int | None = None,
    sensitivities: bool = False,
    sram_scale: float = 1.0,
) -> FusedGridResult:
    """Fused grid evaluation: latency, energy and optional sensitivities.

    Drop-in accelerated equivalent of the staged
    :meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid` chain
    (``compile_layer_table → time_layer_table → layer_energy_table``), with
    bit-for-bit identical ``latency_ms``/``energy_mj`` when ``sram_scale`` is
    exactly ``1.0`` (the default; any other value evaluates the relaxed
    frozen-plan cache model documented in the module docstring).

    Parameters
    ----------
    backend:
        Backend name, instance, or ``None`` for the process-wide active
        backend.  A JIT-capable backend (numba) runs the chunk arithmetic as
        one ``@njit(parallel=True)`` loop nest; otherwise the chunks run as
        in-place numpy kernels over preallocated scratch.
    config_chunk:
        Config rows processed per scratch buffer; defaults to a size that
        keeps the scratch near cache-resident.
    sensitivities:
        Also propagate the forward-mode duals and fill the two
        ``dlatency_*`` columns (always on the numpy chunk path — the duals
        are a diagnostics feature, not a hot loop).
    """
    resolved = get_backend(backend)
    config_table = ConfigTable.from_configs(configs)
    num_configs = len(config_table)
    num_models = table.num_models
    num_layers = len(table)
    if num_models == 0 or num_layers == 0:
        empty = np.zeros((num_configs, num_models), dtype=np.float64)
        zeros = (np.zeros_like(empty), np.zeros_like(empty)) if sensitivities else (None, None)
        return FusedGridResult(empty, np.full_like(empty, np.nan), *zeros)

    unique = _unique_level_arrays(
        table, config_table, enable_parameter_caching, sensitivities or sram_scale != 1.0
    )
    chunk = config_chunk or _auto_chunk(num_configs, num_layers)

    # Full-config-axis columns, flattened to (C,) for row slicing.
    sustained = np.ravel(sustained_bytes_per_cycle(config_table))
    on_chip = np.ravel(on_chip_bytes_per_cycle(config_table)).astype(np.float64)
    layer_overhead = np.ravel(config_table.layer_overhead_cycles)
    inference_overhead = np.ravel(config_table.inference_overhead_cycles)
    clock_hz = np.ravel(config_table.clock_hz)
    params = energy_parameters_table(config_table)
    static_power = np.ravel(params.static_power_w)

    # Config-independent per-layer energy terms (identical to the staged
    # broadcasts because the pJ coefficients are shared by all configs).
    mac_energy = _MAC_PJ * table.macs
    sram_energy = _SRAM_BYTE_PJ * (
        table.weight_bytes + table.input_activation_bytes + table.output_activation_bytes
    )

    latency_ms = np.empty((num_configs, num_models), dtype=np.float64)
    energy_mj = np.empty((num_configs, num_models), dtype=np.float64)

    if resolved.jit and not sensitivities and sram_scale == 1.0:
        kernel = resolved.njit(_fused_rows_loop_nest, parallel=True)
        kernel(
            unique.compute_cycles,
            unique.idle_energy,
            unique.dram_bytes,
            unique.refill_bytes,
            unique.inverse_mapping,
            unique.inverse_cache,
            sustained,
            on_chip,
            layer_overhead.astype(np.float64),
            inference_overhead.astype(np.float64),
            clock_hz,
            static_power,
            mac_energy,
            sram_energy,
            np.asarray(table.model_offsets, dtype=np.int64),
            latency_ms,
            energy_mj,
        )
    else:
        _fused_rows_numpy(
            unique,
            table,
            chunk,
            sustained,
            on_chip,
            layer_overhead,
            inference_overhead,
            clock_hz,
            static_power,
            mac_energy,
            sram_energy,
            sram_scale,
            latency_ms,
            energy_mj,
        )

    energy_mj[~params.available] = np.nan

    dlat_dclock = dlat_dsram = None
    if sensitivities:
        dlat_dclock, dlat_dsram = _sensitivity_pass(
            unique,
            table,
            chunk,
            sustained,
            on_chip,
            clock_hz,
            np.ravel(config_table.total_on_chip_memory_bytes).astype(np.float64),
            latency_ms,
        )
    return FusedGridResult(latency_ms, energy_mj, dlat_dclock, dlat_dsram)


def _fused_rows_numpy(
    unique: _UniqueLevelArrays,
    table: LayerTable,
    chunk: int,
    sustained: np.ndarray,
    on_chip: np.ndarray,
    layer_overhead: np.ndarray,
    inference_overhead: np.ndarray,
    clock_hz: np.ndarray,
    static_power: np.ndarray,
    mac_energy: np.ndarray,
    sram_energy: np.ndarray,
    sram_scale: float,
    latency_ms: np.ndarray,
    energy_mj: np.ndarray,
) -> None:
    """Chunked in-place numpy body of the fused kernel.

    Four gather buffers and two float work buffers of shape ``(chunk, L)``
    are threaded through the whole timing+energy chain with ``out=`` kernels
    — no temporary of that shape is allocated inside the loop on the exact
    (``sram_scale == 1``) path.
    """
    num_configs = latency_ms.shape[0]
    num_layers = unique.compute_cycles.shape[-1]
    starts = table.segment_starts

    g_cycles = np.empty((chunk, num_layers), dtype=np.int64)
    g_dram = np.empty((chunk, num_layers), dtype=np.int64)
    g_refill = np.empty((chunk, num_layers), dtype=np.int64)
    g_idle = np.empty((chunk, num_layers), dtype=np.float64)
    work_a = np.empty((chunk, num_layers), dtype=np.float64)
    work_b = np.empty((chunk, num_layers), dtype=np.float64)
    relaxed = sram_scale != 1.0

    for begin in range(0, num_configs, chunk):
        end = min(begin + chunk, num_configs)
        rows = slice(0, end - begin)
        rows_m = unique.inverse_mapping[begin:end]
        rows_c = unique.inverse_cache[begin:end]
        np.take(unique.compute_cycles, rows_m, axis=0, out=g_cycles[rows])
        np.take(unique.dram_bytes, rows_c, axis=0, out=g_dram[rows])
        np.take(unique.refill_bytes, rows_c, axis=0, out=g_refill[rows])
        np.take(unique.idle_energy, rows_m, axis=0, out=g_idle[rows])
        cc = g_cycles[rows]
        db = g_dram[rows]
        sus = sustained[begin:end, None]
        ocb = on_chip[begin:end, None]

        dram_cycles = np.divide(db, sus, out=work_a[rows])
        refill_cycles = np.divide(g_refill[rows], ocb, out=work_b[rows])
        if relaxed:
            # Frozen-plan relaxation: branch masks come from the scale-1
            # operating point, the streamed bytes move linearly with scale.
            shift = unique.dstreamed_dscale[rows_c] * (sram_scale - 1.0)
            dram_mask = dram_cycles >= refill_cycles
            memory_mask = np.maximum(dram_cycles, refill_cycles) > cc
            memory = np.where(
                dram_mask, (db + shift) / sus, (g_refill[rows] - shift) / ocb
            )
            total = np.where(memory_mask, memory, cc) + layer_overhead[begin:end, None]
        else:
            memory = np.maximum(dram_cycles, refill_cycles, out=work_a[rows])
            total = np.maximum(cc, memory, out=work_a[rows])
            total += layer_overhead[begin:end, None]
        model_cycles = inference_overhead[begin:end, None] + np.add.reduceat(
            total, starts, axis=-1
        )
        np.multiply(
            np.divide(model_cycles, clock_hz[begin:end, None], out=model_cycles),
            1e3,
            out=latency_ms[begin:end],
        )

        # Energy: same terms, same association order as layer_energy_table.
        dynamic = np.add(mac_energy, g_idle[rows], out=work_b[rows])
        dynamic += sram_energy
        dynamic += np.multiply(db, _DRAM_BYTE_PJ, out=work_a[rows])
        dynamic *= _PJ_TO_MJ
        np.add(
            np.add.reduceat(dynamic, starts, axis=-1),
            static_power[begin:end, None] * latency_ms[begin:end],
            out=energy_mj[begin:end],
        )


def _sensitivity_pass(
    unique: _UniqueLevelArrays,
    table: LayerTable,
    chunk: int,
    sustained: np.ndarray,
    on_chip: np.ndarray,
    clock_hz: np.ndarray,
    total_sram_bytes: np.ndarray,
    latency_ms: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-mode dual propagation for the two config sensitivities.

    Runs after (and independently of) the primal chunks: the duals need the
    branch masks, which are recomputed here from the same gathered rows, so
    the primal scratch discipline stays untouched.
    """
    num_configs, num_models = latency_ms.shape
    starts = table.segment_starts
    dlat_dclock = np.empty((num_configs, num_models), dtype=np.float64)
    dlat_dsram = np.empty((num_configs, num_models), dtype=np.float64)

    for begin in range(0, num_configs, chunk):
        end = min(begin + chunk, num_configs)
        rows_m = unique.inverse_mapping[begin:end]
        rows_c = unique.inverse_cache[begin:end]
        cc = unique.compute_cycles[rows_m]
        d_stream = unique.dstreamed_dscale[rows_c]
        sus = sustained[begin:end, None]
        ocb = on_chip[begin:end, None]
        clock = clock_hz[begin:end, None]

        dram_cycles = unique.dram_bytes[rows_c] / sus
        refill_cycles = unique.refill_bytes[rows_c] / ocb
        dram_mask = dram_cycles >= refill_cycles
        memory_mask = np.maximum(dram_cycles, refill_cycles) > cc

        # Clock dual: dram_cycles scale linearly with the clock (sustained
        # bytes/cycle carry a 1/clock factor), refill and compute do not.
        dcycles_dclock = np.where(memory_mask & dram_mask, dram_cycles / clock, 0.0)
        dtotal_dclock = np.add.reduceat(dcycles_dclock, starts, axis=-1)
        # latency_ms = cycles * 1e3 / clock_hz; the quotient rule gives the
        # propagated term minus the direct 1/clock term; 1e9 Hz per GHz.
        dlat_dclock[begin:end] = (
            dtotal_dclock * 1e3 / clock - latency_ms[begin:end] / clock
        ) * 1e9

        # SRAM dual: streamed bytes move with the scale, refill bytes move
        # opposite; the frozen masks pick which term reaches the latency.
        dmem_dscale = np.where(dram_mask, d_stream / sus, -d_stream / ocb)
        dcycles_dscale = np.where(memory_mask, dmem_dscale, 0.0)
        dtotal_dscale = np.add.reduceat(dcycles_dscale, starts, axis=-1)
        # One unit of scale is total_sram_bytes actual bytes.
        dlat_dsram[begin:end] = (
            dtotal_dscale * 1e3 / clock / total_sram_bytes[begin:end, None]
        )
    return dlat_dclock, dlat_dsram


def _fused_rows_loop_nest(
    compute_cycles_u,
    idle_energy_u,
    dram_bytes_u,
    refill_bytes_u,
    inverse_mapping,
    inverse_cache,
    sustained,
    on_chip,
    layer_overhead,
    inference_overhead,
    clock_hz,
    static_power,
    mac_energy,
    sram_energy,
    model_offsets,
    latency_ms,
    energy_mj,
):
    """Scalar loop nest over (config, model, layer) — the numba body.

    Written in the njit-compatible subset (explicit loops, no fancy
    indexing) and decorated lazily by the numba backend with
    ``@njit(parallel=True)``; as plain Python it computes the same values
    (sequential per-segment accumulation matches ``np.add.reduceat``), which
    is how its semantics are tested where numba is not installed.
    """
    num_configs = latency_ms.shape[0]
    num_models = model_offsets.shape[0] - 1
    for c in prange(num_configs):
        im = inverse_mapping[c]
        ic = inverse_cache[c]
        sus = sustained[c]
        ocb = on_chip[c]
        overhead = layer_overhead[c]
        for m in range(num_models):
            cycles_sum = 0.0
            energy_sum = 0.0
            for row in range(model_offsets[m], model_offsets[m + 1]):
                dram_cycles = dram_bytes_u[ic, row] / sus
                refill_cycles = refill_bytes_u[ic, row] / ocb
                memory = max(dram_cycles, refill_cycles)
                cycles_sum += max(float(compute_cycles_u[im, row]), memory) + overhead
                energy_sum += (
                    mac_energy[row]
                    + idle_energy_u[im, row]
                    + sram_energy[row]
                    + _DRAM_BYTE_PJ * dram_bytes_u[ic, row]
                ) * _PJ_TO_MJ
            model_cycles = inference_overhead[c] + cycles_sum
            lat = model_cycles / clock_hz[c] * 1e3
            latency_ms[c, m] = lat
            energy_mj[c, m] = energy_sum + static_power[c] * lat
