"""Fused mapping→cache→timing→energy grid kernel with config sensitivities.

:meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid` runs the
grid as four staged array passes, each materializing full
``(num_configs, num_layers)`` intermediates — a dozen-plus arrays of that
shape for a large sweep, all streamed through DRAM once per stage.
:func:`compile_and_time_table` fuses the chain: the mapping and cache kernels
still run factorized over the *distinct* sub-configurations they read
(exactly like the staged path), but nothing is ever gathered back to the full
configuration axis.  Instead the timing/energy arithmetic walks the config
axis in small chunks, threading a handful of reusable scratch buffers whose
rows are gathered straight from the unique-level arrays — the only full-size
traffic left is the per-chunk reads of four unique-level rows.

The result is bit-for-bit the staged path's (the grid-equivalence suite
asserts exact equality): every elementwise operation is the same numpy
operation on the same values in the same association order, and both
``np.add.reduceat`` and the scalar accumulation of the numba loop nest reduce
segments sequentially in row order.

On top of the fused primal, the kernel optionally propagates forward-mode
dual numbers through the timing chain, yielding two per-(config, model)
sensitivity columns:

``d latency / d clock_ghz``
    Exact for the real pipeline: no discrete compiler decision reads the
    clock (it is in neither ``MAPPING_CONFIG_FIELDS`` nor
    ``CACHE_CONFIG_FIELDS``), so away from branch ties the dual equals the
    true derivative of ``evaluate_table_grid`` in the clock.
``d latency / d sram_byte``
    Defined under a documented *relaxed* cache model: discrete decisions
    (greedy layer selection, spill thresholds, capacity truncation) are
    frozen at the planned operating point, and a marginal byte of effective
    capacity displaces streamed DRAM traffic proportionally to each layer's
    share of the streamed bytes.  The ``sram_scale`` knob evaluates the same
    relaxed, frozen-plan chain at a scaled SRAM size — it is exactly linear
    in the scale, which is what the central-finite-difference validation
    tests exploit.

Branch conventions for the duals (ties resolved as the primal ``max`` does):
the memory term is active when ``memory_cycles > compute_cycles``, and within
it the DRAM term when ``dram_cycles >= refill_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..arch.config import AcceleratorConfig, scaled_bytes
from ..arch.config_table import ConfigTable

# The dynamic per-event coefficients are technology constants shared by every
# configuration (only the static power varies); that invariant is what lets
# the MAC/idle/SRAM energy terms collapse out of the config axis below.
from ..arch.energy import (
    _DRAM_BYTE_PJ,
    _IDLE_LANE_PJ,
    _MAC_PJ,
    _SRAM_BYTE_PJ,
    energy_parameters_table,
)
from ..arch.interconnect import on_chip_bytes_per_cycle, sustained_bytes_per_cycle
from ..compiler.param_cache import CACHE_CONFIG_FIELDS, plan_cache_table
from ..compiler.tiling import MAPPING_CONFIG_FIELDS, map_layer_table
from ..core.backend import ArrayBackend, get_backend
from ..nasbench.layer_table import LayerTable

try:  # pragma: no cover - exercised only when numba is installed
    from numba import prange
except Exception:  # noqa: BLE001 - any import failure means plain Python
    prange = range

_PJ_TO_MJ = 1e-9


@dataclass(frozen=True)
class FusedGridResult:
    """Outputs of one fused grid evaluation, all shaped ``(C, M)``.

    The sensitivity columns are ``None`` unless the kernel was asked for
    them; energy rows of configurations without a published energy model are
    NaN, matching the staged path.
    """

    latency_ms: np.ndarray
    energy_mj: np.ndarray
    #: d latency_ms / d clock_ghz (frozen-branch forward-mode dual).
    dlatency_dclock_ghz: np.ndarray | None = None
    #: d latency_ms / d on-chip SRAM byte (relaxed frozen-plan model).
    dlatency_dsram_byte: np.ndarray | None = None


@dataclass(frozen=True)
class _UniqueLevelArrays:
    """Everything the chunk loop gathers, at unique-sub-config resolution.

    Batch size is a full-config-axis scalar (it is in neither field set), so
    the per-image quantities stay unique-level and the chunk loop combines
    them with the batch column: ``dram = stream + batch * act_dram``,
    ``compute = batch * compute_cycles``, etc.  Everything that touches an
    energy coefficient stays integer here so the chunk loop can keep the
    ``pj * int`` association order of the staged kernels.
    """

    #: (Cm, L) int64 — per-image datapath cycles per unique mapping sub-config.
    compute_cycles: np.ndarray
    #: (Cm, L) int64 — per-image idle MAC slots (zero for non-MAC rows).
    idle_slots: np.ndarray
    #: (Cc, L) int64 — streamed weight bytes (bit-scaled, once per batch).
    stream_bytes: np.ndarray
    #: (Cc, L) int64 — per-image activation DRAM bytes (spill + model I/O).
    act_dram_bytes: np.ndarray
    #: (Cc, L) int64 — on-chip refill bytes (cached weights, once per batch).
    refill_bytes: np.ndarray
    #: (Cc, L) int64 — per-image activation SRAM bytes (bit-scaled).
    sram_act_bytes: np.ndarray
    #: (C,) rows into the mapping-unique arrays.
    inverse_mapping: np.ndarray
    #: (C,) rows into the cache-unique arrays.
    inverse_cache: np.ndarray
    #: (Cc, L) float64 — d streamed_bytes / d sram_scale (sensitivity runs).
    dstreamed_dscale: np.ndarray | None = None


def _auto_chunk(num_configs: int, num_layers: int) -> int:
    """Config rows per chunk: keep the scratch buffers near cache size.

    Large layer populations go (nearly) row-by-row so the scratch rows stay
    hot; small populations take wide chunks so the numpy call overhead is
    amortized over the config axis.
    """
    return max(1, min(num_configs, 500_000 // max(1, num_layers)))


def _unique_level_arrays(
    table: LayerTable,
    configs: ConfigTable,
    enable_parameter_caching: bool,
    need_slope: bool,
) -> _UniqueLevelArrays:
    """Run the factorized mapping/cache front end of the fused kernel.

    Identical factorization to the staged ``_grid_mapping``/``_grid_cache``
    helpers, but the results are *kept* at unique resolution: the chunk loop
    gathers individual rows instead of materializing full-(C, L) arrays.
    The cache plan itself comes from :func:`plan_cache_table` — the staged
    planner — so bit-width scaling and the per-width greedy grouping cannot
    drift between the two paths.
    """
    starts = table.segment_starts
    working_set = table.input_activation_bytes + table.output_activation_bytes
    first_rows = table.model_offsets[:-1]
    last_rows = table.model_offsets[1:] - 1

    # --- mapping level: distinct MAPPING_CONFIG_FIELDS rows --------------- #
    unique_m, inverse_m = configs.factor(MAPPING_CONFIG_FIELDS)
    obs.count("sim.unique_mapping_rows", len(unique_m))
    with obs.span("sim.mapping", unique=len(unique_m), layers=len(table)):
        mapping = map_layer_table(table, unique_m)
        compute_cycles = np.ascontiguousarray(
            np.atleast_2d(mapping.compute_cycles), dtype=np.int64
        )
        # The idle-lane slot count only reads mapping fields (issued MAC
        # slots), so it collapses to the mapping level too; it stays an
        # integer so the chunk loop can batch-scale it before the coefficient
        # multiply, exactly like layer_energy_table.
        macs = table.macs
        issued_slots = compute_cycles * unique_m.macs_per_cycle
        idle_slots = np.ascontiguousarray(
            np.where(macs > 0, np.maximum(0, issued_slots - macs), 0), dtype=np.int64
        )

    # --- cache level: distinct CACHE_CONFIG_FIELDS rows ------------------- #
    unique_c, inverse_c = configs.factor(CACHE_CONFIG_FIELDS)
    obs.count("sim.unique_cache_rows", len(unique_c))
    with obs.span("sim.cache", unique=len(unique_c), layers=len(table)):
        cache = plan_cache_table(table, unique_c, enable_caching=enable_parameter_caching)
        weights_scaled = scaled_bytes(table.weight_bytes, unique_c.weight_bits)
        streamed = np.ascontiguousarray(np.atleast_2d(cache.streamed_bytes), dtype=np.int64)
        refill = np.ascontiguousarray(weights_scaled - streamed, dtype=np.int64)

    act_scaled = scaled_bytes(working_set, unique_c.activation_bits)
    spill = np.where(act_scaled > unique_c.total_pe_memory_bytes, act_scaled, 0)
    # Per-image model input/output DRAM traffic on the first/last layer rows.
    input_scaled = scaled_bytes(table.input_activation_bytes, unique_c.activation_bits)
    output_scaled = scaled_bytes(table.output_activation_bytes, unique_c.activation_bits)
    extra = np.zeros(spill.shape, dtype=np.int64)
    extra[..., first_rows] += input_scaled[..., first_rows]
    extra[..., last_rows] += output_scaled[..., last_rows]
    act_dram = np.ascontiguousarray(spill + extra, dtype=np.int64)

    dstreamed_dscale = None
    if need_slope:
        if enable_parameter_caching:
            max_activation = np.maximum.reduceat(act_scaled, starts, axis=-1)
            dstreamed_dscale = _relaxed_streamed_slope(
                unique_c,
                table,
                streamed,
                cache.total_weight_bytes,
                max_activation,
                cache.capacity_bytes,
                cache.effective_capacity_bytes,
            )
        else:
            # No caching: streamed bytes never react to the SRAM size (the
            # spill threshold is a frozen discrete decision).
            dstreamed_dscale = np.zeros(streamed.shape, dtype=np.float64)
    return _UniqueLevelArrays(
        compute_cycles=compute_cycles,
        idle_slots=idle_slots,
        stream_bytes=streamed,
        act_dram_bytes=act_dram,
        refill_bytes=refill,
        sram_act_bytes=np.ascontiguousarray(act_scaled, dtype=np.int64),
        inverse_mapping=inverse_m,
        inverse_cache=inverse_c,
        dstreamed_dscale=dstreamed_dscale,
    )


def _relaxed_streamed_slope(
    unique_c: ConfigTable,
    table: LayerTable,
    streamed: np.ndarray,
    total_weight: np.ndarray,
    max_activation: np.ndarray,
    capacity: np.ndarray,
    effective: np.ndarray,
) -> np.ndarray:
    """Per-layer ``d streamed_bytes / d sram_scale`` under the relaxed model.

    ``sram_scale`` multiplies every SRAM capacity (PE and core memories)
    uniformly.  With the greedy plan frozen, the chain is

    ``scale → cache capacity → effective capacity → streamed bytes``

    with each link linearized at the operating point:

    * capacity: when the activation reserve binds on the PE memory, scaling
      buys nothing cacheable, so the PE term contributes only where the
      reserve left headroom; the core memories always contribute their full
      size.  Truncation to whole bytes is relaxed to continuous.
    * effective capacity: slope 1 while the weights fit, 1.5 in the
      linear-decay region (a capacity byte also retires half an overflow
      byte's worth of decay), 0 once the cache has fully collapsed.
    * streamed bytes: a marginal effective-capacity byte displaces streamed
      DRAM traffic proportionally to each layer's share of its model's
      streamed bytes (zero for fully-cached models).
    """
    pe_total = unique_c.total_pe_memory_bytes
    reserve = np.minimum(2 * max_activation, pe_total)
    dcapacity = (
        unique_c.pe_memory_cache_fraction
        * pe_total
        * ((2 * max_activation <= pe_total) & (pe_total - reserve > 0))
        + unique_c.total_core_memory_bytes
    )
    deffective = np.where(
        capacity <= 0,
        0.0,
        np.where(total_weight <= capacity, 1.0, np.where(effective > 0, 1.5, 0.0)),
    )
    deffective_dscale = deffective * dcapacity  # (Cc, M)

    streamed_total = np.add.reduceat(streamed, table.segment_starts, axis=-1)
    model_ids = table.model_ids
    share = streamed / np.maximum(streamed_total[..., model_ids], 1)
    return -share * deffective_dscale[..., model_ids]


def compile_and_time_table(
    table: LayerTable,
    configs: "Sequence[AcceleratorConfig] | ConfigTable",
    enable_parameter_caching: bool = True,
    backend: "str | ArrayBackend | None" = None,
    config_chunk: int | None = None,
    sensitivities: bool = False,
    sram_scale: float = 1.0,
) -> FusedGridResult:
    """Fused grid evaluation: latency, energy and optional sensitivities.

    Drop-in accelerated equivalent of the staged
    :meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid` chain
    (``compile_layer_table → time_layer_table → layer_energy_table``), with
    bit-for-bit identical ``latency_ms``/``energy_mj`` when ``sram_scale`` is
    exactly ``1.0`` (the default; any other value evaluates the relaxed
    frozen-plan cache model documented in the module docstring).

    Parameters
    ----------
    backend:
        Backend name, instance, or ``None`` for the process-wide active
        backend.  A JIT-capable backend (numba) runs the chunk arithmetic as
        one ``@njit(parallel=True)`` loop nest; otherwise the chunks run as
        in-place numpy kernels over preallocated scratch.
    config_chunk:
        Config rows processed per scratch buffer; defaults to a size that
        keeps the scratch near cache-resident.
    sensitivities:
        Also propagate the forward-mode duals and fill the two
        ``dlatency_*`` columns (always on the numpy chunk path — the duals
        are a diagnostics feature, not a hot loop).
    """
    resolved = get_backend(backend)
    config_table = ConfigTable.from_configs(configs)
    num_configs = len(config_table)
    num_models = table.num_models
    num_layers = len(table)
    if num_models == 0 or num_layers == 0:
        empty = np.zeros((num_configs, num_models), dtype=np.float64)
        zeros = (np.zeros_like(empty), np.zeros_like(empty)) if sensitivities else (None, None)
        return FusedGridResult(empty, np.full_like(empty, np.nan), *zeros)

    with obs.span(
        "sim.fused",
        configs=num_configs,
        models=num_models,
        layers=num_layers,
        kernel="jit" if resolved.jit else "numpy",
    ):
        unique = _unique_level_arrays(
            table, config_table, enable_parameter_caching, sensitivities or sram_scale != 1.0
        )
        chunk = config_chunk or _auto_chunk(num_configs, num_layers)
        result = _fused_time_energy(
            unique, table, config_table, resolved, chunk, sensitivities, sram_scale
        )
    return result


def _fused_time_energy(
    unique: _UniqueLevelArrays,
    table: LayerTable,
    config_table: ConfigTable,
    resolved: ArrayBackend,
    chunk: int,
    sensitivities: bool,
    sram_scale: float,
) -> FusedGridResult:
    """Timing/energy back end of the fused kernel (split out for tracing)."""
    num_configs = len(config_table)
    num_models = table.num_models

    # Full-config-axis columns, flattened to (C,) for row slicing.
    sustained = np.ravel(sustained_bytes_per_cycle(config_table))
    on_chip = np.ravel(on_chip_bytes_per_cycle(config_table)).astype(np.float64)
    layer_overhead = np.ravel(config_table.layer_overhead_cycles)
    inference_overhead = np.ravel(config_table.inference_overhead_cycles)
    clock_hz = np.ravel(config_table.clock_hz)
    batch = np.ravel(config_table.batch_size)
    params = energy_parameters_table(config_table)
    static_power = np.ravel(params.static_power_w)

    # Config-independent per-layer MAC counts (the pJ coefficients are shared
    # by all configs; the chunk loop applies them after the batch multiply).
    macs = np.ascontiguousarray(table.macs, dtype=np.int64)

    latency_ms = np.empty((num_configs, num_models), dtype=np.float64)
    energy_mj = np.empty((num_configs, num_models), dtype=np.float64)

    with obs.span("sim.time_energy", chunk=chunk):
        if resolved.jit and not sensitivities and sram_scale == 1.0:
            kernel = resolved.njit(_fused_rows_loop_nest, parallel=True)
            kernel(
                unique.compute_cycles,
                unique.idle_slots,
                unique.stream_bytes,
                unique.act_dram_bytes,
                unique.refill_bytes,
                unique.sram_act_bytes,
                macs,
                batch,
                unique.inverse_mapping,
                unique.inverse_cache,
                sustained,
                on_chip,
                layer_overhead.astype(np.float64),
                inference_overhead.astype(np.float64),
                clock_hz,
                static_power,
                np.asarray(table.model_offsets, dtype=np.int64),
                latency_ms,
                energy_mj,
            )
        else:
            _fused_rows_numpy(
                unique,
                table,
                chunk,
                batch,
                sustained,
                on_chip,
                layer_overhead,
                inference_overhead,
                clock_hz,
                static_power,
                macs,
                sram_scale,
                latency_ms,
                energy_mj,
            )

        energy_mj[~params.available] = np.nan

    dlat_dclock = dlat_dsram = None
    if sensitivities:
        with obs.span("sim.sensitivities"):
            dlat_dclock, dlat_dsram = _sensitivity_pass(
                unique,
                table,
                chunk,
                batch,
                sustained,
                on_chip,
                clock_hz,
                np.ravel(config_table.total_on_chip_memory_bytes).astype(np.float64),
                latency_ms,
            )
    return FusedGridResult(latency_ms, energy_mj, dlat_dclock, dlat_dsram)


def _fused_rows_numpy(
    unique: _UniqueLevelArrays,
    table: LayerTable,
    chunk: int,
    batch: np.ndarray,
    sustained: np.ndarray,
    on_chip: np.ndarray,
    layer_overhead: np.ndarray,
    inference_overhead: np.ndarray,
    clock_hz: np.ndarray,
    static_power: np.ndarray,
    macs: np.ndarray,
    sram_scale: float,
    latency_ms: np.ndarray,
    energy_mj: np.ndarray,
) -> None:
    """Chunked in-place numpy body of the fused kernel.

    Six gather buffers and two float work buffers of shape ``(chunk, L)``
    are threaded through the whole timing+energy chain with ``out=`` kernels
    — no temporary of that shape is allocated inside the loop on the exact
    (``sram_scale == 1``) path.  All batch multiplies happen on the integer
    gathers before the float coefficients touch them, preserving the staged
    kernels' ``pj * int`` association order bit-for-bit.
    """
    num_configs = latency_ms.shape[0]
    num_layers = unique.compute_cycles.shape[-1]
    starts = table.segment_starts

    g_cycles = np.empty((chunk, num_layers), dtype=np.int64)
    g_stream = np.empty((chunk, num_layers), dtype=np.int64)
    g_act = np.empty((chunk, num_layers), dtype=np.int64)
    g_refill = np.empty((chunk, num_layers), dtype=np.int64)
    g_idle = np.empty((chunk, num_layers), dtype=np.int64)
    g_sram = np.empty((chunk, num_layers), dtype=np.int64)
    work_a = np.empty((chunk, num_layers), dtype=np.float64)
    work_b = np.empty((chunk, num_layers), dtype=np.float64)
    relaxed = sram_scale != 1.0

    for begin in range(0, num_configs, chunk):
        end = min(begin + chunk, num_configs)
        rows = slice(0, end - begin)
        rows_m = unique.inverse_mapping[begin:end]
        rows_c = unique.inverse_cache[begin:end]
        b = batch[begin:end, None]
        np.take(unique.compute_cycles, rows_m, axis=0, out=g_cycles[rows])
        np.take(unique.stream_bytes, rows_c, axis=0, out=g_stream[rows])
        np.take(unique.act_dram_bytes, rows_c, axis=0, out=g_act[rows])
        np.take(unique.refill_bytes, rows_c, axis=0, out=g_refill[rows])
        np.take(unique.idle_slots, rows_m, axis=0, out=g_idle[rows])
        np.take(unique.sram_act_bytes, rows_c, axis=0, out=g_sram[rows])

        # Batched integer compute cycles and DRAM bytes, in place on the
        # gathers: dram = stream + batch * act_dram, compute = batch * cycles.
        cc = np.multiply(g_cycles[rows], b, out=g_cycles[rows])
        db = np.multiply(g_act[rows], b, out=g_act[rows])
        db += g_stream[rows]
        sus = sustained[begin:end, None]
        ocb = on_chip[begin:end, None]

        dram_cycles = np.divide(db, sus, out=work_a[rows])
        refill_cycles = np.divide(g_refill[rows], ocb, out=work_b[rows])
        if relaxed:
            # Frozen-plan relaxation: branch masks come from the scale-1
            # operating point, the streamed bytes move linearly with scale.
            shift = unique.dstreamed_dscale[rows_c] * (sram_scale - 1.0)
            dram_mask = dram_cycles >= refill_cycles
            memory_mask = np.maximum(dram_cycles, refill_cycles) > cc
            memory = np.where(
                dram_mask, (db + shift) / sus, (g_refill[rows] - shift) / ocb
            )
            total = np.where(memory_mask, memory, cc) + layer_overhead[begin:end, None]
        else:
            memory = np.maximum(dram_cycles, refill_cycles, out=work_a[rows])
            total = np.maximum(cc, memory, out=work_a[rows])
            total += layer_overhead[begin:end, None]
        model_cycles = inference_overhead[begin:end, None] + np.add.reduceat(
            total, starts, axis=-1
        )
        np.multiply(
            np.divide(model_cycles, clock_hz[begin:end, None], out=model_cycles),
            1e3,
            out=latency_ms[begin:end],
        )

        # Energy: same terms, same association order as layer_energy_table.
        # SRAM bytes = stored weights (stream + refill) + batch * activations.
        sram_b = np.multiply(g_sram[rows], b, out=g_sram[rows])
        sram_b += g_stream[rows]
        sram_b += g_refill[rows]
        macs_b = np.multiply(macs, b, out=g_cycles[rows])
        idle_b = np.multiply(g_idle[rows], b, out=g_idle[rows])
        dynamic = np.multiply(macs_b, _MAC_PJ, out=work_a[rows])
        dynamic += np.multiply(idle_b, _IDLE_LANE_PJ, out=work_b[rows])
        dynamic += np.multiply(sram_b, _SRAM_BYTE_PJ, out=work_b[rows])
        dynamic += np.multiply(db, _DRAM_BYTE_PJ, out=work_b[rows])
        dynamic *= _PJ_TO_MJ
        np.add(
            np.add.reduceat(dynamic, starts, axis=-1),
            static_power[begin:end, None] * latency_ms[begin:end],
            out=energy_mj[begin:end],
        )


def _sensitivity_pass(
    unique: _UniqueLevelArrays,
    table: LayerTable,
    chunk: int,
    batch: np.ndarray,
    sustained: np.ndarray,
    on_chip: np.ndarray,
    clock_hz: np.ndarray,
    total_sram_bytes: np.ndarray,
    latency_ms: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-mode dual propagation for the two config sensitivities.

    Runs after (and independently of) the primal chunks: the duals need the
    branch masks, which are recomputed here from the same gathered rows, so
    the primal scratch discipline stays untouched.
    """
    num_configs, num_models = latency_ms.shape
    starts = table.segment_starts
    dlat_dclock = np.empty((num_configs, num_models), dtype=np.float64)
    dlat_dsram = np.empty((num_configs, num_models), dtype=np.float64)

    for begin in range(0, num_configs, chunk):
        end = min(begin + chunk, num_configs)
        rows_m = unique.inverse_mapping[begin:end]
        rows_c = unique.inverse_cache[begin:end]
        b = batch[begin:end, None]
        cc = b * unique.compute_cycles[rows_m]
        d_stream = unique.dstreamed_dscale[rows_c]
        sus = sustained[begin:end, None]
        ocb = on_chip[begin:end, None]
        clock = clock_hz[begin:end, None]

        dram_bytes = unique.stream_bytes[rows_c] + b * unique.act_dram_bytes[rows_c]
        dram_cycles = dram_bytes / sus
        refill_cycles = unique.refill_bytes[rows_c] / ocb
        dram_mask = dram_cycles >= refill_cycles
        memory_mask = np.maximum(dram_cycles, refill_cycles) > cc

        # Clock dual: dram_cycles scale linearly with the clock (sustained
        # bytes/cycle carry a 1/clock factor), refill and compute do not.
        dcycles_dclock = np.where(memory_mask & dram_mask, dram_cycles / clock, 0.0)
        dtotal_dclock = np.add.reduceat(dcycles_dclock, starts, axis=-1)
        # latency_ms = cycles * 1e3 / clock_hz; the quotient rule gives the
        # propagated term minus the direct 1/clock term; 1e9 Hz per GHz.
        dlat_dclock[begin:end] = (
            dtotal_dclock * 1e3 / clock - latency_ms[begin:end] / clock
        ) * 1e9

        # SRAM dual: streamed bytes move with the scale, refill bytes move
        # opposite; the frozen masks pick which term reaches the latency.
        dmem_dscale = np.where(dram_mask, d_stream / sus, -d_stream / ocb)
        dcycles_dscale = np.where(memory_mask, dmem_dscale, 0.0)
        dtotal_dscale = np.add.reduceat(dcycles_dscale, starts, axis=-1)
        # One unit of scale is total_sram_bytes actual bytes.
        dlat_dsram[begin:end] = (
            dtotal_dscale * 1e3 / clock / total_sram_bytes[begin:end, None]
        )
    return dlat_dclock, dlat_dsram


def _fused_rows_loop_nest(
    compute_cycles_u,
    idle_slots_u,
    stream_bytes_u,
    act_dram_u,
    refill_bytes_u,
    sram_act_u,
    macs,
    batch,
    inverse_mapping,
    inverse_cache,
    sustained,
    on_chip,
    layer_overhead,
    inference_overhead,
    clock_hz,
    static_power,
    model_offsets,
    latency_ms,
    energy_mj,
):
    """Scalar loop nest over (config, model, layer) — the numba body.

    Written in the njit-compatible subset (explicit loops, no fancy
    indexing) and decorated lazily by the numba backend with
    ``@njit(parallel=True)``; as plain Python it computes the same values
    (sequential per-segment accumulation matches ``np.add.reduceat``), which
    is how its semantics are tested where numba is not installed.  All batch
    multiplies stay integer until the pJ coefficients apply, matching the
    staged kernels' association order exactly.
    """
    num_configs = latency_ms.shape[0]
    num_models = model_offsets.shape[0] - 1
    for c in prange(num_configs):
        im = inverse_mapping[c]
        ic = inverse_cache[c]
        b = batch[c]
        sus = sustained[c]
        ocb = on_chip[c]
        overhead = layer_overhead[c]
        for m in range(num_models):
            cycles_sum = 0.0
            energy_sum = 0.0
            for row in range(model_offsets[m], model_offsets[m + 1]):
                dram_bytes = stream_bytes_u[ic, row] + b * act_dram_u[ic, row]
                dram_cycles = dram_bytes / sus
                refill_cycles = refill_bytes_u[ic, row] / ocb
                memory = max(dram_cycles, refill_cycles)
                cycles_sum += max(float(b * compute_cycles_u[im, row]), memory) + overhead
                sram_bytes = (
                    stream_bytes_u[ic, row]
                    + refill_bytes_u[ic, row]
                    + b * sram_act_u[ic, row]
                )
                energy_sum += (
                    _MAC_PJ * (b * macs[row])
                    + _IDLE_LANE_PJ * (b * idle_slots_u[im, row])
                    + _SRAM_BYTE_PJ * sram_bytes
                    + _DRAM_BYTE_PJ * dram_bytes
                ) * _PJ_TO_MJ
            model_cycles = inference_overhead[c] + cycles_sum
            lat = model_cycles / clock_hz[c] * 1e3
            latency_ms[c, m] = lat
            energy_mj[c, m] = energy_sum + static_power[c] * lat
