"""Vectorized batch-sweep engine: compile once, simulate the population wide.

The paper's headline experiment is ~1.5M latency and ~900K energy simulations
over the NASBench population on three Edge TPU classes.  The scalar
:class:`~repro.simulator.engine.PerformanceSimulator` walks one Python layer
object at a time; this module instead flattens the whole population into a
:class:`~repro.nasbench.layer_table.LayerTable` **once** (shared across all
accelerator configurations) and runs the compiler and timing/energy formulas
as NumPy array kernels over every layer of every model simultaneously.
The accelerator configurations are an array axis too
(:meth:`BatchSimulator.evaluate_table_grid`): the config scalars broadcast as
:class:`~repro.arch.config_table.ConfigTable` columns, so a whole
configuration grid is evaluated in one ``(num_configs, num_layers)`` pass
instead of once per configuration.

The results are bit-for-bit the scalar engine's (both paths run the same
kernels; only the reduction order of float sums differs, within 1e-9
relative).  :meth:`BatchSimulator.evaluate` returns the same
:class:`~repro.simulator.runner.MeasurementSet` as
:func:`~repro.simulator.runner.evaluate_dataset`, so all analysis and
benchmark consumers are unchanged.

For very large populations the sweep can additionally be sharded over model
ranges with ``n_jobs > 1`` (process-based, fork-safe: each worker builds and
simulates only its slice of the population).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..arch.config import STUDIED_CONFIGS, AcceleratorConfig
from ..arch.config_table import ConfigTable
from ..arch.energy import energy_parameters_for, energy_parameters_table
from ..compiler import compile_layer_table
from ..errors import SimulationError
from ..nasbench.cell import Cell
from ..nasbench.dataset import NASBenchDataset
from ..nasbench.layer_table import LayerTable
from ..nasbench.macro import MacroSpec, expand_architecture
from ..nasbench.network import NetworkConfig, NetworkSpec, build_network
from .energy import layer_energy_table, static_energy_mj
from .fused import compile_and_time_table
from .latency import cycles_to_milliseconds, model_latency_cycles_table, time_layer_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..service.store import MeasurementStore


#: Grid-evaluation strategies accepted by :class:`BatchSimulator`.
GRID_STRATEGIES: tuple[str, ...] = ("fused", "staged")


class BatchSimulator:
    """Population-scale latency/energy estimator over accelerator configs.

    Parameters
    ----------
    enable_parameter_caching:
        Forwarded to the compiler; the paper's results have it enabled and
        the ablation benchmarks switch it off.
    strategy:
        How :meth:`evaluate_table_grid` runs the config-axis sweep.
        ``"fused"`` (the default) threads scratch buffers through the single
        :func:`~repro.simulator.fused.compile_and_time_table` kernel;
        ``"staged"`` runs the original per-stage array passes.  Both produce
        bit-for-bit identical results — the staged path is kept as the
        equivalence oracle.
    backend:
        Array backend for the fused path (name, instance, or ``None`` for
        the process-wide active backend, usually numpy).
    """

    def __init__(
        self,
        enable_parameter_caching: bool = True,
        strategy: str = "fused",
        backend: str | None = None,
    ):
        if strategy not in GRID_STRATEGIES:
            raise SimulationError(
                f"unknown grid strategy {strategy!r}; expected one of {GRID_STRATEGIES}"
            )
        self.enable_parameter_caching = enable_parameter_caching
        self.strategy = strategy
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        dataset: NASBenchDataset,
        configs: Iterable[AcceleratorConfig] | None = None,
        n_jobs: int = 1,
        progress_callback: Callable[[str, int, int], None] | None = None,
        store: "MeasurementStore | None" = None,
    ):
        """Simulate every model of *dataset* on every configuration.

        Returns the same :class:`~repro.simulator.runner.MeasurementSet` as
        the scalar sweep.  With ``n_jobs > 1`` the population is sharded over
        model ranges and evaluated by a process pool; *progress_callback* is
        invoked per shard as worker futures resolve, so long sweeps report
        live progress instead of one burst at the end.

        With *store* set, the sweep goes through a resumable
        :class:`~repro.service.store.MeasurementStore`: shards already on
        disk are loaded, only the missing (shard, configuration) pairs are
        simulated, and every completed shard is persisted immediately (an
        interrupted sweep resumes where it stopped).

        A raising *progress_callback* cannot abort the sweep: exceptions
        are caught, logged as obs error events, and the sweep continues.
        """
        from .runner import MeasurementSet  # deferred: runner re-exports us

        progress_callback = obs.guarded_progress(progress_callback, origin="sim.evaluate")
        config_list: Sequence[AcceleratorConfig] = (
            list(configs) if configs is not None else list(STUDIED_CONFIGS.values())
        )
        if not config_list:
            raise SimulationError("no accelerator configurations were provided")
        if store is not None:
            if store.enable_parameter_caching != self.enable_parameter_caching:
                raise SimulationError(
                    "measurement store and simulator disagree on parameter "
                    f"caching (store={store.enable_parameter_caching}, "
                    f"simulator={self.enable_parameter_caching}); shard keys "
                    "would not match the simulated results"
                )
            return store.extend(
                dataset,
                configs=config_list,
                n_jobs=n_jobs,
                progress_callback=progress_callback,
            )
        total = len(dataset)

        if total == 0:
            # Mirror the scalar sweep: an empty population yields empty arrays.
            return MeasurementSet(
                dataset,
                {config.name: np.empty(0, dtype=float) for config in config_list},
                {config.name: np.full(0, np.nan, dtype=float) for config in config_list},
            )
        with obs.span(
            "sim.evaluate", models=total, configs=len(config_list), n_jobs=n_jobs
        ):
            if n_jobs > 1:
                latencies, energies = self._evaluate_sharded(
                    dataset, config_list, n_jobs, progress_callback
                )
            else:
                networks = [record.build_network(dataset.network_config) for record in dataset]
                table = LayerTable.from_networks(networks)
                grid_latency, grid_energy = self.evaluate_table_grid(table, config_list)
                latencies, energies = {}, {}
                for index, config in enumerate(config_list):
                    latencies[config.name] = grid_latency[index]
                    energies[config.name] = grid_energy[index]
                    if progress_callback is not None:
                        progress_callback(config.name, total, total)
        return MeasurementSet(dataset, latencies, energies)

    def evaluate_networks(
        self, networks: Sequence[NetworkSpec], config: AcceleratorConfig
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latency/energy arrays of *networks* on one configuration."""
        return self.evaluate_table(LayerTable.from_networks(networks), config)

    def evaluate_cells(
        self,
        cells: Sequence[Cell],
        config: AcceleratorConfig,
        network_config: NetworkConfig | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Latency/energy arrays of bare *cells* on one configuration.

        Convenience for callers that have cells rather than a dataset (the
        learned-model examples, operation-swap analysis): the cells are
        expanded, flattened into one table and swept in a single pass.
        """
        networks = [build_network(cell, network_config) for cell in cells]
        return self.evaluate_networks(networks, config)

    def evaluate_table(
        self, table: LayerTable, config: AcceleratorConfig
    ) -> tuple[np.ndarray, np.ndarray]:
        """Core kernel: latency (ms) and energy (mJ) per model of *table*.

        Energy is NaN for configurations without a published energy model
        (V3), matching the scalar sweep's convention.
        """
        compiled = compile_layer_table(
            table, config, enable_parameter_caching=self.enable_parameter_caching
        )
        timing = time_layer_table(compiled)
        total_cycles = model_latency_cycles_table(timing, table.model_offsets, config)
        latency_ms = cycles_to_milliseconds(total_cycles, config)

        params = energy_parameters_for(config)
        if params.available:
            dynamic = np.add.reduceat(
                layer_energy_table(compiled, timing, params), table.segment_starts
            )
            energy_mj = dynamic + static_energy_mj(latency_ms, params)
        else:
            energy_mj = np.full(latency_ms.shape, np.nan)
        return latency_ms, energy_mj

    def evaluate_table_grid(
        self,
        table: LayerTable,
        configs: Sequence[AcceleratorConfig] | ConfigTable,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Config-axis vectorized sweep: all configurations in one pass.

        Returns ``(latency_ms, energy_mj)`` arrays of shape
        ``(num_configs, num_models)``, row ``i`` belonging to ``configs[i]``.
        Instead of re-running the mapping/cache/timing/energy kernels once
        per configuration (:meth:`evaluate_table`, kept as the equivalence
        oracle), the configuration scalars become broadcastable
        ``(num_configs, 1)`` columns of a
        :class:`~repro.arch.config_table.ConfigTable` and every kernel runs
        once over ``(num_configs, num_layers)`` arrays — bit-for-bit the
        per-config loop's results.  Energy rows of configurations without a
        published energy model are NaN, as in the scalar sweep.

        With the default ``strategy="fused"`` the whole chain additionally
        runs as the single scratch-threaded kernel of
        :func:`~repro.simulator.fused.compile_and_time_table` instead of the
        per-stage passes below — same results, a fraction of the memory
        traffic.
        """
        config_table = ConfigTable.from_configs(configs)
        with obs.span(
            "sim.grid",
            strategy=self.strategy,
            configs=len(config_table),
            models=table.num_models,
            layers=table.num_layers,
        ):
            obs.count("sim.rows_processed", len(config_table) * table.num_layers)
            if self.strategy == "fused":
                result = compile_and_time_table(
                    table,
                    config_table,
                    enable_parameter_caching=self.enable_parameter_caching,
                    backend=self.backend,
                )
                return result.latency_ms, result.energy_mj
            with obs.span("sim.mapping_cache"):
                compiled = compile_layer_table(
                    table, config_table, enable_parameter_caching=self.enable_parameter_caching
                )
            with obs.span("sim.timing"):
                timing = time_layer_table(compiled)
                total_cycles = model_latency_cycles_table(
                    timing, table.model_offsets, config_table
                )
                latency_ms = cycles_to_milliseconds(total_cycles, config_table)
            with obs.span("sim.energy"):
                params = energy_parameters_table(config_table)
                dynamic = np.add.reduceat(
                    layer_energy_table(compiled, timing, params), table.segment_starts, axis=-1
                )
                energy_mj = dynamic + static_energy_mj(latency_ms, params)
                energy_mj[~params.available] = np.nan
            return latency_ms, energy_mj

    # ------------------------------------------------------------------ #
    # Process-based sharding
    # ------------------------------------------------------------------ #
    def _evaluate_sharded(
        self,
        dataset: NASBenchDataset,
        config_list: Sequence[AcceleratorConfig],
        n_jobs: int,
        progress_callback: Callable[[str, int, int], None] | None = None,
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Shard the population over model ranges and merge the results.

        Shard results are written into the output arrays as their futures
        resolve (:func:`~concurrent.futures.as_completed`), and
        *progress_callback* fires per completed shard with cumulative
        per-configuration counts — progress is live, not a single burst after
        the whole pool drains.
        """
        total = len(dataset)
        shards = [chunk for chunk in np.array_split(np.arange(total), n_jobs) if chunk.size]
        archs = [record.architecture for record in dataset]
        latencies = {config.name: np.empty(total, dtype=float) for config in config_list}
        energies = {config.name: np.full(total, np.nan, dtype=float) for config in config_list}
        done = {config.name: 0 for config in config_list}
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = {
                pool.submit(
                    simulate_shard,
                    [archs[i] for i in chunk],
                    dataset.network_config,
                    tuple(config_list),
                    self.enable_parameter_caching,
                    self.strategy,
                ): chunk
                for chunk in shards
            }
            for future in as_completed(futures):
                chunk = futures[future]
                result = future.result()
                for config in config_list:
                    shard_latency, shard_energy = result[config.name]
                    latencies[config.name][chunk] = shard_latency
                    energies[config.name][chunk] = shard_energy
                    done[config.name] += int(chunk.size)
                    if progress_callback is not None:
                        progress_callback(config.name, done[config.name], total)
        return latencies, energies


def simulate_shard(
    cells: list[Cell | MacroSpec],
    network_config: NetworkConfig,
    configs: tuple[AcceleratorConfig, ...],
    enable_parameter_caching: bool,
    strategy: str = "fused",
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Build and evaluate one model-range shard on every configuration.

    The shared shard kernel of every sweep executor: the in-process pool
    workers of :meth:`BatchSimulator.evaluate`, the store's parallel
    :meth:`~repro.service.store.MeasurementStore.extend`, and the
    distributed :class:`~repro.service.worker.SweepWorker` all route one
    claimed shard through this function, so a shard simulates to identical
    bytes no matter which executor ran it.  Entries may be bare cells
    (expanded through *network_config*) or self-contained macro specs.
    """
    networks = [expand_architecture(arch, network_config) for arch in cells]
    table = LayerTable.from_networks(networks)
    simulator = BatchSimulator(
        enable_parameter_caching=enable_parameter_caching, strategy=strategy
    )
    latency, energy = simulator.evaluate_table_grid(table, configs)
    return {config.name: (latency[index], energy[index]) for index, config in enumerate(configs)}


#: Backwards-compatible private alias (pre-distributed-sweep name).
_sweep_shard = simulate_shard
