"""Cycle-level Edge TPU performance and energy simulator."""

from .batch import BatchSimulator
from .engine import PerformanceSimulator
from .latency import (
    LayerTiming,
    TimingTable,
    activation_spill_bytes,
    cycles_to_milliseconds,
    model_latency_cycles,
    model_latency_cycles_table,
    time_layer,
    time_layer_table,
)
from .results import LayerResult, SimulationResult
from .runner import (
    MeasurementSet,
    MeasurementSubset,
    ModelMeasurement,
    evaluate_dataset,
    simulate_records,
)

__all__ = [
    "BatchSimulator",
    "LayerResult",
    "LayerTiming",
    "MeasurementSet",
    "MeasurementSubset",
    "ModelMeasurement",
    "PerformanceSimulator",
    "SimulationResult",
    "TimingTable",
    "activation_spill_bytes",
    "cycles_to_milliseconds",
    "evaluate_dataset",
    "model_latency_cycles",
    "model_latency_cycles_table",
    "simulate_records",
    "time_layer",
    "time_layer_table",
]
