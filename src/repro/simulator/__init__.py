"""Cycle-level Edge TPU performance and energy simulator."""

from .engine import PerformanceSimulator
from .latency import (
    LayerTiming,
    activation_spill_bytes,
    cycles_to_milliseconds,
    model_latency_cycles,
    time_layer,
)
from .results import LayerResult, SimulationResult
from .runner import (
    MeasurementSet,
    MeasurementSubset,
    ModelMeasurement,
    evaluate_dataset,
    simulate_records,
)

__all__ = [
    "LayerResult",
    "LayerTiming",
    "MeasurementSet",
    "MeasurementSubset",
    "ModelMeasurement",
    "PerformanceSimulator",
    "SimulationResult",
    "activation_spill_bytes",
    "cycles_to_milliseconds",
    "evaluate_dataset",
    "model_latency_cycles",
    "simulate_records",
    "time_layer",
]
