"""Cycle-level Edge TPU performance and energy simulator."""

from .batch import GRID_STRATEGIES, BatchSimulator
from .engine import PerformanceSimulator
from .fused import FusedGridResult, compile_and_time_table
from .latency import (
    LayerTiming,
    TimingTable,
    activation_spill_bytes,
    cycles_to_milliseconds,
    model_latency_cycles,
    model_latency_cycles_table,
    time_layer,
    time_layer_table,
)
from .results import LayerResult, SimulationResult
from .runner import (
    MeasurementSet,
    MeasurementSubset,
    ModelMeasurement,
    evaluate_dataset,
    simulate_records,
)

__all__ = [
    "BatchSimulator",
    "FusedGridResult",
    "GRID_STRATEGIES",
    "LayerResult",
    "LayerTiming",
    "MeasurementSet",
    "MeasurementSubset",
    "ModelMeasurement",
    "PerformanceSimulator",
    "SimulationResult",
    "TimingTable",
    "activation_spill_bytes",
    "compile_and_time_table",
    "cycles_to_milliseconds",
    "evaluate_dataset",
    "model_latency_cycles",
    "model_latency_cycles_table",
    "simulate_records",
    "time_layer",
    "time_layer_table",
]
