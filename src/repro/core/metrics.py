"""Evaluation metrics of the learned performance model (paper Table 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ModelError


def estimation_accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Average estimation accuracy: ``1 - mean(|pred - true| / true)``.

    This matches the paper's "average accuracy" of the learned model (~96-98%),
    i.e. one minus the mean absolute percentage error.
    """
    predictions, targets = _validate(predictions, targets)
    relative_error = np.abs(predictions - targets) / np.abs(targets)
    return float(1.0 - relative_error.mean())


def spearman_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank-order correlation between predictions and ground truth."""
    predictions, targets = _validate(predictions, targets)
    value = stats.spearmanr(predictions, targets).statistic
    return float(value)


def pearson_correlation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Pearson linear correlation between predictions and ground truth."""
    predictions, targets = _validate(predictions, targets)
    value = stats.pearsonr(predictions, targets).statistic
    return float(value)


@dataclass(frozen=True)
class EstimationReport:
    """Bundle of the three Table 8 metrics plus split sizes."""

    average_accuracy: float
    spearman: float
    pearson: float
    training_set_size: int
    test_set_size: int

    def as_row(self) -> dict[str, float | int]:
        """Return the report as a flat dict (one Table 8 column)."""
        return {
            "training_set_size": self.training_set_size,
            "test_set_size": self.test_set_size,
            "average_accuracy": round(self.average_accuracy, 4),
            "spearman_correlation": round(self.spearman, 5),
            "pearson_correlation": round(self.pearson, 5),
        }


def evaluate_predictions(
    predictions: np.ndarray,
    targets: np.ndarray,
    training_set_size: int = 0,
) -> EstimationReport:
    """Compute the full :class:`EstimationReport` for a prediction/target pair."""
    return EstimationReport(
        average_accuracy=estimation_accuracy(predictions, targets),
        spearman=spearman_correlation(predictions, targets),
        pearson=pearson_correlation(predictions, targets),
        training_set_size=training_set_size,
        test_set_size=len(np.asarray(targets).reshape(-1)),
    )


def _validate(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=float).reshape(-1)
    targets = np.asarray(targets, dtype=float).reshape(-1)
    if predictions.shape != targets.shape:
        raise ModelError(
            f"prediction/target length mismatch: {predictions.shape} vs {targets.shape}"
        )
    if predictions.size < 2:
        raise ModelError("at least two samples are required to compute metrics")
    if np.any(targets == 0):
        raise ModelError("targets must be non-zero to compute relative errors")
    return predictions, targets
