"""Minimal reverse-mode automatic differentiation on numpy arrays.

The paper implements its learned performance model with DeepMind's Graph Nets
and Sonnet on top of TensorFlow.  Neither is available in this environment, so
this module provides the small amount of autodiff machinery the graph network
needs: dense matrix products, broadcasting element-wise arithmetic, ReLU,
layer normalization building blocks, concatenation, row gathering and
segment sums (the aggregation primitive of message passing).

The design is a classic dynamic tape: every :class:`Tensor` records the
operation that produced it and a closure that propagates gradients to its
parents; :meth:`Tensor.backward` walks the tape in reverse topological order.
Only float64 arrays are used — the models involved are tiny (two-layer,
16-unit MLPs) so numerical robustness is worth more than speed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import ModelError
from .backend import active_backend

Array = np.ndarray


def _as_array(value: object) -> Array:
    array = np.asarray(value, dtype=np.float64)
    return array


def _unbroadcast(gradient: Array, shape: tuple[int, ...]) -> Array:
    """Sum *gradient* down to *shape*, undoing numpy broadcasting."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading dimensions that were added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over dimensions that were expanded from size one.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward: Callable[[Array], None] | None = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad) or any(p.requires_grad for p in parents)
        self._parents = tuple(parents)
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ModelError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> Array:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, name={self.name!r})"

    # ------------------------------------------------------------------ #
    # Gradient accumulation and backpropagation
    # ------------------------------------------------------------------ #
    def _accumulate(self, gradient: Array) -> None:
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, gradient: Array | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise ModelError("called backward() on a tensor that does not require gradients")
        if gradient is None:
            if self.data.size != 1:
                raise ModelError("backward() without a gradient requires a scalar tensor")
            gradient = np.ones_like(self.data)

        ordered: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordered.append(node)

        visit(self)
        self._accumulate(gradient)
        for node in reversed(ordered):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Operator sugar
    # ------------------------------------------------------------------ #
    def __add__(self, other: object) -> "Tensor":
        return add(self, _ensure_tensor(other))

    def __radd__(self, other: object) -> "Tensor":
        return add(_ensure_tensor(other), self)

    def __sub__(self, other: object) -> "Tensor":
        return subtract(self, _ensure_tensor(other))

    def __rsub__(self, other: object) -> "Tensor":
        return subtract(_ensure_tensor(other), self)

    def __mul__(self, other: object) -> "Tensor":
        return multiply(self, _ensure_tensor(other))

    def __rmul__(self, other: object) -> "Tensor":
        return multiply(_ensure_tensor(other), self)

    def __truediv__(self, other: object) -> "Tensor":
        return divide(self, _ensure_tensor(other))

    def __matmul__(self, other: object) -> "Tensor":
        return matmul(self, _ensure_tensor(other))

    def __neg__(self) -> "Tensor":
        return multiply(self, Tensor(-1.0))


def _ensure_tensor(value: object) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ---------------------------------------------------------------------- #
# Primitive operations
# ---------------------------------------------------------------------- #
def add(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) addition."""
    out_data = a.data + b.data

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(gradient)

    return Tensor(out_data, parents=(a, b), backward=backward, name="add")


def subtract(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) subtraction."""
    out_data = a.data - b.data

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(-gradient)

    return Tensor(out_data, parents=(a, b), backward=backward, name="sub")


def multiply(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) multiplication."""
    out_data = a.data * b.data

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient * b.data)
        if b.requires_grad:
            b._accumulate(gradient * a.data)

    return Tensor(out_data, parents=(a, b), backward=backward, name="mul")


def divide(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) division."""
    out_data = a.data / b.data

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient / b.data)
        if b.requires_grad:
            b._accumulate(-gradient * a.data / (b.data**2))

    return Tensor(out_data, parents=(a, b), backward=backward, name="div")


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """2-D matrix multiplication."""
    if a.data.ndim != 2 or b.data.ndim != 2:
        raise ModelError("matmul expects two 2-D tensors")
    out_data = a.data @ b.data

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ gradient)

    return Tensor(out_data, parents=(a, b), backward=backward, name="matmul")


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = a.data > 0
    out_data = a.data * mask

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient * mask)

    return Tensor(out_data, parents=(a,), backward=backward, name="relu")


def power(a: Tensor, exponent: float) -> Tensor:
    """Element-wise power with a constant exponent."""
    out_data = a.data**exponent

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(gradient * exponent * a.data ** (exponent - 1))

    return Tensor(out_data, parents=(a,), backward=backward, name="pow")


def tensor_sum(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Sum over an axis (or all elements)."""
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(gradient: Array) -> None:
        if not a.requires_grad:
            return
        grad = np.asarray(gradient, dtype=np.float64)
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        a._accumulate(np.broadcast_to(grad, a.data.shape))

    return Tensor(out_data, parents=(a,), backward=backward, name="sum")


def mean(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Mean over an axis (or all elements)."""
    count = a.data.size if axis is None else a.data.shape[axis]
    return multiply(tensor_sum(a, axis=axis, keepdims=keepdims), Tensor(1.0 / count))


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along *axis*."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(gradient: Array) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * gradient.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(gradient[tuple(slicer)])

    return Tensor(out_data, parents=tuple(tensors), backward=backward, name="concat")


def gather(a: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor (``a[indices]``).

    Forward and backward both route through the active array backend
    (:mod:`repro.core.backend`): the gather itself and the scatter-add that
    accumulates repeated-row gradients are the two primitives a JIT/device
    backend can actually accelerate.
    """
    indices = np.asarray(indices, dtype=np.int64)
    backend = active_backend()
    out_data = backend.take(a.data, indices)

    def backward(gradient: Array) -> None:
        if not a.requires_grad:
            return
        grad = np.zeros_like(a.data)
        backend.scatter_add(grad, indices, gradient)
        a._accumulate(grad)

    return Tensor(out_data, parents=(a,), backward=backward, name="gather")


def segment_sum(
    a: Tensor, segment_ids: np.ndarray, num_segments: int, sorted_ids: bool = False
) -> Tensor:
    """Sum rows of a 2-D tensor into *num_segments* buckets.

    This is the aggregation primitive of the graph network: summing edge
    features into their receiver nodes, or node/edge features into their
    graph's global feature.  Routed through the active array backend; pass
    ``sorted_ids=True`` when the ids are non-decreasing (the packed
    graph-table aggregations are, by construction) to unlock the
    sequential-reduction fast path — bit-for-bit the scatter-add result.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != a.data.shape[0]:
        raise ModelError("segment_ids must have one entry per row")
    backend = active_backend()
    out_data = backend.segment_sum(a.data, segment_ids, num_segments, sorted_ids=sorted_ids)

    def backward(gradient: Array) -> None:
        if a.requires_grad:
            a._accumulate(backend.take(gradient, segment_ids))

    return Tensor(out_data, parents=(a,), backward=backward, name="segment_sum")


def layer_norm(a: Tensor, scale: Tensor, offset: Tensor, epsilon: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis, with learnable scale and offset."""
    mu = mean(a, axis=-1, keepdims=True)
    centered = subtract(a, mu)
    variance = mean(multiply(centered, centered), axis=-1, keepdims=True)
    inv_std = power(add(variance, Tensor(epsilon)), -0.5)
    normalized = multiply(centered, inv_std)
    return add(multiply(normalized, scale), offset)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of identical shape."""
    if prediction.shape != target.shape:
        raise ModelError(f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}")
    diff = subtract(prediction, target)
    return mean(multiply(diff, diff))


def parameters_requiring_grad(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable of tensors down to those that require gradients."""
    return [tensor for tensor in tensors if tensor.requires_grad]
