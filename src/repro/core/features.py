"""Graph feature encoding of NASBench cells (paper Figure 4).

Each cell is turned into the graph representation consumed by the learned
performance model: one scalar node feature per vertex encoding its operation
(input -> 1.0, 3x3 convolution -> 2.0, 3x3 max-pooling -> 3.0,
1x1 convolution -> 4.0, output -> 5.0), a constant ``1.0`` feature on every
edge, and a constant ``1.0`` global feature.  Since NASBench networks repeat
the same cell, the cell graph alone is the model input (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..nasbench.cell import Cell
from ..nasbench.ops import node_features

#: Feature value assigned to every edge.
EDGE_FEATURE = 1.0
#: Initial value of the graph-level (global) feature.
GLOBAL_FEATURE = 1.0


@dataclass(frozen=True)
class GraphTuple:
    """A single graph in Graph-Nets-like array form.

    Attributes
    ----------
    nodes:
        ``(num_nodes, node_feature_size)`` float array.
    edges:
        ``(num_edges, edge_feature_size)`` float array.
    senders / receivers:
        Integer arrays with the source / destination node index of each edge.
    globals_:
        ``(1, global_feature_size)`` float array.
    """

    nodes: np.ndarray
    edges: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    globals_: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self.nodes.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of edges in the graph."""
        return self.edges.shape[0]


def cell_to_graph(cell: Cell) -> GraphTuple:
    """Encode a (pruned) cell as a :class:`GraphTuple` following Figure 4."""
    pruned = cell.prune()
    nodes = np.array(node_features(pruned.ops), dtype=np.float64).reshape(-1, 1)
    edge_list = pruned.edges()
    if edge_list:
        senders = np.array([src for src, _ in edge_list], dtype=np.int64)
        receivers = np.array([dst for _, dst in edge_list], dtype=np.int64)
    else:  # a cell always has at least one edge, but stay defensive
        senders = np.zeros(0, dtype=np.int64)
        receivers = np.zeros(0, dtype=np.int64)
    edges = np.full((len(edge_list), 1), EDGE_FEATURE, dtype=np.float64)
    globals_ = np.full((1, 1), GLOBAL_FEATURE, dtype=np.float64)
    return GraphTuple(
        nodes=nodes, edges=edges, senders=senders, receivers=receivers, globals_=globals_
    )


def featurize_cells(cells: Sequence[Cell]) -> list[GraphTuple]:
    """Encode a population of cells (the input to :class:`GraphTable` packing)."""
    return [cell_to_graph(cell) for cell in cells]
