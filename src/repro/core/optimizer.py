"""Adam optimizer (Kingma & Ba), as used by the paper with default parameters."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor


class Adam:
    """Adam optimizer over a fixed list of parameters.

    The paper trains its graph network with Adam at a learning rate of 1e-3
    and otherwise default hyperparameters; those are the defaults here.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        self.parameters: Sequence[Tensor] = list(parameters)
        if not self.parameters:
            raise ModelError("Adam received no parameters to optimize")
        if learning_rate <= 0:
            raise ModelError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        """Clear the gradients of every tracked parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step += 1
        bias_correction1 = 1.0 - self.beta1**self._step
        bias_correction2 = 1.0 - self.beta2**self._step
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if gradient is None:
                continue
            m = self._first_moment[index]
            v = self._second_moment[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * gradient
            v *= self.beta2
            v += (1.0 - self.beta2) * gradient**2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
