"""Array-backend shim: numpy by default, numba/cupy detected at import time.

The whole stack is written against numpy, and numpy remains the reference
semantics: every backend op is defined as "bit-for-bit (or 1e-9-relative)
what the numpy expression would produce".  What this module adds is a thin
seam between the kernels and the array library, in the spirit of drjit's
vectorized array types:

* **Detection, not installation.**  ``numba`` and ``cupy`` are probed once at
  import with a broad ``except Exception`` — a half-installed or ABI-broken
  optional dependency is indistinguishable from an absent one and is treated
  as absent.  Nothing in this module ever imports them unconditionally.
* **Selection.**  The active backend comes from the ``REPRO_BACKEND``
  environment variable (read once at import), from
  :func:`set_active_backend`, or per call site via an explicit ``backend=``
  argument.  An unset variable silently means numpy; a garbage or
  unavailable value falls back to numpy with a *single* warning and never
  raises.  Only explicit programmatic requests (:func:`get_backend`,
  :func:`use_backend`) raise :class:`~repro.errors.BackendError`.
* **Ops, not arrays.**  Backends expose the small set of operations the hot
  paths actually route: row gathers, scatter-adds and segment sums (the
  packed-GNN primitives in :mod:`repro.core.autodiff`), plus a capability
  flag (:attr:`ArrayBackend.jit`) the fused simulator kernel uses to select
  its ``@njit(parallel=True)`` loop nest.

The numpy backend also carries a genuinely faster *sorted* segment-sum path:
``np.add.at`` is an order of magnitude slower than ``np.add.reduceat``, and
the graph-table aggregations (edge/node rows into their graph's global) are
sorted by construction, so they take the reduceat route — equivalent to
roundoff (reduceat reduces each run pairwise where ``add.at`` accumulates
sequentially; the sums differ only in association order, within 1e-9
relative).
"""

from __future__ import annotations

import importlib
import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..errors import BackendError

#: Environment variable naming the default backend (read once at import).
BACKEND_ENV = "REPRO_BACKEND"


def _probe_module(name: str, required_attrs: tuple[str, ...]) -> object | None:
    """Import an optional dependency, treating *any* failure as absence.

    A module that imports but lacks the attributes we need (a namespace
    stub, a broken wheel) is just as unusable as a missing one, so the probe
    checks both.  ``Exception`` is deliberately broad: half-installed
    binary packages are known to raise everything from ``ImportError`` to
    ``OSError`` and ``SystemError`` at import time.
    """
    try:
        module = importlib.import_module(name)
        for attr in required_attrs:
            if not hasattr(module, attr):
                return None
        return module
    except Exception:
        return None


class ArrayBackend:
    """The numpy reference backend; subclasses override the hot ops.

    Every op is defined by its numpy semantics.  Backends may assume int64 /
    float64 inputs (the dtypes the kernels use throughout) and must return
    numpy-compatible arrays — device residency is an implementation detail
    hidden behind :meth:`to_numpy`.
    """

    #: Stable identifier, also the value accepted by ``REPRO_BACKEND``.
    name = "numpy"
    #: Whether the backend can JIT-compile the fused simulator loop nest.
    jit = False

    def asarray(self, values, dtype=None) -> np.ndarray:
        """Coerce *values* to this backend's array type."""
        return np.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:
        """Materialize a backend array as a host numpy array."""
        return np.asarray(values)

    def take(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Row gather: ``values[indices]`` along the leading axis."""
        return values[indices]

    def scatter_add(
        self, target: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """In-place ``target[indices] += values`` with repeated-index accumulation."""
        np.add.at(target, indices, values)
        return target

    def segment_sum(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        sorted_ids: bool = False,
    ) -> np.ndarray:
        """Sum rows of *values* into ``num_segments`` buckets.

        With ``sorted_ids=True`` the caller asserts the ids are
        non-decreasing (true for the graph-table ``node_graph_ids`` /
        ``edge_graph_ids`` aggregations), unlocking the ``reduceat`` path —
        roughly an order of magnitude faster than ``np.add.at`` and equal to
        roundoff (pairwise vs sequential association only).  The hint is
        verified (one cheap pass) and quietly ignored when wrong, so a
        hand-built batch can never produce wrong sums.
        """
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        out_shape = (num_segments,) + values.shape[1:]
        if values.shape[0] == 0:
            return np.zeros(out_shape, dtype=values.dtype)
        if sorted_ids and bool((np.diff(segment_ids) >= 0).all()):
            counts = np.bincount(segment_ids, minlength=num_segments)
            out = np.zeros(out_shape, dtype=values.dtype)
            nonempty = counts > 0
            # Consecutive non-empty starts delimit exactly the segment runs,
            # because empty segments contribute no rows in between.
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
            return out
        out = np.zeros(out_shape, dtype=np.result_type(values.dtype, np.float64))
        np.add.at(out, segment_ids, values)
        return out.astype(values.dtype, copy=False)


class NumbaBackend(ArrayBackend):
    """numpy-resident arrays with numba-JIT segment ops and fused kernels.

    The arrays stay host numpy (numba operates on them in place); what
    changes is *who executes the loops*: the segment primitives and the
    fused simulator loop nest compile to parallel native code on first use.
    """

    name = "numba"
    jit = True

    def __init__(self, numba_module):
        self._numba = numba_module
        self._compiled: dict[str, object] = {}

    def njit(self, function, parallel: bool = True):
        """Compile *function* with ``@njit`` (cached per function name)."""
        key = f"{function.__module__}.{function.__qualname__}:parallel={parallel}"
        if key not in self._compiled:
            self._compiled[key] = self._numba.njit(parallel=parallel, cache=False)(function)
        return self._compiled[key]

    def scatter_add(
        self, target: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        kernel = self.njit(_scatter_add_rows, parallel=False)
        kernel(
            target,
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=target.dtype),
        )
        return target

    def segment_sum(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        sorted_ids: bool = False,
    ) -> np.ndarray:
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        if values.shape[0]:
            kernel = self.njit(_scatter_add_rows, parallel=False)
            kernel(out, np.asarray(segment_ids, dtype=np.int64), values)
        return out


class CupyBackend(ArrayBackend):
    """Device-resident arrays via cupy, when importable.

    Only the segment primitives move to the device; the fused simulator
    chain stays on the numpy path (its greedy cache planner is sequential
    per model and does not map to the GPU without a redesign — the backend
    honestly reports ``jit=False`` so callers never select it for the fused
    loop nest).
    """

    name = "cupy"
    jit = False

    def __init__(self, cupy_module):
        self._cupy = cupy_module

    def asarray(self, values, dtype=None):
        return self._cupy.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:
        if isinstance(values, self._cupy.ndarray):
            return self._cupy.asnumpy(values)
        return np.asarray(values)

    def take(self, values, indices):
        if isinstance(values, self._cupy.ndarray):
            return values[self._cupy.asarray(indices)]
        return np.asarray(values)[indices]

    def scatter_add(self, target, indices, values):
        if isinstance(target, self._cupy.ndarray):
            self._cupy.add.at(target, self._cupy.asarray(indices), values)
            return target
        np.add.at(target, np.asarray(indices), np.asarray(values))
        return target

    def segment_sum(self, values, segment_ids, num_segments, sorted_ids=False):
        if isinstance(values, self._cupy.ndarray):
            out = self._cupy.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
            self._cupy.add.at(out, self._cupy.asarray(segment_ids), values)
            return out
        return super().segment_sum(
            np.asarray(values), np.asarray(segment_ids), num_segments, sorted_ids
        )


def _scatter_add_rows(target, indices, values):
    """Sequential row scatter-add (the numba-compiled inner loop).

    Written in the njit-compatible subset; also runs as plain Python, which
    is how the logic is tested in environments without numba.
    """
    for row in range(indices.shape[0]):
        target[indices[row]] += values[row]


# ---------------------------------------------------------------------- #
# Detection and selection
# ---------------------------------------------------------------------- #
def _detect_backends() -> dict[str, ArrayBackend]:
    """Probe the optional dependencies and build the backend registry."""
    backends: dict[str, ArrayBackend] = {"numpy": ArrayBackend()}
    numba_module = _probe_module("numba", ("njit", "prange"))
    if numba_module is not None:
        backends["numba"] = NumbaBackend(numba_module)
    cupy_module = _probe_module("cupy", ("asarray", "asnumpy", "ndarray", "zeros"))
    if cupy_module is not None:
        backends["cupy"] = CupyBackend(cupy_module)
    return backends


_BACKENDS: dict[str, ArrayBackend] = _detect_backends()
_warned_fallback = False


def _fallback_warning(requested: str) -> None:
    """Warn exactly once per process about an unusable ``REPRO_BACKEND``."""
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    # Deferred import: this module resolves the backend at import time, before
    # the ``repro`` package has finished initialising.
    from .. import obs

    obs.log(
        "backend.fallback",
        f"{BACKEND_ENV}={requested!r} is not an available backend "
        f"(available: {', '.join(sorted(_BACKENDS))}); falling back to numpy",
        level="warning",
        warn=True,
        stacklevel=4,
        requested=requested,
    )


def _resolve_from_environment() -> ArrayBackend:
    requested = (os.environ.get(BACKEND_ENV) or "").strip().lower()
    if not requested:
        return _BACKENDS["numpy"]
    backend = _BACKENDS.get(requested)
    if backend is None:
        _fallback_warning(requested)
        return _BACKENDS["numpy"]
    return backend


_active: ArrayBackend = _resolve_from_environment()


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this process (numpy always first)."""
    return ("numpy",) + tuple(sorted(name for name in _BACKENDS if name != "numpy"))


def get_backend(name: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve *name* to a backend (``None`` → the active backend).

    Raises
    ------
    BackendError
        If a backend is named explicitly but is not available — explicit
        requests fail loudly, unlike the forgiving ``REPRO_BACKEND`` path.
    """
    if name is None:
        return _active
    if isinstance(name, ArrayBackend):
        return name
    backend = _BACKENDS.get(str(name).strip().lower())
    if backend is None:
        raise BackendError(
            f"backend {name!r} is not available in this environment "
            f"(available: {', '.join(available_backends())})"
        )
    return backend


def active_backend() -> ArrayBackend:
    """The backend used when no explicit ``backend=`` argument is given."""
    return _active


def set_active_backend(name: "str | ArrayBackend") -> ArrayBackend:
    """Select the process-wide active backend; returns it."""
    global _active
    _active = get_backend(name)
    return _active


@contextmanager
def use_backend(name: "str | ArrayBackend") -> Iterator[ArrayBackend]:
    """Temporarily switch the active backend (tests, benchmarks)."""
    global _active
    previous = _active
    _active = get_backend(name)
    try:
        yield _active
    finally:
        _active = previous
