"""Training loop for the learned performance model.

Follows the paper's methodology (Section 5, "Learned performance model
training"): Adam with learning rate 1e-3, batch size 16, a 60/20/20
train/validation/test split, and a loss that averages the mean-squared
prediction error over every message-passing iteration so the model converges
quickly at all depths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor, mse_loss
from .features import GraphTuple
from .graph_net import batch_graphs
from .model import EncodeProcessDecode
from .optimizer import Adam


@dataclass(frozen=True)
class DatasetSplit:
    """Index split of a dataset into train / validation / test parts."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    @property
    def sizes(self) -> tuple[int, int, int]:
        """Sizes of the three parts."""
        return len(self.train), len(self.validation), len(self.test)


def split_dataset(
    num_samples: int,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> DatasetSplit:
    """Randomly split ``range(num_samples)`` into train/validation/test indices."""
    if num_samples < 3:
        raise ModelError("need at least three samples to split")
    if train_fraction <= 0 or validation_fraction < 0:
        raise ModelError("split fractions must be positive")
    if train_fraction + validation_fraction >= 1.0:
        raise ModelError("train and validation fractions must leave room for the test set")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(num_samples)
    train_end = int(round(train_fraction * num_samples))
    validation_end = train_end + int(round(validation_fraction * num_samples))
    return DatasetSplit(
        train=permutation[:train_end],
        validation=permutation[train_end:validation_end],
        test=permutation[validation_end:],
    )


class TargetNormalizer:
    """Normalizes regression targets (optionally in log space).

    Latencies span roughly two orders of magnitude across the NASBench
    population, so training on ``log`` targets and standardizing them keeps
    the relative error balanced across the range.
    """

    def __init__(self, log_transform: bool = True):
        self.log_transform = log_transform
        self._mean = 0.0
        self._std = 1.0
        self._fitted = False

    def fit(self, targets: np.ndarray) -> "TargetNormalizer":
        """Fit the normalizer on raw target values."""
        values = self._forward_transform(np.asarray(targets, dtype=float))
        self._mean = float(values.mean())
        self._std = float(values.std())
        if self._std == 0.0:
            self._std = 1.0
        self._fitted = True
        return self

    def transform(self, targets: np.ndarray) -> np.ndarray:
        """Map raw targets to normalized training space."""
        self._require_fitted()
        values = self._forward_transform(np.asarray(targets, dtype=float))
        return (values - self._mean) / self._std

    def inverse_transform(self, normalized: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to raw target units."""
        self._require_fitted()
        values = np.asarray(normalized, dtype=float) * self._std + self._mean
        if self.log_transform:
            return np.exp(values)
        return values

    def _forward_transform(self, values: np.ndarray) -> np.ndarray:
        if self.log_transform:
            if np.any(values <= 0):
                raise ModelError("log-transform requires strictly positive targets")
            return np.log(values)
        return values

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelError("TargetNormalizer used before fit()")


@dataclass
class TrainingHistory:
    """Per-epoch training and validation losses."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_losses)


def _batch_loss(
    model: EncodeProcessDecode, graphs: Sequence[GraphTuple], targets: np.ndarray
) -> Tensor:
    """Loss of one minibatch: MSE averaged over message-passing steps."""
    batched = batch_graphs(graphs)
    predictions = model(batched)
    target_tensor = Tensor(np.asarray(targets, dtype=float).reshape(-1, 1))
    loss = mse_loss(predictions[0], target_tensor)
    for prediction in predictions[1:]:
        loss = loss + mse_loss(prediction, target_tensor)
    return loss * Tensor(1.0 / len(predictions))


def evaluate_loss(
    model: EncodeProcessDecode,
    graphs: Sequence[GraphTuple],
    targets: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Average per-step MSE of *model* on a dataset (no gradient updates)."""
    total, count = 0.0, 0
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start : start + batch_size]
        chunk_targets = targets[start : start + batch_size]
        loss = _batch_loss(model, chunk, chunk_targets)
        total += loss.item() * len(chunk)
        count += len(chunk)
    return total / max(count, 1)


def train_model(
    model: EncodeProcessDecode,
    train_graphs: Sequence[GraphTuple],
    train_targets: np.ndarray,
    validation_graphs: Sequence[GraphTuple] = (),
    validation_targets: np.ndarray | None = None,
    epochs: int = 10,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> TrainingHistory:
    """Train *model* with minibatch Adam and return the loss history.

    Targets are expected to be already normalized (see
    :class:`TargetNormalizer`).
    """
    if len(train_graphs) != len(train_targets):
        raise ModelError("training graphs and targets must have the same length")
    if len(train_graphs) == 0:
        raise ModelError("training set is empty")

    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    rng = np.random.default_rng(seed)
    history = TrainingHistory()
    train_targets = np.asarray(train_targets, dtype=float)

    for _ in range(epochs):
        order = rng.permutation(len(train_graphs))
        epoch_loss, batches = 0.0, 0
        for start in range(0, len(order), batch_size):
            indices = order[start : start + batch_size]
            graphs = [train_graphs[i] for i in indices]
            targets = train_targets[indices]
            optimizer.zero_grad()
            loss = _batch_loss(model, graphs, targets)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        history.train_losses.append(epoch_loss / max(batches, 1))
        if len(validation_graphs) and validation_targets is not None:
            history.validation_losses.append(
                evaluate_loss(model, validation_graphs, np.asarray(validation_targets, dtype=float))
            )
    return history


def predict(
    model: EncodeProcessDecode, graphs: Sequence[GraphTuple], batch_size: int = 256
) -> np.ndarray:
    """Final-step predictions of *model* over *graphs* (normalized space)."""
    outputs = []
    for start in range(0, len(graphs), batch_size):
        chunk = graphs[start : start + batch_size]
        outputs.append(model.predict(batch_graphs(chunk)))
    return np.concatenate(outputs) if outputs else np.zeros(0)
