"""Training loop for the learned performance model.

Follows the paper's methodology (Section 5, "Learned performance model
training"): Adam with learning rate 1e-3, batch size 16, a 60/20/20
train/validation/test split, and a loss that averages the mean-squared
prediction error over every message-passing iteration so the model converges
quickly at all depths.

The loop runs on the pack-once :class:`~repro.core.graph_table.GraphTable`
representation: the dataset's graphs are flattened into shared arrays a single
time and every mini-batch is an array slice of that table
(``strategy="packed"``, the default).  The legacy per-list path — rebuilding a
:class:`~repro.core.graph_net.BatchedGraphs` from a Python list of
:class:`GraphTuple` on every step — is kept as ``strategy="list"``; it is the
reference implementation the equivalence tests and the training-throughput
benchmark compare against, and both paths are bit-for-bit identical given the
same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor, mse_loss
from .features import GraphTuple
from .graph_net import BatchedGraphs, batch_graphs
from .graph_table import GraphTable, as_graph_table
from .model import EncodeProcessDecode
from .optimizer import Adam

#: Inputs accepted by the training/inference entry points: either a packed
#: table or a legacy sequence of per-graph tuples.
GraphSource = Union[GraphTable, Sequence[GraphTuple]]


@dataclass(frozen=True)
class DatasetSplit:
    """Index split of a dataset into train / validation / test parts."""

    train: np.ndarray
    validation: np.ndarray
    test: np.ndarray

    @property
    def sizes(self) -> tuple[int, int, int]:
        """Sizes of the three parts."""
        return len(self.train), len(self.validation), len(self.test)


def split_dataset(
    num_samples: int,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> DatasetSplit:
    """Randomly split ``range(num_samples)`` into train/validation/test indices."""
    if num_samples < 3:
        raise ModelError("need at least three samples to split")
    if train_fraction <= 0 or validation_fraction < 0:
        raise ModelError("split fractions must be positive")
    if train_fraction + validation_fraction >= 1.0:
        raise ModelError("train and validation fractions must leave room for the test set")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(num_samples)
    train_end = int(round(train_fraction * num_samples))
    validation_end = train_end + int(round(validation_fraction * num_samples))
    return DatasetSplit(
        train=permutation[:train_end],
        validation=permutation[train_end:validation_end],
        test=permutation[validation_end:],
    )


class TargetNormalizer:
    """Normalizes regression targets (optionally in log space).

    Latencies span roughly two orders of magnitude across the NASBench
    population, so training on ``log`` targets and standardizing them keeps
    the relative error balanced across the range.
    """

    def __init__(self, log_transform: bool = True):
        self.log_transform = log_transform
        self._mean = 0.0
        self._std = 1.0
        self._fitted = False

    @classmethod
    def from_stats(
        cls, mean: float, std: float, log_transform: bool = True
    ) -> "TargetNormalizer":
        """Rebuild a fitted normalizer from saved statistics (cache restore)."""
        normalizer = cls(log_transform)
        normalizer._mean = float(mean)
        normalizer._std = float(std)
        normalizer._fitted = True
        return normalizer

    @property
    def stats(self) -> tuple[float, float]:
        """The fitted ``(mean, std)`` pair (for serialization)."""
        self._require_fitted()
        return self._mean, self._std

    def fit(self, targets: np.ndarray) -> "TargetNormalizer":
        """Fit the normalizer on raw target values."""
        values = self._forward_transform(np.asarray(targets, dtype=float))
        self._mean = float(values.mean())
        self._std = float(values.std())
        if self._std == 0.0:
            self._std = 1.0
        self._fitted = True
        return self

    def transform(self, targets: np.ndarray) -> np.ndarray:
        """Map raw targets to normalized training space."""
        self._require_fitted()
        values = self._forward_transform(np.asarray(targets, dtype=float))
        return (values - self._mean) / self._std

    def inverse_transform(self, normalized: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to raw target units."""
        self._require_fitted()
        values = np.asarray(normalized, dtype=float) * self._std + self._mean
        if self.log_transform:
            return np.exp(values)
        return values

    def _forward_transform(self, values: np.ndarray) -> np.ndarray:
        if self.log_transform:
            if np.any(values <= 0):
                raise ModelError("log-transform requires strictly positive targets")
            return np.log(values)
        return values

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelError("TargetNormalizer used before fit()")


@dataclass
class TrainingHistory:
    """Per-epoch training and validation losses."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_losses)


def batched_loss(
    model: EncodeProcessDecode, batched: BatchedGraphs, targets: np.ndarray
) -> Tensor:
    """Loss of one batch: MSE averaged over message-passing steps."""
    predictions = model(batched)
    target_tensor = Tensor(np.asarray(targets, dtype=float).reshape(-1, 1))
    loss = mse_loss(predictions[0], target_tensor)
    for prediction in predictions[1:]:
        loss = loss + mse_loss(prediction, target_tensor)
    return loss * Tensor(1.0 / len(predictions))


def _batch_loss(
    model: EncodeProcessDecode, graphs: Sequence[GraphTuple], targets: np.ndarray
) -> Tensor:
    """Legacy per-list loss: re-batch *graphs*, then :func:`batched_loss`."""
    return batched_loss(model, batch_graphs(graphs), targets)


def evaluate_loss(
    model: EncodeProcessDecode,
    graphs: GraphSource,
    targets: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Average per-step MSE of *model* on a dataset (no gradient updates)."""
    if not isinstance(graphs, GraphTable) and len(graphs) == 0:
        return 0.0
    table = as_graph_table(graphs)
    targets = np.asarray(targets, dtype=float)
    total, count = 0.0, 0
    for start in range(0, table.num_graphs, batch_size):
        indices = np.arange(start, min(start + batch_size, table.num_graphs))
        loss = batched_loss(model, table.slice_batch(indices), targets[indices])
        total += loss.item() * len(indices)
        count += len(indices)
    return total / max(count, 1)


def train_model(
    model: EncodeProcessDecode,
    train_graphs: GraphSource,
    train_targets: np.ndarray,
    validation_graphs: GraphSource = (),
    validation_targets: np.ndarray | None = None,
    epochs: int = 10,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    seed: int = 0,
    strategy: str = "packed",
) -> TrainingHistory:
    """Train *model* with minibatch Adam and return the loss history.

    Targets are expected to be already normalized (see
    :class:`TargetNormalizer`).  ``strategy="packed"`` (default) packs the
    training set into a :class:`GraphTable` once and slices mini-batches out
    of it; ``strategy="list"`` is the legacy per-step list-batching reference
    path (requires sequence inputs) and produces bit-for-bit the same result.
    """
    num_train = (
        train_graphs.num_graphs
        if isinstance(train_graphs, GraphTable)
        else len(train_graphs)
    )
    if num_train != len(train_targets):
        raise ModelError("training graphs and targets must have the same length")
    if num_train == 0:
        raise ModelError("training set is empty")
    if strategy not in ("packed", "list"):
        raise ModelError(f"unknown training strategy {strategy!r}")
    if strategy == "list" and isinstance(train_graphs, GraphTable):
        raise ModelError("strategy='list' requires a sequence of GraphTuple")

    table = as_graph_table(train_graphs) if strategy == "packed" else None

    optimizer = Adam(model.parameters(), learning_rate=learning_rate)
    rng = np.random.default_rng(seed)
    history = TrainingHistory()
    train_targets = np.asarray(train_targets, dtype=float)
    has_validation = (
        isinstance(validation_graphs, GraphTable) or len(validation_graphs) > 0
    ) and validation_targets is not None

    for _ in range(epochs):
        order = rng.permutation(num_train)
        epoch_loss, batches = 0.0, 0
        for start in range(0, len(order), batch_size):
            indices = order[start : start + batch_size]
            if table is not None:
                batched = table.slice_batch(indices)
            else:
                batched = batch_graphs([train_graphs[i] for i in indices])
            targets = train_targets[indices]
            optimizer.zero_grad()
            loss = batched_loss(model, batched, targets)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        history.train_losses.append(epoch_loss / max(batches, 1))
        if has_validation:
            history.validation_losses.append(
                evaluate_loss(model, validation_graphs, np.asarray(validation_targets, dtype=float))
            )
    return history


def predict(
    model: EncodeProcessDecode, graphs: GraphSource, batch_size: int | None = None
) -> np.ndarray:
    """Final-step predictions of *model* over *graphs* (normalized space).

    With the default ``batch_size=None`` the whole dataset is evaluated in a
    **single** batched forward pass over the packed table; pass an explicit
    batch size to chunk very large populations.
    """
    if not isinstance(graphs, GraphTable) and len(graphs) == 0:
        return np.zeros(0)
    table = as_graph_table(graphs)
    if batch_size is None:
        return model.predict(table.to_batched())
    outputs = []
    for start in range(0, table.num_graphs, batch_size):
        indices = np.arange(start, min(start + batch_size, table.num_graphs))
        outputs.append(model.predict(table.slice_batch(indices)))
    return np.concatenate(outputs)
