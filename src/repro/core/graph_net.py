"""Graph-Nets-style batched graphs and the full graph network block.

This reimplements (on the numpy autodiff of :mod:`repro.core.autodiff`) the
two pieces of DeepMind's Graph Nets library the paper relies on:

* a *batched graph* representation that packs several graphs into one set of
  node/edge/global arrays with index vectors mapping rows to their graph;
* the *full GN block* (Algorithm 1 of Battaglia et al., referenced by the
  paper): an edge update from (edge, sender, receiver, global), a node update
  from (node, aggregated incoming edges, global) and a global update from
  (global, aggregated edges, aggregated nodes), all with sum aggregation and
  each implemented by a two-layer 16-unit MLP with layer normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor, concat, gather, segment_sum
from .features import GraphTuple
from .layers import MLP, Module


@dataclass
class BatchedGraphs:
    """Several graphs packed into shared node/edge/global tensors.

    ``nodes``, ``edges`` and ``globals_`` are :class:`Tensor` so they can flow
    through the autodiff graph; the index arrays are plain numpy integers.
    """

    nodes: Tensor
    edges: Tensor
    globals_: Tensor
    senders: np.ndarray
    receivers: np.ndarray
    node_graph_ids: np.ndarray
    edge_graph_ids: np.ndarray
    num_graphs: int

    def replace(
        self,
        nodes: Tensor | None = None,
        edges: Tensor | None = None,
        globals_: Tensor | None = None,
    ) -> "BatchedGraphs":
        """Return a copy with some of the feature tensors replaced."""
        return BatchedGraphs(
            nodes=nodes if nodes is not None else self.nodes,
            edges=edges if edges is not None else self.edges,
            globals_=globals_ if globals_ is not None else self.globals_,
            senders=self.senders,
            receivers=self.receivers,
            node_graph_ids=self.node_graph_ids,
            edge_graph_ids=self.edge_graph_ids,
            num_graphs=self.num_graphs,
        )


def batch_graphs(graphs: Sequence[GraphTuple]) -> BatchedGraphs:
    """Pack a list of :class:`GraphTuple` into one :class:`BatchedGraphs`.

    Thin wrapper over the structure-of-arrays packing kernel of
    :class:`~repro.core.graph_table.GraphTable`, so the per-list and packed
    paths cannot drift apart.
    """
    from .graph_table import GraphTable  # deferred: graph_table imports us

    if not graphs:
        raise ModelError("cannot batch an empty list of graphs")
    return GraphTable.from_graphs(graphs).to_batched()


class IndependentBlock(Module):
    """Encoder/decoder block: per-element MLPs with no message passing.

    The encoder and decoder of the paper's model transform edge, node and
    global features independently; the graph structure is only consumed by
    the core block.
    """

    def __init__(
        self,
        edge_sizes: tuple[int, int],
        node_sizes: tuple[int, int],
        global_sizes: tuple[int, int],
        hidden_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
    ):
        self.edge_model = MLP(edge_sizes[0], hidden_size, edge_sizes[1], rng, use_layer_norm)
        self.node_model = MLP(node_sizes[0], hidden_size, node_sizes[1], rng, use_layer_norm)
        self.global_model = MLP(global_sizes[0], hidden_size, global_sizes[1], rng, use_layer_norm)

    def __call__(self, graphs: BatchedGraphs) -> BatchedGraphs:
        return graphs.replace(
            nodes=self.node_model(graphs.nodes),
            edges=self.edge_model(graphs.edges),
            globals_=self.global_model(graphs.globals_),
        )


class GraphNetBlock(Module):
    """Full GN block with sum aggregation (the paper's core component)."""

    def __init__(
        self,
        edge_input_size: int,
        node_input_size: int,
        global_input_size: int,
        latent_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
    ):
        # Edge update consumes: edge, sender node, receiver node, global.
        self.edge_model = MLP(
            edge_input_size + 2 * node_input_size + global_input_size,
            hidden_size,
            latent_size,
            rng,
            use_layer_norm,
        )
        # Node update consumes: node, summed incoming (updated) edges, global.
        self.node_model = MLP(
            node_input_size + latent_size + global_input_size,
            hidden_size,
            latent_size,
            rng,
            use_layer_norm,
        )
        # Global update consumes: global, summed (updated) edges, summed (updated) nodes.
        self.global_model = MLP(
            global_input_size + 2 * latent_size,
            hidden_size,
            latent_size,
            rng,
            use_layer_norm,
        )

    def __call__(self, graphs: BatchedGraphs) -> BatchedGraphs:
        num_nodes = graphs.nodes.shape[0]
        num_graphs = graphs.num_graphs

        # --- Edge update -------------------------------------------------
        sender_features = gather(graphs.nodes, graphs.senders)
        receiver_features = gather(graphs.nodes, graphs.receivers)
        edge_globals = gather(graphs.globals_, graphs.edge_graph_ids)
        edge_inputs = concat(
            [graphs.edges, sender_features, receiver_features, edge_globals], axis=1
        )
        updated_edges = self.edge_model(edge_inputs)

        # --- Node update -------------------------------------------------
        incoming = segment_sum(updated_edges, graphs.receivers, num_nodes)
        node_globals = gather(graphs.globals_, graphs.node_graph_ids)
        node_inputs = concat([graphs.nodes, incoming, node_globals], axis=1)
        updated_nodes = self.node_model(node_inputs)

        # --- Global update -----------------------------------------------
        # Graph ids are non-decreasing by construction of the packed batch
        # (models are concatenated in order), so the per-graph aggregations
        # take the backend's sorted segment-sum fast path; the receiver
        # aggregation above cannot (receivers follow edge topology).
        edge_aggregate = segment_sum(
            updated_edges, graphs.edge_graph_ids, num_graphs, sorted_ids=True
        )
        node_aggregate = segment_sum(
            updated_nodes, graphs.node_graph_ids, num_graphs, sorted_ids=True
        )
        global_inputs = concat([graphs.globals_, edge_aggregate, node_aggregate], axis=1)
        updated_globals = self.global_model(global_inputs)

        return graphs.replace(nodes=updated_nodes, edges=updated_edges, globals_=updated_globals)


def concat_graphs(a: BatchedGraphs, b: BatchedGraphs) -> BatchedGraphs:
    """Feature-wise concatenation of two batched graphs with the same structure.

    Used by the encode-process-decode architecture to feed the encoder output
    together with the current latent state into the core block at every
    message-passing step (the "Concat" box of the paper's Figure 3).
    """
    return a.replace(
        nodes=concat([a.nodes, b.nodes], axis=1),
        edges=concat([a.edges, b.edges], axis=1),
        globals_=concat([a.globals_, b.globals_], axis=1),
    )
