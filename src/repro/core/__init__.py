"""Learned performance model: numpy autodiff, graph network, training, metrics."""

from .autodiff import Tensor, mse_loss
from .backend import (
    ArrayBackend,
    active_backend,
    available_backends,
    get_backend,
    set_active_backend,
    use_backend,
)
from .features import GraphTuple, cell_to_graph, featurize_cells
from .graph_net import BatchedGraphs, GraphNetBlock, IndependentBlock, batch_graphs
from .graph_table import GraphTable, as_graph_table
from .layers import MLP, LayerNorm, Linear, Module
from .metrics import (
    EstimationReport,
    estimation_accuracy,
    evaluate_predictions,
    pearson_correlation,
    spearman_correlation,
)
from .model import EncodeProcessDecode
from .optimizer import Adam
from .predictor import (
    SUPPORTED_METRICS,
    LearnedPerformanceModel,
    TrainingSettings,
    metric_targets,
    table_digest,
)
from .trainer import (
    DatasetSplit,
    TargetNormalizer,
    TrainingHistory,
    batched_loss,
    evaluate_loss,
    split_dataset,
    train_model,
)

__all__ = [
    "Adam",
    "ArrayBackend",
    "BatchedGraphs",
    "DatasetSplit",
    "EncodeProcessDecode",
    "EstimationReport",
    "GraphNetBlock",
    "GraphTable",
    "GraphTuple",
    "IndependentBlock",
    "LayerNorm",
    "LearnedPerformanceModel",
    "Linear",
    "MLP",
    "Module",
    "SUPPORTED_METRICS",
    "TargetNormalizer",
    "Tensor",
    "TrainingHistory",
    "TrainingSettings",
    "active_backend",
    "as_graph_table",
    "available_backends",
    "batch_graphs",
    "batched_loss",
    "cell_to_graph",
    "estimation_accuracy",
    "evaluate_loss",
    "evaluate_predictions",
    "featurize_cells",
    "get_backend",
    "metric_targets",
    "mse_loss",
    "pearson_correlation",
    "set_active_backend",
    "spearman_correlation",
    "split_dataset",
    "use_backend",
    "table_digest",
    "train_model",
]
