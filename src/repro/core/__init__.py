"""Learned performance model: numpy autodiff, graph network, training, metrics."""

from .autodiff import Tensor, mse_loss
from .features import GraphTuple, cell_to_graph
from .graph_net import BatchedGraphs, GraphNetBlock, IndependentBlock, batch_graphs
from .layers import MLP, LayerNorm, Linear, Module
from .metrics import (
    EstimationReport,
    estimation_accuracy,
    evaluate_predictions,
    pearson_correlation,
    spearman_correlation,
)
from .model import EncodeProcessDecode
from .optimizer import Adam
from .predictor import LearnedPerformanceModel, TrainingSettings
from .trainer import (
    DatasetSplit,
    TargetNormalizer,
    TrainingHistory,
    evaluate_loss,
    split_dataset,
    train_model,
)

__all__ = [
    "Adam",
    "BatchedGraphs",
    "DatasetSplit",
    "EncodeProcessDecode",
    "EstimationReport",
    "GraphNetBlock",
    "GraphTuple",
    "IndependentBlock",
    "LayerNorm",
    "LearnedPerformanceModel",
    "Linear",
    "MLP",
    "Module",
    "TargetNormalizer",
    "Tensor",
    "TrainingHistory",
    "TrainingSettings",
    "batch_graphs",
    "cell_to_graph",
    "estimation_accuracy",
    "evaluate_loss",
    "evaluate_predictions",
    "mse_loss",
    "pearson_correlation",
    "spearman_correlation",
    "split_dataset",
    "train_model",
]
