"""Structure-of-arrays packing of a whole dataset of cell graphs.

:class:`GraphTable` is the learned-model-side mirror of
:class:`~repro.nasbench.layer_table.LayerTable`: every cell's node/edge/global
features, edge endpoints and per-graph segment offsets are flattened **once
per dataset** into aligned NumPy arrays.  Mini-batches are then O(batch)
fancy-indexed *slices* of those arrays — no per-step Python list walking or
re-concatenation of :class:`~repro.core.features.GraphTuple` objects — and the
whole dataset is one :class:`~repro.core.graph_net.BatchedGraphs`, so
whole-population inference is a single forward pass.

Slicing is pure row selection and integer rebasing (no float arithmetic), so
a sliced batch is bit-for-bit identical to packing the same graphs with
:func:`~repro.core.graph_net.batch_graphs`; the equivalence is enforced by
``tests/test_graph_table.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..nasbench.cell import Cell
from .autodiff import Tensor
from .features import GraphTuple, featurize_cells


def _segment_rows(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Row indices of the concatenated segments ``[s, s + c)`` (vectorized)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.repeat(starts - out_starts, counts) + np.arange(total, dtype=np.int64)


@dataclass(frozen=True)
class GraphTable:
    """All graphs of a dataset packed into shared feature arrays.

    ``senders``/``receivers`` hold *packed* (table-global) node indices; the
    graph boundaries live in ``node_offsets``/``edge_offsets`` (length
    ``num_graphs + 1``), exactly like ``LayerTable.model_offsets``.
    """

    nodes: np.ndarray
    edges: np.ndarray
    globals_: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    node_offsets: np.ndarray
    edge_offsets: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graphs(cls, graphs: Sequence[GraphTuple]) -> "GraphTable":
        """Pack a sequence of :class:`GraphTuple` once (the packing kernel)."""
        graphs = list(graphs)
        if not graphs:
            raise ModelError("cannot build a GraphTable from zero graphs")
        node_counts = np.array([graph.num_nodes for graph in graphs], dtype=np.int64)
        edge_counts = np.array([graph.num_edges for graph in graphs], dtype=np.int64)
        node_offsets = np.concatenate([[0], np.cumsum(node_counts)])
        edge_offsets = np.concatenate([[0], np.cumsum(edge_counts)])
        senders = np.concatenate(
            [graph.senders for graph in graphs]
        ) + np.repeat(node_offsets[:-1], edge_counts)
        receivers = np.concatenate(
            [graph.receivers for graph in graphs]
        ) + np.repeat(node_offsets[:-1], edge_counts)
        return cls(
            nodes=np.concatenate([graph.nodes for graph in graphs], axis=0),
            edges=np.concatenate([graph.edges for graph in graphs], axis=0),
            globals_=np.concatenate([graph.globals_ for graph in graphs], axis=0),
            senders=senders.astype(np.int64),
            receivers=receivers.astype(np.int64),
            node_offsets=node_offsets,
            edge_offsets=edge_offsets,
        )

    @classmethod
    def from_cells(cls, cells: Sequence[Cell]) -> "GraphTable":
        """Featurize *cells* (paper Figure 4) and pack them in one step."""
        return cls.from_graphs(featurize_cells(cells))

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def num_graphs(self) -> int:
        """Number of packed graphs."""
        return len(self.node_offsets) - 1

    @property
    def num_nodes(self) -> int:
        """Total node rows across all graphs."""
        return int(self.node_offsets[-1])

    @property
    def num_edges(self) -> int:
        """Total edge rows across all graphs."""
        return int(self.edge_offsets[-1])

    def __len__(self) -> int:
        return self.num_graphs

    @property
    def node_counts(self) -> np.ndarray:
        """Nodes per graph."""
        return np.diff(self.node_offsets)

    @property
    def edge_counts(self) -> np.ndarray:
        """Edges per graph."""
        return np.diff(self.edge_offsets)

    # ------------------------------------------------------------------ #
    # Batch views
    # ------------------------------------------------------------------ #
    def to_batched(self):
        """The whole table as one :class:`BatchedGraphs` (no copies)."""
        from .graph_net import BatchedGraphs  # deferred: batch_graphs wraps us

        return BatchedGraphs(
            nodes=Tensor(self.nodes),
            edges=Tensor(self.edges),
            globals_=Tensor(self.globals_),
            senders=self.senders,
            receivers=self.receivers,
            node_graph_ids=np.repeat(
                np.arange(self.num_graphs, dtype=np.int64), self.node_counts
            ),
            edge_graph_ids=np.repeat(
                np.arange(self.num_graphs, dtype=np.int64), self.edge_counts
            ),
            num_graphs=self.num_graphs,
        )

    def slice_batch(self, indices: np.ndarray | Sequence[int]):
        """Mini-batch of the graphs at *indices* as a :class:`BatchedGraphs`.

        Pure row gathering plus integer rebasing of the edge endpoints, so the
        result is bit-for-bit what :func:`batch_graphs` would build from the
        same graphs — without touching Python lists.
        """
        from .graph_net import BatchedGraphs  # deferred: batch_graphs wraps us

        rows = self._gathered_rows(indices)
        (indices, node_rows, edge_rows, node_counts, edge_counts, senders, receivers) = rows
        batch = len(indices)
        return BatchedGraphs(
            nodes=Tensor(self.nodes[node_rows]),
            edges=Tensor(self.edges[edge_rows]),
            globals_=Tensor(self.globals_[indices]),
            senders=senders,
            receivers=receivers,
            node_graph_ids=np.repeat(np.arange(batch, dtype=np.int64), node_counts),
            edge_graph_ids=np.repeat(np.arange(batch, dtype=np.int64), edge_counts),
            num_graphs=batch,
        )

    def subset(self, indices: np.ndarray | Sequence[int]) -> "GraphTable":
        """A new (re-packed) table holding only the graphs at *indices*."""
        rows = self._gathered_rows(indices)
        (indices, node_rows, edge_rows, node_counts, edge_counts, senders, receivers) = rows
        return GraphTable(
            nodes=self.nodes[node_rows],
            edges=self.edges[edge_rows],
            globals_=self.globals_[indices],
            senders=senders,
            receivers=receivers,
            node_offsets=np.concatenate([[0], np.cumsum(node_counts)]),
            edge_offsets=np.concatenate([[0], np.cumsum(edge_counts)]),
        )

    def _gathered_rows(self, indices: np.ndarray | Sequence[int]):
        """Shared gather math of :meth:`slice_batch` and :meth:`subset`."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1 or indices.size == 0:
            raise ModelError("graph indices must be a non-empty 1-D array")
        if indices.min() < 0 or indices.max() >= self.num_graphs:
            raise ModelError(f"graph index out of range for a table of {self.num_graphs} graphs")
        node_counts = self.node_counts[indices]
        edge_counts = self.edge_counts[indices]
        node_rows = _segment_rows(self.node_offsets[indices], node_counts)
        edge_rows = _segment_rows(self.edge_offsets[indices], edge_counts)
        # Rebase packed endpoints: drop the old segment start, add the new one.
        new_node_starts = np.concatenate([[0], np.cumsum(node_counts)[:-1]])
        rebase = np.repeat(new_node_starts - self.node_offsets[indices], edge_counts)
        senders = self.senders[edge_rows] + rebase
        receivers = self.receivers[edge_rows] + rebase
        return indices, node_rows, edge_rows, node_counts, edge_counts, senders, receivers


def as_graph_table(graphs: "GraphTable | Sequence[GraphTuple]") -> GraphTable:
    """Coerce a :class:`GraphTable` or sequence of graphs into a table."""
    if isinstance(graphs, GraphTable):
        return graphs
    return GraphTable.from_graphs(list(graphs))
