"""Neural-network building blocks used by the learned performance model.

The paper's model uses two-layer feed-forward networks with 16 neurons per
layer followed by layer normalization for its edge, node and global blocks
(Section 4.1).  Weight initialization follows the paper: truncated random
normal values with a standard deviation proportional to the number of input
features, and zero-initialized biases.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor, add, layer_norm, matmul, relu


def truncated_normal(
    rng: np.random.Generator, shape: tuple[int, ...], stddev: float
) -> np.ndarray:
    """Sample a truncated normal (±2 standard deviations) array."""
    samples = rng.normal(0.0, stddev, size=shape)
    limit = 2.0 * stddev
    out_of_range = np.abs(samples) > limit
    while out_of_range.any():
        samples[out_of_range] = rng.normal(0.0, stddev, size=int(out_of_range.sum()))
        out_of_range = np.abs(samples) > limit
    return samples


class Module:
    """Base class providing parameter traversal for optimizers."""

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable :class:`Tensor` owned by this module (recursively)."""
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield item

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(parameter.data.size for parameter in self.parameters())

    def export_arrays(self) -> list[np.ndarray]:
        """Copies of every parameter array, in :meth:`parameters` order.

        The traversal order is deterministic (insertion order of the module
        attributes), which makes the flat list a sufficient serialization
        format for the pipeline's weight cache.
        """
        return [parameter.data.copy() for parameter in self.parameters()]

    def load_arrays(self, arrays: list[np.ndarray]) -> None:
        """Restore parameters previously produced by :meth:`export_arrays`."""
        parameters = list(self.parameters())
        if len(parameters) != len(arrays):
            raise ModelError(
                f"cannot load {len(arrays)} arrays into a module with "
                f"{len(parameters)} parameters"
            )
        for parameter, array in zip(parameters, arrays):
            array = np.asarray(array, dtype=np.float64)
            if parameter.data.shape != array.shape:
                raise ModelError(
                    f"shape mismatch while loading weights: expected "
                    f"{parameter.data.shape}, got {array.shape}"
                )
            parameter.data[...] = array

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()


class Linear(Module):
    """Dense layer ``y = x @ W + b``.

    Weights use a truncated normal initializer with standard deviation
    ``1 / sqrt(input_size)``; biases start at zero (the paper's defaults).
    """

    def __init__(self, input_size: int, output_size: int, rng: np.random.Generator):
        stddev = 1.0 / np.sqrt(max(1, input_size))
        self.weight = Tensor(
            truncated_normal(rng, (input_size, output_size), stddev),
            requires_grad=True,
            name="linear/weight",
        )
        self.bias = Tensor(np.zeros((1, output_size)), requires_grad=True, name="linear/bias")

    def __call__(self, inputs: Tensor) -> Tensor:
        return add(matmul(inputs, self.weight), self.bias)


class LayerNorm(Module):
    """Layer normalization with learnable scale and offset."""

    def __init__(self, size: int):
        self.scale = Tensor(np.ones((1, size)), requires_grad=True, name="layernorm/scale")
        self.offset = Tensor(np.zeros((1, size)), requires_grad=True, name="layernorm/offset")

    def __call__(self, inputs: Tensor) -> Tensor:
        return layer_norm(inputs, self.scale, self.offset)


class MLP(Module):
    """Two-layer feed-forward network with ReLU, optionally layer-normalized.

    This is the neural model block used for edges, nodes and globals in the
    paper: ``Linear(16) -> ReLU -> Linear(16) -> LayerNorm``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        output_size: int,
        rng: np.random.Generator,
        use_layer_norm: bool = True,
    ):
        self.hidden = Linear(input_size, hidden_size, rng)
        self.output = Linear(hidden_size, output_size, rng)
        self.norm = LayerNorm(output_size) if use_layer_norm else None

    def __call__(self, inputs: Tensor) -> Tensor:
        hidden = relu(self.hidden(inputs))
        output = self.output(hidden)
        if self.norm is not None:
            output = self.norm(output)
        return output
