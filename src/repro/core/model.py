"""Encode-process-decode learned performance model (paper Figure 3).

The model has three components:

* an **encoder** that independently lifts the scalar edge/node/global input
  features into a 16-dimensional latent space;
* a **core** full GN block applied for a fixed number of message-passing
  steps; at every step the core consumes the concatenation of the encoder
  output and the current latent state (the skip connection drawn in Figure 3);
* a **decoder** (independent block) plus a final linear readout that turns the
  updated global feature into a single scalar — the predicted performance
  metric (latency, energy, ...).

The model returns one prediction per message-passing step; the training loss
averages the per-step errors, which the paper reports makes convergence
faster.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .autodiff import Tensor
from .graph_net import BatchedGraphs, GraphNetBlock, IndependentBlock, concat_graphs
from .layers import Linear, Module

#: Latent feature width used by the paper for edge, node and global blocks.
DEFAULT_LATENT_SIZE = 16
#: Hidden layer width of every MLP (two layers of 16 neurons).
DEFAULT_HIDDEN_SIZE = 16
#: Number of message-passing rounds of the core block.
DEFAULT_NUM_STEPS = 3
#: Whether the MLP blocks end with layer normalization.  The paper's model
#: (Sonnet/Graph Nets at 254K training samples) uses layer normalization; at
#: this reproduction's much smaller training scale it prevents the global
#: (regression) pathway from carrying magnitude information and stalls
#: convergence, so it is off by default and exposed as a switch.
DEFAULT_USE_LAYER_NORM = False


class EncodeProcessDecode(Module):
    """The graph-based learned performance model."""

    def __init__(
        self,
        latent_size: int = DEFAULT_LATENT_SIZE,
        hidden_size: int = DEFAULT_HIDDEN_SIZE,
        num_message_passing_steps: int = DEFAULT_NUM_STEPS,
        edge_input_size: int = 1,
        node_input_size: int = 1,
        global_input_size: int = 1,
        seed: int = 0,
        use_layer_norm: bool = DEFAULT_USE_LAYER_NORM,
    ):
        if num_message_passing_steps < 1:
            raise ModelError("the core must run at least one message-passing step")
        rng = np.random.default_rng(seed)
        self.num_message_passing_steps = num_message_passing_steps
        self.latent_size = latent_size

        self.encoder = IndependentBlock(
            edge_sizes=(edge_input_size, latent_size),
            node_sizes=(node_input_size, latent_size),
            global_sizes=(global_input_size, latent_size),
            hidden_size=hidden_size,
            rng=rng,
            use_layer_norm=use_layer_norm,
        )
        # The core sees encoder output concatenated with the running latent
        # state, hence 2 * latent_size inputs per element.
        self.core = GraphNetBlock(
            edge_input_size=2 * latent_size,
            node_input_size=2 * latent_size,
            global_input_size=2 * latent_size,
            latent_size=latent_size,
            hidden_size=hidden_size,
            rng=rng,
            use_layer_norm=use_layer_norm,
        )
        self.decoder = IndependentBlock(
            edge_sizes=(latent_size, latent_size),
            node_sizes=(latent_size, latent_size),
            global_sizes=(latent_size, latent_size),
            hidden_size=hidden_size,
            rng=rng,
            use_layer_norm=use_layer_norm,
        )
        self.readout = Linear(latent_size, 1, rng)

    def __call__(self, graphs: BatchedGraphs) -> list[Tensor]:
        """Run the model and return one ``(num_graphs, 1)`` prediction per step."""
        encoded = self.encoder(graphs)
        latent = encoded
        predictions: list[Tensor] = []
        for _ in range(self.num_message_passing_steps):
            core_input = concat_graphs(encoded, latent)
            latent = self.core(core_input)
            decoded = self.decoder(latent)
            predictions.append(self.readout(decoded.globals_))
        return predictions

    def predict(self, graphs: BatchedGraphs) -> np.ndarray:
        """Return the final-step predictions as a flat numpy array."""
        return self(graphs)[-1].numpy().reshape(-1)
